//! The grand cross-product test: every algorithm × every graph family ×
//! several query shapes must agree on the top-k length sequence and
//! satisfy the structural invariants. Brute force pins the truth on the
//! small instances; on the larger ones the eight independent
//! implementations pin each other.

use kpj::core::reference;
use kpj::prelude::*;
use kpj::workload::{datasets, gene::GeneConfig, poi, road::RoadConfig, social::SocialConfig};

struct Case {
    name: &'static str,
    graph: Graph,
    sources: Vec<NodeId>,
    targets: Vec<NodeId>,
    k: usize,
    /// Brute-force check feasible?
    brute: bool,
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();

    // Tiny road network: brute-forceable.
    let g = RoadConfig::new(12, 30, 7).generate();
    out.push(Case {
        name: "tiny-road",
        graph: g,
        sources: vec![0],
        targets: vec![7, 11],
        k: 12,
        brute: true,
    });

    // Small social network (cycles everywhere): brute-forceable with care.
    let g = SocialConfig {
        nodes: 9,
        neighbors: 2,
        rewire_p: 0.3,
        max_weight: 5,
        seed: 3,
    }
    .generate();
    out.push(Case {
        name: "small-social",
        graph: g,
        sources: vec![1, 4],
        targets: vec![7],
        k: 10,
        brute: true,
    });

    // Gene DAG: directed, layered.
    let cfg = GeneConfig::new(3, 4, 5);
    let g = cfg.generate();
    out.push(Case {
        name: "gene-dag",
        graph: g,
        sources: vec![0, 1],
        targets: (8..12).collect(),
        k: 15,
        brute: true,
    });

    // Mid-size road network: implementations check each other.
    let g = datasets::SJ.generate(0.15);
    let mut cats = CategoryIndex::new();
    let pois = poi::generate_nested_pois(&mut cats, g.node_count(), 2);
    let targets = cats.members(pois.t[2]).to_vec();
    out.push(Case {
        name: "sj-road",
        graph: g,
        sources: vec![42],
        targets,
        k: 25,
        brute: false,
    });

    // Mid-size social network, GKPJ.
    let g = SocialConfig::new(3_000, 8).generate();
    out.push(Case {
        name: "social-gkpj",
        graph: g,
        sources: vec![5, 700, 1500],
        targets: vec![2_000, 2_500, 2_999],
        k: 25,
        brute: false,
    });

    out
}

#[test]
fn every_algorithm_on_every_family() {
    for case in cases() {
        let landmarks = LandmarkIndex::build(&case.graph, 6, SelectionStrategy::Farthest, 9);
        let brute = case
            .brute
            .then(|| reference::top_k_lengths(&case.graph, &case.sources, &case.targets, case.k));
        let mut consensus: Option<Vec<Length>> = brute.clone();
        for with_lm in [true, false] {
            let mut engine = QueryEngine::new(&case.graph);
            if with_lm {
                engine = engine.with_landmarks(&landmarks);
            }
            for alg in Algorithm::ALL {
                let r = engine
                    .query_multi(alg, &case.sources, &case.targets, case.k)
                    .unwrap_or_else(|e| panic!("{}: {} failed: {e}", case.name, alg.name()));
                let lens: Vec<Length> = r.paths.iter().map(|p| p.length).collect();
                match &consensus {
                    None => consensus = Some(lens),
                    Some(want) => assert_eq!(
                        &lens,
                        want,
                        "{}: {} (landmarks={with_lm}) disagrees",
                        case.name,
                        alg.name()
                    ),
                }
                let mut seen = std::collections::HashSet::new();
                for p in &r.paths {
                    p.validate(&case.graph)
                        .unwrap_or_else(|e| panic!("{}: {}: {e}", case.name, alg.name()));
                    assert!(p.is_simple(), "{}: {} non-simple", case.name, alg.name());
                    assert!(case.sources.contains(&p.source()));
                    assert!(case.targets.contains(&p.destination()));
                    assert!(
                        seen.insert(p.nodes.to_vec()),
                        "{}: duplicate path",
                        case.name
                    );
                }
            }
        }
    }
}

#[test]
fn walks_never_exceed_simple_paths_across_families() {
    for case in cases() {
        let walks =
            kpj::core::general::top_k_walks(&case.graph, &case.sources, &case.targets, case.k);
        let mut engine = QueryEngine::new(&case.graph);
        let simple = engine
            .query_multi(Algorithm::IterBoundI, &case.sources, &case.targets, case.k)
            .unwrap();
        for (i, p) in simple.paths.iter().enumerate() {
            assert!(
                walks.len() > i && walks[i].length <= p.length,
                "{}: walk[{i}] should lower-bound simple path",
                case.name
            );
        }
        if let (Some(w), Some(p)) = (walks.first(), simple.paths.first()) {
            assert_eq!(
                w.length, p.length,
                "{}: shortest walk == shortest path",
                case.name
            );
        }
    }
}

#[test]
fn stats_are_sane_across_the_matrix() {
    for case in cases().into_iter().filter(|c| !c.brute) {
        let mut engine = QueryEngine::new(&case.graph);
        for alg in Algorithm::ALL {
            let r = engine
                .query_multi(alg, &case.sources, &case.targets, case.k)
                .unwrap();
            let s = &r.stats;
            assert!(s.nodes_settled > 0, "{}: {}", case.name, alg.name());
            // Sidetrack's settle count is dominated by the SPT build and
            // its splice fast path relaxes no edges at all, so the
            // relaxed-to-settled ratio is meaningless there.
            if alg != Algorithm::Sidetrack {
                assert!(
                    s.edges_relaxed >= s.nodes_settled / 4,
                    "{}: {}",
                    case.name,
                    alg.name()
                );
            }
            match alg {
                Algorithm::Da | Algorithm::DaSpt | Algorithm::DaSptPascoal => {
                    assert!(s.shortest_path_computations >= r.paths.len());
                    assert_eq!(s.testlb_calls, 0);
                }
                Algorithm::BestFirst => assert_eq!(s.testlb_calls, 0),
                Algorithm::IterBound | Algorithm::IterBoundP | Algorithm::IterBoundI => {
                    assert!(s.testlb_calls > 0, "{}: {}", case.name, alg.name());
                }
                Algorithm::Sidetrack => {
                    // Lazy resolution scans sidetracks instead of running
                    // unbounded CompSP searches — ever.
                    assert_eq!(s.shortest_path_computations, 0);
                    assert!(s.sidetracks_scanned > 0, "{}", case.name);
                    assert!(
                        s.sidetrack_splices + s.sidetrack_repairs >= r.paths.len(),
                        "{}: every emitted path was resolved somehow",
                        case.name
                    );
                }
            }
        }
    }
}
