//! End-to-end test of the paper's worked example (§2 Example 2.1,
//! §3 Example 3.1, §4 Examples 4.1–4.3, §5 Examples 5.1–5.3) through the
//! facade crate's public API.

use kpj::prelude::*;

/// The Fig. 1 weights that the worked examples pin down:
/// ω(v1,v8)=2, ω(v8,v7)=3, ω(v1,v3)=3, ω(v3,v6)=3, ω(v3,v7)=4,
/// ω(v3,v4)=5, ω(v3,v5)=2, ω(v5,v6)=2; H = {v4, v6, v7}; all edges
/// bidirectional. (Fig. 1 has further periphery nodes that never appear
/// in any top-3 path; they are irrelevant to the assertions below.)
fn paper_graph() -> (Graph, CategoryIndex) {
    let (v1, v3, v4, v5, v6, v7, v8) = (0u32, 2, 3, 4, 5, 6, 7);
    let mut b = GraphBuilder::new(8);
    b.add_bidirectional(v1, v8, 2).unwrap();
    b.add_bidirectional(v8, v7, 3).unwrap();
    b.add_bidirectional(v1, v3, 3).unwrap();
    b.add_bidirectional(v3, v6, 3).unwrap();
    b.add_bidirectional(v3, v7, 4).unwrap();
    b.add_bidirectional(v3, v4, 5).unwrap();
    b.add_bidirectional(v3, v5, 2).unwrap();
    b.add_bidirectional(v5, v6, 2).unwrap();
    let g = b.build();
    let mut idx = CategoryIndex::new();
    idx.add_category("H", vec![v4, v6, v7]);
    (g, idx)
}

#[test]
fn example_2_1_top1() {
    // "Consider a KPJ query Q = {v1, H, 1} … The top-1 path is
    //  P1 = (v1, v8, v7) with ω(P1) = 2 + 3 = 5."
    let (g, idx) = paper_graph();
    let h = idx.find_by_name("H").unwrap();
    let mut engine = QueryEngine::new(&g);
    for alg in Algorithm::ALL {
        let r = engine.query(alg, 0, idx.members(h), 1).unwrap();
        assert_eq!(r.paths.len(), 1, "{}", alg.name());
        assert_eq!(r.paths.path(0).nodes, [0, 7, 6], "{}", alg.name());
        assert_eq!(r.paths.path(0).length, 5);
    }
}

#[test]
fn example_3_1_top3() {
    // "The shortest path is P1 = (v1,v8,v7,t) with length 5. … The 2nd
    //  shortest path is P2 = (v1,v3,v6,t) … The 3rd shortest path is
    //  P3 = c(v3) = (v1,v3,v7,t) with length 7."  ((v1,v3,v5,v6) ties at
    //  7; either is a correct P3 — we assert the length.)
    let (g, idx) = paper_graph();
    let h = idx.find_by_name("H").unwrap();
    let landmarks = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 1);
    let mut engine = QueryEngine::new(&g).with_landmarks(&landmarks);
    for alg in Algorithm::ALL {
        let r = engine.query(alg, 0, idx.members(h), 3).unwrap();
        let lens: Vec<Length> = r.paths.iter().map(|p| p.length).collect();
        assert_eq!(lens, vec![5, 6, 7], "{}", alg.name());
        assert_eq!(r.paths.path(0).nodes, [0, 7, 6]);
        assert_eq!(r.paths.path(1).nodes, [0, 2, 5]);
        let p3 = r.paths.path(2).nodes;
        assert!(
            p3 == [0, 2, 6] || p3 == [0, 2, 4, 5],
            "{}: unexpected P3 {p3:?}",
            alg.name()
        );
    }
}

#[test]
fn example_5_1_testlb_threshold_behaviour() {
    // Example 5.1 shows TestLB((v1,v3), {(v3,v6)}, 6) = ∅ while τ = 7
    // finds the shortest path of that subspace (length 7). We observe
    // the same boundary through the public API: with k = 3 the third
    // path has length exactly 7, and the iteratively-bounding engines
    // must finish with τ ≥ 7.
    let (g, idx) = paper_graph();
    let h = idx.find_by_name("H").unwrap();
    let mut engine = QueryEngine::new(&g);
    for alg in [
        Algorithm::IterBound,
        Algorithm::IterBoundP,
        Algorithm::IterBoundI,
    ] {
        let r = engine.query(alg, 0, idx.members(h), 3).unwrap();
        assert!(
            r.stats.final_tau >= 7,
            "{}: τ = {}",
            alg.name(),
            r.stats.final_tau
        );
        assert!(r.stats.testlb_calls > 0, "{}: no TestLB probes", alg.name());
    }
}

#[test]
fn ksp_against_glacier_like_singleton() {
    // Fig. 8 runs the same machinery with a singleton category.
    let (g, _) = paper_graph();
    let mut engine = QueryEngine::new(&g);
    for alg in Algorithm::ALL {
        let r = engine.ksp(alg, 0, 3, 5).unwrap(); // v1 → v4
                                                   // v1→v4 simple paths: v1-v3-v4 (8), v1-v8-v7-v3-v4 (14),
                                                   // v1-v3 via v6/v5 loops are longer…
        assert_eq!(r.paths.path(0).length, 8, "{}", alg.name());
        let lens = r.paths.lengths();
        assert!(lens.windows(2).all(|w| w[0] <= w[1]));
        for p in &r.paths {
            assert_eq!(p.source(), 0);
            assert_eq!(p.destination(), 3);
            assert!(p.is_simple());
        }
    }
}

#[test]
fn stats_match_paradigm_expectations() {
    // Fig. 4's message: BestFirst computes strictly fewer shortest paths
    // than DA (Lemma 4.1), and the iterative bounding replaces full
    // searches by TestLB probes.
    let (g, idx) = paper_graph();
    let h = idx.find_by_name("H").unwrap();
    let landmarks = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 3);
    let mut engine = QueryEngine::new(&g).with_landmarks(&landmarks);
    let da = engine.query(Algorithm::Da, 0, idx.members(h), 3).unwrap();
    let bf = engine
        .query(Algorithm::BestFirst, 0, idx.members(h), 3)
        .unwrap();
    let ib = engine
        .query(Algorithm::IterBoundI, 0, idx.members(h), 3)
        .unwrap();
    assert!(bf.stats.shortest_path_computations <= da.stats.shortest_path_computations);
    assert_eq!(
        ib.stats.shortest_path_computations, 0,
        "SPT_I path never runs CompSP"
    );
    assert!(ib.stats.testlb_calls > 0);
}
