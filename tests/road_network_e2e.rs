//! End-to-end tests on realistic (scaled) road networks: the full
//! offline→online pipeline — generate, index, build query sets, answer —
//! with cross-algorithm agreement on lengths (brute force is infeasible
//! here, so the six independent implementations check each other).

use kpj::prelude::*;
use kpj::workload::{datasets, poi, queries::QuerySets};

fn lengths(r: &KpjResult) -> Vec<Length> {
    r.paths.iter().map(|p| p.length).collect()
}

#[test]
fn sj_scaled_pipeline_all_algorithms_agree() {
    let g = datasets::SJ.generate(0.2);
    let mut cats = CategoryIndex::new();
    let pois = poi::generate_nested_pois(&mut cats, g.node_count(), 5);
    let landmarks = LandmarkIndex::build(&g, 8, SelectionStrategy::Farthest, 5);
    let t2 = cats.members(pois.t[1]).to_vec();
    let qs = QuerySets::generate(&g, &t2, 5, 3, 5);

    let mut engine = QueryEngine::new(&g).with_landmarks(&landmarks);
    let mut engine_nl = QueryEngine::new(&g);
    for group in 1..=5 {
        for &source in qs.group(group) {
            let mut want: Option<Vec<Length>> = None;
            for alg in Algorithm::ALL {
                let r = engine.query(alg, source, &t2, 20).unwrap();
                for p in &r.paths {
                    p.validate(&g).unwrap();
                    assert!(p.is_simple());
                }
                let got = lengths(&r);
                match &want {
                    None => want = Some(got),
                    Some(w) => assert_eq!(&got, w, "{} Q{group} s={source}", alg.name()),
                }
            }
            // The -NL variant must agree too.
            let r = engine_nl
                .query(Algorithm::IterBoundI, source, &t2, 20)
                .unwrap();
            assert_eq!(
                &lengths(&r),
                want.as_ref().unwrap(),
                "IterBoundI-NL s={source}"
            );
        }
    }
}

#[test]
fn varying_k_and_poi_sets() {
    let g = datasets::SJ.generate(0.1);
    let mut cats = CategoryIndex::new();
    let pois = poi::generate_nested_pois(&mut cats, g.node_count(), 9);
    let landmarks = LandmarkIndex::build(&g, 8, SelectionStrategy::Farthest, 9);
    let mut engine = QueryEngine::new(&g).with_landmarks(&landmarks);
    let source = QuerySets::generate(&g, cats.members(pois.t[0]), 5, 1, 2).default_group()[0];

    // More targets ⇒ k-th path no longer (first lengths no larger).
    let mut prev_kth: Option<Length> = None;
    for &t in &pois.t {
        let members = cats.members(t).to_vec();
        let r = engine
            .query(Algorithm::IterBoundI, source, &members, 20)
            .unwrap();
        assert_eq!(r.paths.len(), 20);
        let kth = r.paths.last().unwrap().length;
        if let Some(p) = prev_kth {
            assert!(kth <= p, "T grew but k-th path got longer: {kth} > {p}");
        }
        prev_kth = Some(kth);

        // Agreement vs the strongest baseline at this size.
        let r2 = engine
            .query(Algorithm::DaSpt, source, &members, 20)
            .unwrap();
        assert_eq!(lengths(&r), lengths(&r2));
    }

    // k sweep: prefix-monotone results.
    let t2 = cats.members(pois.t[1]).to_vec();
    let mut last: Vec<Length> = Vec::new();
    for k in [10, 20, 30, 50] {
        let r = engine.query(Algorithm::IterBoundI, source, &t2, k).unwrap();
        let l = lengths(&r);
        assert!(l.starts_with(&last[..last.len().min(l.len())]));
        last = l;
    }
}

#[test]
fn gkpj_on_road_network() {
    let g = datasets::SJ.generate(0.1);
    let mut cats = CategoryIndex::new();
    let pois = poi::generate_nested_pois(&mut cats, g.node_count(), 4);
    let landmarks = LandmarkIndex::build(&g, 8, SelectionStrategy::Farthest, 4);
    let t2 = cats.members(pois.t[1]).to_vec();
    // 4 random sources, as in the paper's Fig. 13 setup.
    let sources = [17u32, 501, 999, 1402];
    let mut engine = QueryEngine::new(&g).with_landmarks(&landmarks);
    let mut want: Option<Vec<Length>> = None;
    for alg in Algorithm::ALL {
        let r = engine.query_multi(alg, &sources, &t2, 20).unwrap();
        assert_eq!(r.paths.len(), 20, "{}", alg.name());
        for p in &r.paths {
            assert!(sources.contains(&p.source()));
            assert!(t2.binary_search(&p.destination()).is_ok());
        }
        let got = lengths(&r);
        match &want {
            None => want = Some(got),
            Some(w) => assert_eq!(&got, w, "{}", alg.name()),
        }
    }
}

#[test]
fn engine_survives_many_mixed_queries() {
    // Scratch-state reuse across hundreds of queries of varying shape.
    let g = datasets::SJ.generate(0.05);
    let mut cats = CategoryIndex::new();
    let pois = poi::generate_nested_pois(&mut cats, g.node_count(), 8);
    let landmarks = LandmarkIndex::build(&g, 6, SelectionStrategy::Farthest, 8);
    let mut engine = QueryEngine::new(&g).with_landmarks(&landmarks);
    let n = g.node_count() as u32;
    for i in 0..150u32 {
        let alg = Algorithm::ALL[(i % 6) as usize];
        let source = (i * 37) % n;
        let t = cats.members(pois.t[(i % 4) as usize]).to_vec();
        let k = 1 + (i as usize % 25);
        let r = engine.query(alg, source, &t, k).unwrap();
        assert!(r.paths.len() <= k);
        let lens = r.paths.lengths();
        assert!(lens.windows(2).all(|w| w[0] <= w[1]));
    }
}

#[test]
fn dimacs_roundtrip_preserves_query_results() {
    use kpj::graph::io;
    let g = datasets::SJ.generate(0.05);
    let mut buf = Vec::new();
    io::write_dimacs_gr(&g, &mut buf).unwrap();
    let g2 = io::read_dimacs_gr(buf.as_slice()).unwrap();
    let mut e1 = QueryEngine::new(&g);
    let mut e2 = QueryEngine::new(&g2);
    let targets = [3u32, 99, 500];
    for alg in [Algorithm::Da, Algorithm::IterBoundI] {
        let a = e1.query(alg, 7, &targets, 10).unwrap();
        let b = e2.query(alg, 7, &targets, 10).unwrap();
        assert_eq!(lengths(&a), lengths(&b));
    }
}
