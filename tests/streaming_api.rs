//! Tests for the anytime interface (`query_visit` / `query_multi_visit`):
//! delivery order, early termination, parity with the collecting API, and
//! the `k` cap — across every algorithm.

use std::ops::ControlFlow;

use kpj::prelude::*;
use kpj::workload::datasets;

fn fixture() -> (Graph, Vec<NodeId>) {
    let g = datasets::SJ.generate(0.05);
    (g, vec![3, 99, 500])
}

#[test]
fn visit_matches_collecting_api() {
    let (g, targets) = fixture();
    let mut engine = QueryEngine::new(&g);
    for alg in Algorithm::ALL {
        let collected = engine.query(alg, 7, &targets, 15).unwrap();
        let mut streamed = Vec::new();
        let stats = engine
            .query_visit(alg, 7, &targets, 15, |p| {
                streamed.push(p.to_path());
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(streamed.len(), collected.paths.len(), "{}", alg.name());
        for (a, b) in streamed.iter().zip(&collected.paths) {
            assert_eq!(a.length, b.length, "{}", alg.name());
        }
        assert_eq!(
            stats.shortest_path_computations,
            collected.stats.shortest_path_computations,
            "{}",
            alg.name()
        );
    }
}

#[test]
fn early_break_stops_after_first_path() {
    let (g, targets) = fixture();
    let mut engine = QueryEngine::new(&g);
    for alg in Algorithm::ALL {
        let mut seen = 0usize;
        engine
            .query_visit(alg, 7, &targets, 1000, |_| {
                seen += 1;
                ControlFlow::Break(())
            })
            .unwrap();
        assert_eq!(seen, 1, "{}", alg.name());
    }
}

#[test]
fn early_break_saves_work_for_lazy_algorithms() {
    let (g, targets) = fixture();
    let mut engine = QueryEngine::new(&g);
    // Full k=200 run vs break-after-5: the anytime run must do
    // substantially less exploration.
    let full = engine
        .query(Algorithm::IterBoundI, 7, &targets, 200)
        .unwrap();
    let mut n = 0;
    let partial = engine
        .query_visit(Algorithm::IterBoundI, 7, &targets, 200, |_| {
            n += 1;
            if n < 5 {
                ControlFlow::Continue(())
            } else {
                ControlFlow::Break(())
            }
        })
        .unwrap();
    assert_eq!(n, 5);
    assert!(
        partial.nodes_settled * 2 <= full.stats.nodes_settled.max(1),
        "partial {} vs full {}",
        partial.nodes_settled,
        full.stats.nodes_settled
    );
}

#[test]
fn k_caps_delivery_even_with_continue() {
    let (g, targets) = fixture();
    let mut engine = QueryEngine::new(&g);
    let mut seen = 0usize;
    engine
        .query_visit(Algorithm::BestFirst, 7, &targets, 4, |_| {
            seen += 1;
            ControlFlow::Continue(())
        })
        .unwrap();
    assert_eq!(seen, 4);
}

#[test]
fn lengths_arrive_in_nondecreasing_order() {
    let (g, targets) = fixture();
    let mut engine = QueryEngine::new(&g);
    for alg in Algorithm::ALL {
        let mut last: Length = 0;
        engine
            .query_visit(alg, 42, &targets, 30, |p| {
                assert!(p.length >= last, "{}: {} < {last}", alg.name(), p.length);
                last = p.length;
                ControlFlow::Continue(())
            })
            .unwrap();
    }
}

#[test]
fn visit_validates_queries_like_query_does() {
    let (g, _) = fixture();
    let mut engine = QueryEngine::new(&g);
    let r = engine.query_visit(Algorithm::Da, u32::MAX - 1, &[1], 1, |_| {
        ControlFlow::Continue(())
    });
    assert!(r.is_err());
    let r = engine.query_multi_visit(Algorithm::Da, &[], &[1], 1, |_| ControlFlow::Continue(()));
    assert!(r.is_err());
    // k = 0 and empty targets: Ok, zero deliveries.
    let mut seen = 0;
    engine
        .query_visit(Algorithm::Da, 0, &[1], 0, |_| {
            seen += 1;
            ControlFlow::Continue(())
        })
        .unwrap();
    engine
        .query_visit(Algorithm::Da, 0, &[], 5, |_| {
            seen += 1;
            ControlFlow::Continue(())
        })
        .unwrap();
    assert_eq!(seen, 0);
}
