//! Edge-case semantics and regression tests.
//!
//! The regression cases encode bugs found (and fixed) during development,
//! so they stay fixed:
//!
//! 1. `DA-SPT`'s splice completion must respect the subspace's excluded
//!    edge set when the SPT tail starts at the deviation vertex (otherwise
//!    the just-removed path is "rediscovered" forever).
//! 2. Zero-weight edges: equal-length paths, zero-length cycles, and the
//!    emitted-flag logic must coexist.
//! 3. Extreme α values change τ scheduling but never results.

use std::collections::HashSet;

use kpj::core::reference;
use kpj::prelude::*;

fn lengths(r: &KpjResult) -> Vec<Length> {
    r.paths.iter().map(|p| p.length).collect()
}

#[test]
fn regression_da_spt_respects_excluded_edges_in_splice() {
    // Shortest path 0-1-3; after removing it, the subspace at 0 excludes
    // edge (0,1) — but the SPT tail of 0 still goes 0→1→3. A buggy splice
    // returns 0-1-3 again; the correct 2nd path is 0-2-3.
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 1).unwrap();
    b.add_edge(1, 3, 2).unwrap();
    b.add_edge(0, 2, 3).unwrap();
    b.add_edge(2, 3, 4).unwrap();
    let g = b.build();
    let mut engine = QueryEngine::new(&g);
    let r = engine.query(Algorithm::DaSpt, 0, &[3], 5).unwrap();
    assert_eq!(lengths(&r), vec![3, 7]);
    assert_eq!(r.paths.path(1).nodes, [0, 2, 3]);
    let r = engine.query(Algorithm::DaSptPascoal, 0, &[3], 5).unwrap();
    assert_eq!(lengths(&r), vec![3, 7]);
}

#[test]
fn zero_weight_cycles_and_ties() {
    // A zero-weight 2-cycle next to the route: simple paths only, so the
    // cycle contributes nothing, but label correction must not loop.
    let mut b = GraphBuilder::new(5);
    b.add_edge(0, 1, 0).unwrap();
    b.add_edge(1, 0, 0).unwrap();
    b.add_edge(1, 2, 0).unwrap();
    b.add_edge(2, 3, 1).unwrap();
    b.add_edge(0, 3, 1).unwrap();
    b.add_edge(3, 4, 0).unwrap();
    let g = b.build();
    let expect = reference::top_k_lengths(&g, &[0], &[3, 4], 10);
    for alg in Algorithm::ALL {
        let mut engine = QueryEngine::new(&g);
        let r = engine.query(alg, 0, &[3, 4], 10).unwrap();
        assert_eq!(lengths(&r), expect, "{}", alg.name());
        let unique: HashSet<_> = r.paths.iter().map(|p| p.nodes.to_vec()).collect();
        assert_eq!(unique.len(), r.paths.len(), "{}: duplicates", alg.name());
    }
}

#[test]
fn all_nodes_are_targets() {
    // Degenerate KPJ: V_T = V. Every prefix of every simple path counts.
    let mut b = GraphBuilder::new(4);
    b.add_bidirectional(0, 1, 2).unwrap();
    b.add_bidirectional(1, 2, 3).unwrap();
    b.add_bidirectional(2, 3, 4).unwrap();
    let g = b.build();
    let targets: Vec<NodeId> = (0..4).collect();
    let expect = reference::top_k_lengths(&g, &[1], &targets, 10);
    assert_eq!(expect, vec![0, 2, 3, 7]);
    for alg in Algorithm::ALL {
        let mut engine = QueryEngine::new(&g);
        let r = engine.query(alg, 1, &targets, 10).unwrap();
        assert_eq!(lengths(&r), expect, "{}", alg.name());
    }
}

#[test]
fn sources_equal_targets_gkpj() {
    // GKPJ where V_S == V_T: k zero-length paths come first.
    let mut b = GraphBuilder::new(3);
    b.add_bidirectional(0, 1, 5).unwrap();
    b.add_bidirectional(1, 2, 5).unwrap();
    let g = b.build();
    let set = [0u32, 1, 2];
    let expect = reference::top_k_lengths(&g, &set, &set, 9);
    assert_eq!(&expect[..3], &[0, 0, 0]);
    for alg in Algorithm::ALL {
        let mut engine = QueryEngine::new(&g);
        let r = engine.query_multi(alg, &set, &set, 9).unwrap();
        assert_eq!(lengths(&r), expect, "{}", alg.name());
    }
}

#[test]
fn extreme_alpha_values_preserve_results() {
    let g = kpj::workload::datasets::SJ.generate(0.03);
    let targets = [5u32, 99, 300];
    let mut base = QueryEngine::new(&g);
    let want = lengths(&base.query(Algorithm::IterBoundI, 7, &targets, 15).unwrap());
    for alpha in [1.0001, 2.0, 1_000.0] {
        let mut engine = QueryEngine::new(&g).with_alpha(alpha);
        for alg in [
            Algorithm::IterBound,
            Algorithm::IterBoundP,
            Algorithm::IterBoundI,
        ] {
            let r = engine.query(alg, 7, &targets, 15).unwrap();
            assert_eq!(lengths(&r), want, "{} α={alpha}", alg.name());
        }
    }
}

#[test]
#[should_panic(expected = "α must exceed 1")]
fn alpha_of_one_is_rejected() {
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 1, 1).unwrap();
    let g = b.build();
    let _ = QueryEngine::new(&g).with_alpha(1.0);
}

#[test]
fn duplicate_query_inputs_are_deduplicated() {
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 1, 1).unwrap();
    b.add_edge(0, 2, 2).unwrap();
    let g = b.build();
    let mut engine = QueryEngine::new(&g);
    let r = engine
        .query_multi(Algorithm::BestFirst, &[0, 0, 0], &[1, 1, 2, 2], 10)
        .unwrap();
    assert_eq!(lengths(&r), vec![1, 2]);
}

#[test]
fn isolated_source_and_landmarkless_consistency() {
    let mut b = GraphBuilder::new(4);
    b.add_bidirectional(1, 2, 1).unwrap();
    b.add_bidirectional(2, 3, 1).unwrap();
    let g = b.build();
    for alg in Algorithm::ALL {
        let mut engine = QueryEngine::new(&g);
        // Node 0 is isolated.
        assert!(
            engine.query(alg, 0, &[3], 5).unwrap().paths.is_empty(),
            "{}",
            alg.name()
        );
        // Isolated node as a target among reachable ones.
        let r = engine.query(alg, 1, &[0, 3], 5).unwrap();
        assert_eq!(lengths(&r), vec![2], "{}", alg.name());
    }
}

#[test]
fn self_loops_never_appear_in_results() {
    let mut b = GraphBuilder::new(3);
    b.add_edge(0, 0, 1).unwrap();
    b.add_edge(0, 1, 2).unwrap();
    b.add_edge(1, 1, 0).unwrap();
    b.add_edge(1, 2, 3).unwrap();
    let g = b.build();
    for alg in Algorithm::ALL {
        let mut engine = QueryEngine::new(&g);
        let r = engine.query(alg, 0, &[1, 2], 10).unwrap();
        assert_eq!(lengths(&r), vec![2, 5], "{}", alg.name());
        for p in &r.paths {
            assert!(p.is_simple());
        }
    }
}
