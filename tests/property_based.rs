//! Property-based tests (proptest) over the whole public stack.
//!
//! Strategy-generated random graphs and queries; invariants checked:
//!
//! 1. every algorithm returns exactly the brute-force top-k length
//!    multiset (with and without landmarks);
//! 2. returned paths are simple, validate against the graph, start at a
//!    source and end at a target, and are pairwise distinct;
//! 3. landmark bounds never exceed true distances;
//! 4. the subspace division invariant: path sets before/after a division
//!    partition (checked indirectly — no duplicates + completeness vs
//!    brute force);
//! 5. result monotonicity in k: the top-(k) list is a prefix of the
//!    top-(k+1) list (as length multisets).

use kpj::core::reference;
use kpj::prelude::*;
use proptest::collection::vec;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomGraphSpec {
    n: u32,
    edges: Vec<(u32, u32, u32)>,
    bidir: bool,
}

fn graph_strategy(max_n: u32, max_m: usize, max_w: u32) -> impl Strategy<Value = RandomGraphSpec> {
    (2..=max_n).prop_flat_map(move |n| {
        (vec((0..n, 0..n, 0..=max_w), 1..=max_m), any::<bool>())
            .prop_map(move |(edges, bidir)| RandomGraphSpec { n, edges, bidir })
    })
}

fn build(spec: &RandomGraphSpec) -> Graph {
    let mut b = GraphBuilder::new(spec.n as usize);
    for &(u, v, w) in &spec.edges {
        if u == v {
            continue;
        }
        if spec.bidir {
            b.add_bidirectional(u, v, w).unwrap();
        } else {
            b.add_edge(u, v, w).unwrap();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_match_brute_force(
        spec in graph_strategy(9, 24, 15),
        source_raw in 0u32..9,
        targets_raw in vec(0u32..9, 1..4),
        k in 1usize..8,
        seed in 0u64..1000,
    ) {
        let g = build(&spec);
        let source = source_raw % spec.n;
        let targets: Vec<NodeId> = targets_raw.iter().map(|t| t % spec.n).collect();
        let expect = reference::top_k_lengths(&g, &[source], &targets, k);
        let landmarks = LandmarkIndex::build(&g, 3, SelectionStrategy::Farthest, seed);
        for with_lm in [false, true] {
            let mut engine = QueryEngine::new(&g);
            if with_lm {
                engine = engine.with_landmarks(&landmarks);
            }
            for alg in Algorithm::ALL {
                let r = engine.query(alg, source, &targets, k).unwrap();
                let got: Vec<Length> = r.paths.iter().map(|p| p.length).collect();
                prop_assert_eq!(
                    &got, &expect,
                    "{} lm={} src={} targets={:?} k={}", alg.name(), with_lm, source, &targets, k
                );
                let mut seen = std::collections::HashSet::new();
                for p in &r.paths {
                    prop_assert!(p.validate(&g).is_ok());
                    prop_assert!(p.is_simple());
                    prop_assert_eq!(p.source(), source);
                    prop_assert!(targets.contains(&p.destination()));
                    prop_assert!(seen.insert(p.nodes.to_vec()), "duplicate path");
                }
            }
        }
    }

    #[test]
    fn gkpj_matches_brute_force(
        spec in graph_strategy(8, 20, 9),
        sources_raw in vec(0u32..8, 1..4),
        targets_raw in vec(0u32..8, 1..4),
        k in 1usize..7,
    ) {
        let g = build(&spec);
        let sources: Vec<NodeId> = sources_raw.iter().map(|s| s % spec.n).collect();
        let targets: Vec<NodeId> = targets_raw.iter().map(|t| t % spec.n).collect();
        let mut dedup_sources = sources.clone();
        dedup_sources.sort_unstable();
        dedup_sources.dedup();
        let expect = reference::top_k_lengths(&g, &dedup_sources, &targets, k);
        let mut engine = QueryEngine::new(&g);
        for alg in Algorithm::ALL {
            let r = engine.query_multi(alg, &sources, &targets, k).unwrap();
            let got: Vec<Length> = r.paths.iter().map(|p| p.length).collect();
            prop_assert_eq!(&got, &expect, "{}", alg.name());
        }
    }

    #[test]
    fn landmark_bounds_are_sound(
        spec in graph_strategy(12, 40, 20),
        count in 1usize..5,
        seed in 0u64..100,
    ) {
        let g = build(&spec);
        let idx = LandmarkIndex::build(&g, count, SelectionStrategy::Farthest, seed);
        for u in g.nodes() {
            let d = kpj::sp::DenseDijkstra::from_source(&g, u);
            for v in g.nodes() {
                let lb = idx.lower_bound(u, v);
                if d.reached(v) {
                    prop_assert!(lb <= d.dist(v), "lb({u},{v})={lb} > {}", d.dist(v));
                } // else any bound incl. ∞ is fine
            }
        }
    }

    #[test]
    fn topk_is_prefix_monotone_in_k(
        spec in graph_strategy(8, 18, 9),
        source_raw in 0u32..8,
        target_raw in 0u32..8,
        k in 1usize..6,
    ) {
        let g = build(&spec);
        let source = source_raw % spec.n;
        let target = target_raw % spec.n;
        let mut engine = QueryEngine::new(&g);
        for alg in Algorithm::ALL {
            let small = engine.ksp(alg, source, target, k).unwrap();
            let large = engine.ksp(alg, source, target, k + 1).unwrap();
            let s: Vec<Length> = small.paths.iter().map(|p| p.length).collect();
            let l: Vec<Length> = large.paths.iter().map(|p| p.length).collect();
            prop_assert_eq!(&l[..s.len().min(l.len())], &s[..], "{}", alg.name());
            prop_assert!(l.len() >= s.len());
        }
    }

    #[test]
    fn alpha_never_changes_results(
        spec in graph_strategy(8, 20, 12),
        source_raw in 0u32..8,
        targets_raw in vec(0u32..8, 1..3),
        alpha_milli in 1001u64..3000,
    ) {
        let g = build(&spec);
        let source = source_raw % spec.n;
        let targets: Vec<NodeId> = targets_raw.iter().map(|t| t % spec.n).collect();
        let alpha = alpha_milli as f64 / 1000.0;
        let mut base = QueryEngine::new(&g);
        let mut tuned = QueryEngine::new(&g).with_alpha(alpha);
        for alg in [Algorithm::IterBound, Algorithm::IterBoundP, Algorithm::IterBoundI] {
            let a = base.query(alg, source, &targets, 5).unwrap();
            let b = tuned.query(alg, source, &targets, 5).unwrap();
            let la: Vec<Length> = a.paths.iter().map(|p| p.length).collect();
            let lb: Vec<Length> = b.paths.iter().map(|p| p.length).collect();
            prop_assert_eq!(la, lb, "{} α={}", alg.name(), alpha);
        }
    }
}
