//! End-to-end tests of the `kpj-cli` binary: the full offline→online
//! pipeline through actual process invocations and files on disk.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_kpj-cli"))
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("kpj-cli-test-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_pipeline_generate_pois_landmarks_query_info() {
    let dir = tmpdir("pipeline");
    let graph = dir.join("g.kpj");
    let cats = dir.join("g.cats");
    let lm = dir.join("g.lm");

    let out = cli()
        .args(["generate", "--dataset", "SJ", "--scale", "0.05", "--out"])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("913 nodes"));

    let out = cli()
        .args(["pois", "--kind", "nested", "--graph"])
        .arg(&graph)
        .arg("--out")
        .arg(&cats)
        .output()
        .unwrap();
    assert!(out.status.success());

    let out = cli()
        .args(["landmarks", "--count", "4", "--graph"])
        .arg(&graph)
        .arg("--out")
        .arg(&lm)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Query by category, with landmarks, explicit algorithm.
    let out = cli()
        .args(["query", "--source", "17", "--category", "T2", "--k", "5"])
        .args(["--algorithm", "iterboundi"])
        .arg("--graph")
        .arg(&graph)
        .arg("--categories")
        .arg(&cats)
        .arg("--landmarks")
        .arg(&lm)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "expected 5 paths:\n{stdout}");
    assert!(lines[0].starts_with("P1 len="));

    // The same query without landmarks must print identical lengths.
    let out2 = cli()
        .args(["query", "--source", "17", "--category", "T2", "--k", "5"])
        .args(["--algorithm", "da"])
        .arg("--graph")
        .arg(&graph)
        .arg("--categories")
        .arg(&cats)
        .output()
        .unwrap();
    assert!(out2.status.success());
    let lens = |s: &str| -> Vec<String> {
        s.lines()
            .filter_map(|l| l.split_whitespace().nth(1).map(String::from))
            .collect()
    };
    assert_eq!(lens(&stdout), lens(&String::from_utf8_lossy(&out2.stdout)));

    // info
    let out = cli()
        .arg("info")
        .arg("--graph")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("nodes: 913"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn query_with_explicit_targets_and_gkpj_sources() {
    let dir = tmpdir("targets");
    let graph = dir.join("g.kpj");
    let out = cli()
        .args([
            "generate", "--nodes", "200", "--arcs", "700", "--seed", "5", "--out",
        ])
        .arg(&graph)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args([
            "query",
            "--sources",
            "0,5",
            "--targets",
            "100,150,199",
            "--k",
            "3",
        ])
        .arg("--graph")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).lines().count(), 3);
    let default_stdout = String::from_utf8_lossy(&out.stdout).to_string();

    // The sidetrack engine is selectable by name and agrees on lengths.
    let out = cli()
        .args([
            "query",
            "--sources",
            "0,5",
            "--targets",
            "100,150,199",
            "--k",
            "3",
            "--algorithm",
            "sidetrack",
            "--stats",
        ])
        .arg("--graph")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let lens = |s: &str| -> Vec<String> {
        s.lines()
            .filter_map(|l| l.split_whitespace().nth(1).map(String::from))
            .collect()
    };
    let sidetrack_stdout = String::from_utf8_lossy(&out.stdout).to_string();
    assert_eq!(lens(&sidetrack_stdout), lens(&default_stdout));
    // --stats prints the QueryStats debug dump, sidetrack counters included.
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("sidetracks_scanned"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let out = cli().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = cli()
        .args(["query", "--graph", "/nonexistent/file.kpj"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let dir = tmpdir("errors");
    let graph = dir.join("g.kpj");
    cli()
        .args(["generate", "--nodes", "10", "--arcs", "30", "--out"])
        .arg(&graph)
        .output()
        .unwrap();
    // Missing source spec.
    let out = cli()
        .args(["query", "--targets", "3"])
        .arg("--graph")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--source"));
    // Bad algorithm name.
    let out = cli()
        .args([
            "query",
            "--source",
            "0",
            "--targets",
            "3",
            "--algorithm",
            "astar",
        ])
        .arg("--graph")
        .arg(&graph)
        .output()
        .unwrap();
    assert!(!out.status.success());
    // The structured error lists every valid algorithm name.
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    for name in [
        "da",
        "da-spt",
        "da-pascoal",
        "bestfirst",
        "iterbound",
        "iterboundp",
        "iterboundi",
        "sidetrack",
    ] {
        assert!(stderr.contains(name), "missing `{name}` in: {stderr}");
    }
    std::fs::remove_dir_all(&dir).ok();
}
