#!/usr/bin/env sh
# Local CI gate — the same checks .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> release build (binaries: kpj-cli, kpj-serve, kpj-loadgen, kpj-fuzz)"
cargo build --release -q

# Bounded oracle sweep: fixed seed so the gate is deterministic; set
# FUZZ_SECONDS to lengthen the box (e.g. FUZZ_SECONDS=300 for a soak).
echo "==> oracle sweep (seed 0xC0FFEE, <= ${FUZZ_SECONDS:-45}s)"
cargo run --release -q -p kpj-oracle --bin kpj-fuzz -- \
  --seed 12648430 --max-seconds "${FUZZ_SECONDS:-45}"

echo "CI OK"
