#!/usr/bin/env sh
# Local CI gate — the same checks .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test (workspace)"
cargo test --workspace -q

echo "==> release build (binaries: kpj-cli, kpj-serve, kpj-loadgen)"
cargo build --release -q

echo "CI OK"
