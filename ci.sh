#!/usr/bin/env sh
# Local CI gate — the same checks .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::redundant_clone

echo "==> cargo test (workspace)"
cargo test --workspace -q

# Same tier-1 suite with every engine forced onto the intra-query
# worker pool: parallel rounds must be answer- and test-invisible.
echo "==> cargo test (workspace, KPJ_PAR_THREADS=4)"
KPJ_PAR_THREADS=4 cargo test --workspace -q

# --test-threads=1: the counting allocator is process-global, so libtest's
# own worker threads would bleed allocations into a measured window.
echo "==> zero-allocation steady state, tracing enabled (count-alloc feature)"
cargo test -q -p kpj-core --features count-alloc --test alloc_count -- --test-threads=1

echo "==> trace feature compiles out cleanly (no-default-features)"
cargo check -q -p kpj-core --no-default-features
cargo check -q -p kpj-service --no-default-features

echo "==> metrics exposition smoke (serve -> {\"cmd\":\"metrics\"} -> Prometheus lines)"
cargo test -q -p kpj-service --test metrics_smoke

echo "==> slow-query flight recorder round trip (record -> kpj-fuzz replay)"
cargo test -q -p kpj-oracle --test flight_recorder

echo "==> release build (binaries: kpj-cli, kpj-serve, kpj-loadgen, gen-huge, kpj-fuzz, bench-kpj)"
cargo build --release -q --workspace

# Continental-scale storage smoke: stream a ~1M-node road-like graph to
# a page-aligned v2 file in O(1) writer memory, open it zero-copy via
# mmap, and answer k=20 queries cold — first through kpj-cli, then
# through a kpj-serve --graph-bin / kpj-loadgen round over TCP.
# SCALE_NODES shrinks or grows the box (keep it >= 1000).
SCALE_NODES="${SCALE_NODES:-1000000}"
echo "==> storage scale smoke (gen-huge ${SCALE_NODES} nodes -> v2 mmap -> k=20)"
SCALE_DIR="$(mktemp -d)"
SCALE_SERVE_PID=""
trap 'if [ -n "$SCALE_SERVE_PID" ]; then kill "$SCALE_SERVE_PID" 2>/dev/null || true; fi; rm -rf "$SCALE_DIR"' EXIT
./target/release/gen-huge --nodes "$SCALE_NODES" --seed 42 --out "$SCALE_DIR/huge.kpj2"
./target/release/kpj-cli info --graph "$SCALE_DIR/huge.kpj2"
./target/release/kpj-cli query --graph "$SCALE_DIR/huge.kpj2" \
  --source 17 --targets "$((SCALE_NODES / 2 - 21)),$((SCALE_NODES - 17))" \
  -k 20 --algorithm iterboundi > "$SCALE_DIR/plain.out"

# Reduction at scale: contract the same file around the query endpoints,
# fold in the BFS reorder, cold-load the reduced mmap file, and demand
# the re-expanded k=20 answer is byte-identical to the unreduced one.
echo "==> reduction scale smoke (convert --reduce --reorder -> cold mmap -> k=20 diff)"
./target/release/kpj-cli convert --graph "$SCALE_DIR/huge.kpj2" \
  --out "$SCALE_DIR/huge-red.kpj2" --to-v2 --reorder --reduce \
  --keep "17,$((SCALE_NODES / 2 - 21)),$((SCALE_NODES - 17))"
./target/release/kpj-cli info --graph "$SCALE_DIR/huge-red.kpj2"
./target/release/kpj-cli query --graph "$SCALE_DIR/huge-red.kpj2" \
  --source 17 --targets "$((SCALE_NODES / 2 - 21)),$((SCALE_NODES - 17))" \
  -k 20 --algorithm iterboundi > "$SCALE_DIR/reduced.out"
diff "$SCALE_DIR/plain.out" "$SCALE_DIR/reduced.out"

./target/release/kpj-serve --graph-bin "$SCALE_DIR/huge.kpj2" --landmarks 0 \
  --addr 127.0.0.1:7841 &
SCALE_SERVE_PID=$!
sleep 2
./target/release/kpj-loadgen --addr 127.0.0.1:7841 --node-count "$SCALE_NODES" \
  --requests 24 --connections 4 --k 20 --unique
kill "$SCALE_SERVE_PID" 2>/dev/null || true
wait "$SCALE_SERVE_PID" 2>/dev/null || true
SCALE_SERVE_PID=""
rm -rf "$SCALE_DIR"
trap - EXIT

# Bounded oracle sweep: fixed seed so the gate is deterministic; set
# FUZZ_SECONDS to lengthen the box (e.g. FUZZ_SECONDS=300 for a soak).
echo "==> oracle sweep (seed 0xC0FFEE, <= ${FUZZ_SECONDS:-45}s)"
cargo run --release -q -p kpj-oracle --bin kpj-fuzz -- \
  --seed 12648430 --max-seconds "${FUZZ_SECONDS:-45}"

# Parallel-vs-sequential differential: a second bounded sweep on its own
# fixed seed. Every case runs the full checker, whose check_parallel
# stage demands bit-identical PathSets and stats for par_threads 2 and 4
# — so this box is pure par-vs-seq differential coverage on top of the
# sweep above. PAR_DIFF_SECONDS lengthens it independently.
echo "==> parallel-vs-sequential differential (seed 0xDECAF, <= ${PAR_DIFF_SECONDS:-${FUZZ_SECONDS:-45}}s)"
cargo run --release -q -p kpj-oracle --bin kpj-fuzz -- \
  --seed 912559 --max-seconds "${PAR_DIFF_SECONDS:-${FUZZ_SECONDS:-45}}"

# Reduction differential: a third bounded sweep on its own fixed seed.
# Every case's check_reduce stage runs all algorithms on the reduced and
# reduced+reordered graphs (fresh landmarks and none) and demands the
# re-expanded answers match the original graph's bit-for-bit; the
# chain-heavy generator family keeps contraction coverage dense.
echo "==> reduction differential (seed 0x5EDD, <= ${REDUCE_DIFF_SECONDS:-30}s)"
cargo run --release -q -p kpj-oracle --bin kpj-fuzz -- \
  --seed 24285 --max-seconds "${REDUCE_DIFF_SECONDS:-30}"

# Sidetrack differential: a dedicated bounded sweep on its own fixed
# seed. The sidetrack engine answers from the reverse SPT + sidetrack
# splices rather than per-subspace searches, so this box concentrates
# coverage on the agreement between that representation and the
# deviation family (invariant 1), the brute-force oracle, and the
# reduced-graph re-expansion. SIDETRACK_DIFF_SECONDS lengthens it.
echo "==> sidetrack differential (seed 0x51DE, <= ${SIDETRACK_DIFF_SECONDS:-30}s)"
cargo run --release -q -p kpj-oracle --bin kpj-fuzz -- \
  --seed 20958 --max-seconds "${SIDETRACK_DIFF_SECONDS:-30}"

# Live-update oracle: interleave weight-update batches with queries on a
# running KpjService; after every batch, all algorithms × {landmarks,
# none} must be bit-identical to a fresh engine built from the updated
# graph, and the incrementally repaired landmark tables must equal a
# full rebuild. INTERLEAVE_SECONDS lengthens the box.
echo "==> live-update interleaving oracle (seed 0xBEEF, <= ${INTERLEAVE_SECONDS:-30}s)"
cargo run --release -q -p kpj-oracle --bin kpj-fuzz -- \
  --interleave --seed 48879 --max-seconds "${INTERLEAVE_SECONDS:-30}"

# Live-update serving smoke: 10% of the loadgen stream re-weights edges
# (epoch swap + landmark repair) while queries keep completing on their
# pinned epochs — any error spike or malformed line fails the run.
echo "==> update-load smoke (kpj-serve <- kpj-loadgen --update-rate 10)"
UPD_SERVE_PID=""
trap 'if [ -n "$UPD_SERVE_PID" ]; then kill "$UPD_SERVE_PID" 2>/dev/null || true; fi' EXIT
./target/release/kpj-serve --nodes 3000 --arcs 8000 --seed 7 --landmarks 4 \
  --addr 127.0.0.1:7842 &
UPD_SERVE_PID=$!
sleep 2
./target/release/kpj-loadgen --addr 127.0.0.1:7842 --nodes 3000 --arcs 8000 \
  --seed 7 --requests 400 --connections 4 --k 8 --update-rate 10
./target/release/kpj-cli update --addr 127.0.0.1:7842 --edge 0,1,50
kill "$UPD_SERVE_PID" 2>/dev/null || true
wait "$UPD_SERVE_PID" 2>/dev/null || true
UPD_SERVE_PID=""
trap - EXIT

# Introspection smoke: boot a server, put mixed query/update load on it
# with a machine-readable loadgen report, then assert the live system
# state over the status verb — at least one live epoch, a drained
# admission queue — via a single kpj-cli top frame.
echo "==> introspection smoke (status verb + kpj-cli top --once + loadgen --out)"
OBS_DIR="$(mktemp -d)"
OBS_SERVE_PID=""
trap 'if [ -n "$OBS_SERVE_PID" ]; then kill "$OBS_SERVE_PID" 2>/dev/null || true; fi; rm -rf "$OBS_DIR"' EXIT
./target/release/kpj-serve --nodes 3000 --arcs 8000 --seed 7 --landmarks 4 \
  --addr 127.0.0.1:7843 &
OBS_SERVE_PID=$!
sleep 2
./target/release/kpj-loadgen --addr 127.0.0.1:7843 --nodes 3000 --arcs 8000 \
  --seed 7 --requests 400 --connections 4 --k 8 --update-rate 10 \
  --out "$OBS_DIR/report.json"
grep -q '"throughput_rps"' "$OBS_DIR/report.json"
grep -q '"malformed":0' "$OBS_DIR/report.json"
./target/release/kpj-cli top --addr 127.0.0.1:7843 --once | tee "$OBS_DIR/top.out"
grep -Eq 'live=[1-9]' "$OBS_DIR/top.out"     # at least the current epoch is live
grep -q 'queue=0' "$OBS_DIR/top.out"         # load fully drained at snapshot time
grep -q 'epoch_published' "$OBS_DIR/top.out" # the update stream reached the journal
kill "$OBS_SERVE_PID" 2>/dev/null || true
wait "$OBS_SERVE_PID" 2>/dev/null || true
OBS_SERVE_PID=""
rm -rf "$OBS_DIR"
trap - EXIT

# Per-algorithm latency + allocation profile (fixed seeds, small query
# count so the gate stays quick). BENCH_QUERIES=24 for a fuller run.
# The committed BENCH_baseline.json turns the run into a perf-regression
# diff — a delta table per workload × algorithm cell plus the k-sweep,
# non-zero exit beyond BENCH_REGRESS_PCT percent (default 25). Warn-only
# here: shared CI boxes jitter well past any honest threshold; run
# `bench-kpj --compare BENCH_baseline.json` directly for the hard gate.
echo "==> bench-kpj (writes BENCH_kpj.json, diffs vs BENCH_baseline.json)"
cargo run --release -q -p kpj-bench --bin bench-kpj -- \
  --queries "${BENCH_QUERIES:-6}" --out BENCH_kpj.json \
  --compare BENCH_baseline.json \
  || echo "WARN: perf cells regressed vs BENCH_baseline.json (non-fatal; see table above)"

echo "CI OK"
