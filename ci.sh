#!/usr/bin/env sh
# Local CI gate — the same checks .github/workflows/ci.yml runs.
# Usage: ./ci.sh
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings -W clippy::redundant_clone

echo "==> cargo test (workspace)"
cargo test --workspace -q

# Same tier-1 suite with every engine forced onto the intra-query
# worker pool: parallel rounds must be answer- and test-invisible.
echo "==> cargo test (workspace, KPJ_PAR_THREADS=4)"
KPJ_PAR_THREADS=4 cargo test --workspace -q

echo "==> zero-allocation steady state, tracing enabled (count-alloc feature)"
cargo test -q -p kpj-core --features count-alloc --test alloc_count

echo "==> trace feature compiles out cleanly (no-default-features)"
cargo check -q -p kpj-core --no-default-features
cargo check -q -p kpj-service --no-default-features

echo "==> metrics exposition smoke (serve -> {\"cmd\":\"metrics\"} -> Prometheus lines)"
cargo test -q -p kpj-service --test metrics_smoke

echo "==> slow-query flight recorder round trip (record -> kpj-fuzz replay)"
cargo test -q -p kpj-oracle --test flight_recorder

echo "==> release build (binaries: kpj-cli, kpj-serve, kpj-loadgen, kpj-fuzz, bench-kpj)"
cargo build --release -q

# Bounded oracle sweep: fixed seed so the gate is deterministic; set
# FUZZ_SECONDS to lengthen the box (e.g. FUZZ_SECONDS=300 for a soak).
echo "==> oracle sweep (seed 0xC0FFEE, <= ${FUZZ_SECONDS:-45}s)"
cargo run --release -q -p kpj-oracle --bin kpj-fuzz -- \
  --seed 12648430 --max-seconds "${FUZZ_SECONDS:-45}"

# Parallel-vs-sequential differential: a second bounded sweep on its own
# fixed seed. Every case runs the full checker, whose check_parallel
# stage demands bit-identical PathSets and stats for par_threads 2 and 4
# — so this box is pure par-vs-seq differential coverage on top of the
# sweep above. PAR_DIFF_SECONDS lengthens it independently.
echo "==> parallel-vs-sequential differential (seed 0xDECAF, <= ${PAR_DIFF_SECONDS:-${FUZZ_SECONDS:-45}}s)"
cargo run --release -q -p kpj-oracle --bin kpj-fuzz -- \
  --seed 912559 --max-seconds "${PAR_DIFF_SECONDS:-${FUZZ_SECONDS:-45}}"

# Per-algorithm latency + allocation profile (fixed seeds, small query
# count so the gate stays quick). BENCH_QUERIES=24 for a fuller run.
echo "==> bench-kpj (writes BENCH_kpj.json)"
cargo run --release -q -p kpj-bench --bin bench-kpj -- \
  --queries "${BENCH_QUERIES:-6}" --out BENCH_kpj.json

echo "CI OK"
