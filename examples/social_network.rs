//! Social-network forensics with GKPJ (§1: "detect user accounts involved
//! in the top-k shortest paths between two criminal gangs to identify
//! other 'most suspicious' user accounts").
//!
//! Builds a small-world social graph, plants two "gangs" (categories of
//! accounts), runs a GKPJ query between them, and ranks the intermediate
//! accounts by how many of the top-k connection paths they appear on.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use std::collections::HashMap;

use kpj::prelude::*;
use kpj::workload::social::SocialConfig;

fn main() {
    let n = 20_000;
    println!("Generating a small-world social network with {n} accounts…");
    let graph = SocialConfig::new(n, 2024).generate();
    println!("  n = {}, m = {}", graph.node_count(), graph.edge_count());

    // Two gangs, planted in different neighbourhoods of the ring.
    let gang_a: Vec<NodeId> = vec![12, 57, 130, 301];
    let gang_b: Vec<NodeId> = vec![9_800, 10_050, 10_400];
    let mut categories = CategoryIndex::new();
    let a = categories.add_category("GangA", gang_a.clone());
    let b = categories.add_category("GangB", gang_b.clone());

    let landmarks = LandmarkIndex::build(&graph, 8, SelectionStrategy::Farthest, 5);
    let mut engine = QueryEngine::new(&graph).with_landmarks(&landmarks);

    let k = 25;
    println!(
        "\nGKPJ query: top-{k} shortest connection paths {} × {}",
        categories.name(a),
        categories.name(b)
    );
    let result = engine
        .query_multi(
            Algorithm::IterBoundI,
            categories.members(a),
            categories.members(b),
            k,
        )
        .expect("valid query");

    println!(
        "  found {} paths, lengths {}..{}",
        result.paths.len(),
        result.paths.first().map(|p| p.length).unwrap_or(0),
        result.paths.last().map(|p| p.length).unwrap_or(0)
    );

    // Rank intermediaries: accounts on many short gang-to-gang paths.
    let mut involvement: HashMap<NodeId, usize> = HashMap::new();
    for p in &result.paths {
        for &v in &p.nodes[1..p.nodes.len().saturating_sub(1)] {
            if !gang_a.contains(&v) && !gang_b.contains(&v) {
                *involvement.entry(v).or_default() += 1;
            }
        }
    }
    let mut ranked: Vec<(NodeId, usize)> = involvement.into_iter().collect();
    ranked.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));

    println!("\nMost suspicious intermediary accounts (appearances in top-{k} paths):");
    for (v, count) in ranked.iter().take(8) {
        println!("  account {v:>6}: on {count} of the {k} shortest gang-to-gang paths");
    }

    // Show one concrete path.
    if let Some(p) = result.paths.first() {
        let chain: Vec<String> = p.nodes.iter().map(|v| v.to_string()).collect();
        println!(
            "\nShortest connection ({} hops): {}",
            p.edge_count(),
            chain.join(" -> ")
        );
    }
}
