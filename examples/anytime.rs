//! The engine-room features beyond the paper: anytime (streaming) queries,
//! automatic parameter tuning, and parallel batch execution.
//!
//! ```sh
//! cargo run --release --example anytime
//! ```

use std::ops::ControlFlow;
use std::sync::Arc;
use std::time::Instant;

use kpj::parallel::{query_batch, BatchQuery};
use kpj::prelude::*;
use kpj::tuning::{tune_alpha, SampleQuery, ALPHA_GRID};
use kpj::workload::{datasets, poi, queries::QuerySets};

fn main() {
    println!("Generating an SJ-like road network…");
    let graph = Arc::new(datasets::SJ.generate(0.5));
    let mut cats = CategoryIndex::new();
    let pois = poi::generate_nested_pois(&mut cats, graph.node_count(), 11);
    let targets = cats.members(pois.t[1]).to_vec();
    let landmarks = Arc::new(LandmarkIndex::build(
        &graph,
        16,
        SelectionStrategy::Farthest,
        11,
    ));
    let qs = QuerySets::generate(&graph, &targets, 5, 20, 11);
    println!(
        "  n = {}, m = {}, |T2| = {}",
        graph.node_count(),
        graph.edge_count(),
        targets.len()
    );

    // 1. Anytime: consume paths as they are proven, stop on a condition.
    println!("\n[1] Anytime query: stop as soon as a path is 5% longer than the best");
    let mut engine = QueryEngine::new(&graph).with_landmarks(&landmarks);
    let source = qs.default_group()[0];
    let mut best: Option<Length> = None;
    let mut taken = 0usize;
    let stats = engine
        .query_visit(Algorithm::IterBoundI, source, &targets, 1_000, |p| {
            let b = *best.get_or_insert(p.length);
            if p.length as f64 > b as f64 * 1.05 {
                ControlFlow::Break(())
            } else {
                taken += 1;
                if taken <= 3 {
                    println!("    accepted: {p}");
                }
                ControlFlow::Continue(())
            }
        })
        .expect("valid query");
    println!(
        "    kept {taken} near-optimal routes, settled {} nodes",
        stats.nodes_settled
    );

    // 2. Auto-tuning α on a sample of the real workload.
    println!("\n[2] Auto-tuning α over {ALPHA_GRID:?}");
    let sample: Vec<SampleQuery> = qs
        .group(3)
        .iter()
        .take(10)
        .map(|&s| SampleQuery {
            source: s,
            targets: targets.clone(),
            k: 20,
        })
        .collect();
    let report = tune_alpha(&graph, Some(&*landmarks), &sample, &ALPHA_GRID);
    for (alpha, t) in &report.trials {
        println!("    α = {alpha:<5} → {t:>9.2?}");
    }
    println!("    best α = {}", report.best);

    // 3. Parallel batch: one engine per worker, same results, more cores
    // (speedup appears on multi-core machines; results are identical
    // regardless).
    println!(
        "\n[3] Parallel batch over 100 queries ({} core(s) available)",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    let batch: Vec<BatchQuery> = (1..=5)
        .flat_map(|grp| qs.group(grp).iter().take(20).copied().collect::<Vec<_>>())
        .map(|s| BatchQuery {
            sources: vec![s],
            targets: targets.clone(),
            k: 20,
        })
        .collect();
    for threads in [1, 4] {
        let t0 = Instant::now();
        let results = query_batch(
            &graph,
            Some(&landmarks),
            Algorithm::IterBoundI,
            &batch,
            threads,
        );
        let total_paths: usize = results
            .iter()
            .map(|r| r.as_ref().unwrap().paths.len())
            .sum();
        println!(
            "    {threads} thread(s): {:>9.2?} for {} paths",
            t0.elapsed(),
            total_paths
        );
    }
}
