//! KSP: the classic top-k *simple* shortest paths between two fixed nodes
//! (§7 Eval-II / Fig. 8 — "our approaches can be immediately used to
//! process KSP queries").
//!
//! Runs all algorithms on a single-destination query over a synthetic SJ
//! road network and prints the per-algorithm work counters, illustrating
//! why the best-first family beats the deviation baselines by orders of
//! magnitude: it simply computes far fewer shortest paths.
//!
//! ```sh
//! cargo run --release --example ksp [k]
//! ```

use std::time::Instant;

use kpj::prelude::*;
use kpj::workload::{datasets, queries::QuerySets};

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(20);

    println!("Generating an SJ-like road network (full scale)…");
    let graph = datasets::SJ.generate(1.0);
    println!("  n = {}, m = {}", graph.node_count(), graph.edge_count());
    let landmarks = LandmarkIndex::build(&graph, 16, SelectionStrategy::Farthest, 3);

    // A single destination ("Glacier" in the paper has one physical node)
    // and a Q3-ish source.
    let destination: NodeId = 1234;
    let qs = QuerySets::generate(&graph, &[destination], 5, 5, 17);
    let source = qs.default_group()[0];

    println!("\nKSP query: top-{k} simple paths {source} -> {destination}\n");
    println!(
        "{:>11} {:>12} {:>10} {:>10} {:>12} {:>10}",
        "algorithm", "time", "sp-comps", "TestLB", "settled", "spt-size"
    );
    let mut engine = QueryEngine::new(&graph).with_landmarks(&landmarks);
    let mut reference: Option<Vec<Length>> = None;
    for alg in Algorithm::ALL {
        let t = Instant::now();
        let r = engine
            .ksp(alg, source, destination, k)
            .expect("valid query");
        let dt = t.elapsed();
        println!(
            "{:>11} {:>12.1?} {:>10} {:>10} {:>12} {:>10}",
            alg.name(),
            dt,
            r.stats.shortest_path_computations,
            r.stats.testlb_calls,
            r.stats.nodes_settled,
            r.stats.spt_nodes
        );
        let lens: Vec<Length> = r.paths.iter().map(|p| p.length).collect();
        match &reference {
            None => reference = Some(lens),
            Some(want) => assert_eq!(&lens, want, "{} disagrees!", alg.name()),
        }
    }
    let lens = reference.unwrap_or_default();
    println!(
        "\nAll algorithms returned identical results: {} paths, lengths {:?}…",
        lens.len(),
        &lens[..lens.len().min(5)]
    );
}
