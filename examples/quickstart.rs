//! Quickstart: build a tiny graph, index it, and run KPJ queries with
//! every algorithm.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kpj::prelude::*;

fn main() {
    // The running example of the paper (§2, Fig. 1, made concrete):
    // a small map where some nodes are hotels (category "H").
    //
    //   v1 --2-- v8 --3-- v7(H)
    //    \                 |
    //     3       +---4----+
    //      \      |
    //       v3 ---+--3--- v6(H)
    //      /  \           /
    //     5    2 -- v5 --2
    //     |
    //    v4(H)
    let mut b = GraphBuilder::new(8);
    let (v1, v3, v4, v5, v6, v7, v8) = (0, 2, 3, 4, 5, 6, 7);
    b.add_bidirectional(v1, v8, 2).unwrap();
    b.add_bidirectional(v8, v7, 3).unwrap();
    b.add_bidirectional(v1, v3, 3).unwrap();
    b.add_bidirectional(v3, v6, 3).unwrap();
    b.add_bidirectional(v3, v7, 4).unwrap();
    b.add_bidirectional(v3, v4, 5).unwrap();
    b.add_bidirectional(v3, v5, 2).unwrap();
    b.add_bidirectional(v5, v6, 2).unwrap();
    let graph = b.build();

    // Categories are kept in an inverted index (built offline).
    let mut categories = CategoryIndex::new();
    let hotels = categories.add_category("H", vec![v4, v6, v7]);

    // Offline landmark index (ALT bounds), shared by all queries.
    let landmarks = LandmarkIndex::build(&graph, 4, SelectionStrategy::Farthest, 42);

    // One engine per thread; it reuses its scratch across queries.
    let mut engine = QueryEngine::new(&graph).with_landmarks(&landmarks);

    println!("KPJ query: top-3 shortest paths from v1 to category \"H\"\n");
    for alg in Algorithm::ALL {
        let result = engine
            .query(alg, v1, categories.members(hotels), 3)
            .expect("valid query");
        println!("{:>10}:", alg.name());
        for (i, p) in result.paths.iter().enumerate() {
            let names: Vec<String> = p.nodes.iter().map(|&v| format!("v{}", v + 1)).collect();
            println!(
                "    P{} (len {:>2}): {}",
                i + 1,
                p.length,
                names.join(" -> ")
            );
        }
        println!(
            "    stats: {} full shortest-path searches, {} TestLB probes, {} nodes settled",
            result.stats.shortest_path_computations,
            result.stats.testlb_calls,
            result.stats.nodes_settled
        );
    }
    println!("\nAll algorithms agree — the paper's Example 3.1: lengths 5, 6, 7.");
}
