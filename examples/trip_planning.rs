//! Trip planning on a road network (§1: "route planning where the
//! destination is any one from a group of nodes (e.g. 'IKEA')").
//!
//! Generates a CAL-scale synthetic road network (scaled down for a quick
//! demo), drops POI categories onto it, and compares all algorithms on a
//! realistic KPJ query: "top-10 routes from here to any Harbor".
//!
//! ```sh
//! cargo run --release --example trip_planning
//! ```

use std::time::Instant;

use kpj::prelude::*;
use kpj::workload::{datasets, poi, queries::QuerySets};

fn main() {
    let scale = 0.1;
    println!("Generating a CAL-like road network at scale {scale}…");
    let graph = datasets::CAL.generate(scale);
    println!("  n = {}, m = {}", graph.node_count(), graph.edge_count());

    let mut categories = CategoryIndex::new();
    let cal = poi::generate_cal_categories(&mut categories, graph.node_count(), 7);
    let harbors = categories.members(cal.harbor).to_vec();
    println!(
        "  {} categories; Harbor has {} locations",
        categories.category_count(),
        harbors.len()
    );

    let t0 = Instant::now();
    let landmarks = LandmarkIndex::build(&graph, 16, SelectionStrategy::Farthest, 7);
    println!(
        "  built 16 landmarks in {:.1?} (offline, reused by every query)",
        t0.elapsed()
    );

    // A medium-distance source, as in the paper's default query set Q3.
    let qs = QuerySets::generate(&graph, &harbors, 5, 10, 99);
    let source = qs.default_group()[0];
    let k = 10;
    println!("\nTop-{k} routes from node {source} to the nearest Harbors:\n");

    let mut engine = QueryEngine::new(&graph).with_landmarks(&landmarks);
    for alg in Algorithm::ALL {
        let t = Instant::now();
        let result = engine.query(alg, source, &harbors, k).expect("valid query");
        let elapsed = t.elapsed();
        let first = result.paths.first().map(|p| p.length).unwrap_or(0);
        let last = result.paths.last().map(|p| p.length).unwrap_or(0);
        println!(
            "{:>10}: {:>9.1?}  ({} paths, lengths {}..{}, {} settled, SPT {})",
            alg.name(),
            elapsed,
            result.paths.len(),
            first,
            last,
            result.stats.nodes_settled,
            result.stats.spt_nodes,
        );
    }

    // Show the winning itinerary.
    let best = engine
        .query(Algorithm::IterBoundI, source, &harbors, 1)
        .unwrap()
        .paths
        .path(0)
        .to_path();
    println!(
        "\nBest route: {} road segments, total length {}, arriving at Harbor node {}",
        best.edge_count(),
        best.length,
        best.destination()
    );
}
