//! Gene-network analysis (§1, citing Shih & Parthasarathy 2012: "the
//! lengths of top-k shortest paths may be used to define the importance
//! of a target gene to a source gene").
//!
//! Builds a layered regulatory network, then scores every terminal target
//! gene against a source transcription factor by the *sum of its top-k
//! regulatory path lengths* (shorter ⇒ more strongly regulated), using
//! KSP queries.
//!
//! ```sh
//! cargo run --release --example gene_network
//! ```

use kpj::prelude::*;
use kpj::workload::gene::GeneConfig;

fn main() {
    let cfg = GeneConfig::new(5, 40, 11);
    println!(
        "Generating a regulatory network: {} layers × {} genes…",
        cfg.layers, cfg.per_layer
    );
    let graph = cfg.generate();
    println!("  n = {}, m = {}", graph.node_count(), graph.edge_count());

    let source_tf = cfg.layer(0).start; // a transcription factor
    let targets: Vec<NodeId> = cfg.layer(cfg.layers - 1).collect();

    let mut engine = QueryEngine::new(&graph);
    let k = 5;

    // Importance of each target gene: mean of its top-k path lengths from
    // the source TF (∞-free: genes with no regulatory path are skipped).
    let mut scores: Vec<(NodeId, f64, usize)> = Vec::new();
    for &gene in &targets {
        let r = engine
            .ksp(Algorithm::IterBoundI, source_tf, gene, k)
            .expect("valid");
        if r.paths.is_empty() {
            continue;
        }
        let mean = r.paths.iter().map(|p| p.length as f64).sum::<f64>() / r.paths.len() as f64;
        scores.push((gene, mean, r.paths.len()));
    }
    scores.sort_by(|a, b| a.1.total_cmp(&b.1));

    println!(
        "\nTop target genes regulated by TF {source_tf} (mean of top-{k} path lengths, lower = stronger):"
    );
    for (gene, mean, found) in scores.iter().take(10) {
        println!("  gene {gene:>4}: score {mean:>8.1} ({found} regulatory paths)");
    }
    println!(
        "\n{} of {} terminal genes are reachable from TF {source_tf}.",
        scores.len(),
        targets.len()
    );

    // KPJ view: the k shortest paths from the TF into the *whole* terminal
    // layer at once (which genes does it hit first?).
    let r = engine
        .query(Algorithm::IterBoundI, source_tf, &targets, 8)
        .expect("valid");
    println!("\nFirst genes reached (one KPJ query over the terminal layer):");
    for p in &r.paths {
        println!(
            "  length {:>5} -> gene {} (via {} intermediates)",
            p.length,
            p.destination(),
            p.edge_count().saturating_sub(1)
        );
    }
}
