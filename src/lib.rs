//! `kpj` — top-k shortest path join queries on large graphs.
//!
//! This is the facade crate of the workspace reproducing
//! *"Efficiently Computing Top-K Shortest Path Join"* (EDBT 2015): it
//! re-exports the public API of every member crate and provides a
//! [`prelude`]. See the `README.md` for a tour and `DESIGN.md` for the
//! paper-to-code map.
//!
//! ```
//! use kpj::prelude::*;
//!
//! // Build a graph (or generate one: see `kpj::workload`).
//! let mut b = GraphBuilder::new(4);
//! b.add_bidirectional(0, 1, 3).unwrap();
//! b.add_bidirectional(1, 2, 4).unwrap();
//! b.add_bidirectional(0, 3, 9).unwrap();
//! b.add_bidirectional(3, 2, 1).unwrap();
//! let g = b.build();
//!
//! // Answer a KPJ query with the paper's flagship algorithm.
//! let mut engine = QueryEngine::new(&g);
//! let top2 = engine.query(Algorithm::IterBoundI, 0, &[2, 3], 2).unwrap();
//! assert_eq!(top2.paths.path(0).length, 7);  // 0-1-2
//! assert_eq!(top2.paths.path(1).length, 8);  // 0-1-2-3 (beats the direct 0-3 of length 9)
//! ```

#![warn(missing_docs)]

/// Graph substrate: CSR graphs, categories, paths, I/O
/// (re-export of [`kpj_graph`]).
pub mod graph {
    pub use kpj_graph::*;
}

/// Priority queues (re-export of [`kpj_heap`]).
pub mod heap {
    pub use kpj_heap::*;
}

/// Shortest-path algorithms (re-export of [`kpj_sp`]).
pub mod sp {
    pub use kpj_sp::*;
}

/// Landmark (ALT) lower-bound index (re-export of [`kpj_landmark`]).
pub mod landmark {
    pub use kpj_landmark::*;
}

/// The KPJ algorithms and query engine (re-export of [`kpj_core`]).
pub mod core {
    pub use kpj_core::*;
}

/// Workload generators (re-export of [`kpj_workload`]).
pub mod workload {
    pub use kpj_workload::*;
}

/// Storage subsystem: the page-aligned v2 binary format, zero-copy mmap
/// loading, BFS locality reordering (re-export of [`kpj_store`]; see
/// `DESIGN.md` §13).
pub mod store {
    pub use kpj_store::*;
}

/// Concurrent query serving: engine pool, result cache, deadlines,
/// metrics, and the `kpj-serve`/`kpj-loadgen` wire protocol
/// (re-export of [`kpj_service`]).
pub mod service {
    pub use kpj_service::*;
}

/// Observability primitives: the zero-allocation span tracer, per-stage
/// latency histograms, and the `(algorithm, stage)` registry behind the
/// Prometheus exposition (re-export of [`kpj_obs`]).
pub mod obs {
    pub use kpj_obs::*;
}

pub mod parallel;
pub mod tuning;

/// The names almost every user needs.
pub mod prelude {
    pub use kpj_core::{Algorithm, KpjResult, QueryEngine, QueryError, QueryStats};
    pub use kpj_graph::{
        CategoryId, CategoryIndex, Graph, GraphBuilder, Length, NodeId, Path, Weight,
    };
    pub use kpj_landmark::{LandmarkIndex, SelectionStrategy};
}

pub use kpj_core::{Algorithm, KpjResult, QueryEngine, QueryError, QueryStats};
pub use kpj_graph::{CategoryIndex, Graph, GraphBuilder, Length, NodeId, Path, Weight};
pub use kpj_landmark::{LandmarkIndex, SelectionStrategy};
