//! Parallel batch query execution.
//!
//! Throughput across *many* queries parallelizes trivially: the graph
//! and landmark index are immutable after the offline phase, so each
//! worker thread owns its own engine and pulls queries from a shared
//! queue. This module packages that pattern as a thin veneer over the
//! serving layer's [`EnginePool`](kpj_service::EnginePool) — the same
//! machinery that backs `kpj-serve`, minus the cache and the wire.
//!
//! Since the engine also parallelizes *within* a query (deviation
//! rounds fan out across `par_threads`, with a deterministic merge that
//! keeps answers bit-identical to sequential),
//! [`query_batch_budget`] exposes both axes under one combined budget:
//! `workers × par_threads` is capped at the machine's available
//! parallelism, so the two layers never oversubscribe each other.

use std::sync::Arc;

use kpj_core::{Algorithm, KpjResult, QueryError};
use kpj_graph::{Graph, NodeId};
use kpj_landmark::LandmarkIndex;
use kpj_service::{EnginePool, PoolConfig, QueryRequest, ServiceError};

/// One query of a batch (GKPJ-shaped; use a single-element `sources` for
/// plain KPJ/KSP).
#[derive(Debug, Clone)]
pub struct BatchQuery {
    /// Source set `V_S` (singleton for KPJ).
    pub sources: Vec<NodeId>,
    /// Destination set `V_T`.
    pub targets: Vec<NodeId>,
    /// Number of paths.
    pub k: usize,
}

/// Run `queries` with `alg` on `threads` worker threads, each owning a
/// private engine. Results are returned in input order.
///
/// `threads = 0` means one worker per available CPU
/// (`std::thread::available_parallelism`). The pool's queue is sized to
/// the batch, so admission control never rejects here. Worker panics
/// propagate.
pub fn query_batch(
    graph: &Arc<Graph>,
    landmarks: Option<&Arc<LandmarkIndex>>,
    alg: Algorithm,
    queries: &[BatchQuery],
    threads: usize,
) -> Vec<Result<KpjResult, QueryError>> {
    query_batch_budget(graph, landmarks, alg, queries, threads, 0)
}

/// [`query_batch`] with a second, *intra-query* parallelism axis.
///
/// `par_threads` is the number of deviation-round threads each worker
/// may use per query (`QueryEngine::set_par_threads`; `0` or `1` =
/// sequential, answers are bit-identical either way). The two axes
/// multiply, so the effective per-worker grant is capped to keep
/// `workers × grant` within `std::thread::available_parallelism()`:
/// a batch wide enough to occupy every core runs sequential queries,
/// a narrow batch on a wide machine spends the idle cores inside each
/// query.
pub fn query_batch_budget(
    graph: &Arc<Graph>,
    landmarks: Option<&Arc<LandmarkIndex>>,
    alg: Algorithm,
    queries: &[BatchQuery],
    threads: usize,
    par_threads: usize,
) -> Vec<Result<KpjResult, QueryError>> {
    if queries.is_empty() {
        return Vec::new();
    }
    let workers = kpj_service::resolve_workers(threads).min(queries.len());
    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let par_eff = if par_threads <= 1 {
        0
    } else {
        par_threads.min((available / workers).max(1))
    };
    let pool = EnginePool::new(
        Arc::clone(graph),
        landmarks.map(Arc::clone),
        PoolConfig {
            workers,
            queue_capacity: queries.len(),
            par_threads_max: par_eff,
        },
    );
    // Submit everything up front (the queue holds the whole batch), then
    // collect in input order.
    let handles: Vec<_> = queries
        .iter()
        .map(|q| {
            pool.submit(QueryRequest {
                algorithm: alg,
                sources: q.sources.clone(),
                targets: q.targets.clone(),
                k: q.k,
                timeout_ms: None,
            })
            .expect("queue is sized to the batch")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| match h.wait() {
            Ok(result) => Ok(result),
            Err(ServiceError::Query(e)) => Err(e),
            Err(other) => panic!("batch worker failed: {other}"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::datasets;
    use kpj_core::QueryEngine;
    use kpj_landmark::SelectionStrategy;

    fn batch(n_queries: u32, n: u32) -> Vec<BatchQuery> {
        (0..n_queries)
            .map(|i| BatchQuery {
                sources: vec![(i * 37) % n],
                targets: vec![(i * 101 + 5) % n, (i * 13 + 9) % n],
                k: 1 + (i as usize % 10),
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = Arc::new(datasets::SJ.generate(0.05));
        let idx = Arc::new(LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 1));
        let queries = batch(40, g.node_count() as u32);
        let par = query_batch(&g, Some(&idx), Algorithm::IterBoundI, &queries, 4);
        let mut engine = QueryEngine::new(&g).with_landmarks(&idx);
        for (q, r) in queries.iter().zip(&par) {
            let seq = engine.query_multi(Algorithm::IterBoundI, &q.sources, &q.targets, q.k);
            let got: Vec<u64> = r.as_ref().unwrap().paths.iter().map(|p| p.length).collect();
            let want: Vec<u64> = seq.unwrap().paths.iter().map(|p| p.length).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn degenerate_thread_counts_and_errors() {
        let g = Arc::new(datasets::SJ.generate(0.02));
        let n = g.node_count() as u32;
        let mut queries = batch(5, n);
        queries.push(BatchQuery {
            sources: vec![],
            targets: vec![1],
            k: 3,
        });
        queries.push(BatchQuery {
            sources: vec![n + 5],
            targets: vec![1],
            k: 3,
        });
        for threads in [0, 1, 16] {
            // The intra-query axis must not disturb results or error
            // mapping under any degenerate combination: disabled (0),
            // no-op (1), wider than the machine (8) — the combined
            // budget clamps the latter rather than oversubscribing.
            for par_threads in [0, 1, 8] {
                let r = query_batch_budget(&g, None, Algorithm::Da, &queries, threads, par_threads);
                assert_eq!(r.len(), queries.len());
                assert!(r[..5].iter().all(Result::is_ok));
                assert!(matches!(r[5], Err(QueryError::NoSources)));
                assert!(matches!(r[6], Err(QueryError::SourceOutOfRange(_))));
            }
        }
    }

    #[test]
    fn budgeted_parallel_matches_sequential() {
        let g = Arc::new(datasets::SJ.generate(0.05));
        let queries = batch(12, g.node_count() as u32);
        // One worker leaves the whole machine's budget to the
        // intra-query axis; answers must still be bit-identical.
        let par = query_batch_budget(&g, None, Algorithm::DaSptPascoal, &queries, 1, 4);
        let seq = query_batch(&g, None, Algorithm::DaSptPascoal, &queries, 1);
        for (p, s) in par.iter().zip(&seq) {
            assert_eq!(p.as_ref().unwrap().paths, s.as_ref().unwrap().paths);
        }
    }

    #[test]
    fn empty_batch() {
        let g = Arc::new(datasets::SJ.generate(0.02));
        assert!(query_batch(&g, None, Algorithm::IterBoundI, &[], 8).is_empty());
    }
}
