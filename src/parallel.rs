//! Parallel batch query execution.
//!
//! The paper's engine — like this crate's [`QueryEngine`] — is
//! single-threaded per query (all scratch is reused across queries).
//! Throughput across *many* queries, however, parallelizes trivially: the
//! graph and landmark index are immutable after the offline phase, so each
//! worker thread owns its own engine and pulls queries from a shared
//! counter. This module packages that pattern.

use std::sync::atomic::{AtomicUsize, Ordering};

use kpj_core::{Algorithm, KpjResult, QueryEngine, QueryError};
use kpj_graph::{Graph, NodeId};
use kpj_landmark::LandmarkIndex;

/// One query of a batch (GKPJ-shaped; use a single-element `sources` for
/// plain KPJ/KSP).
#[derive(Debug, Clone)]
pub struct BatchQuery {
    /// Source set `V_S` (singleton for KPJ).
    pub sources: Vec<NodeId>,
    /// Destination set `V_T`.
    pub targets: Vec<NodeId>,
    /// Number of paths.
    pub k: usize,
}

/// Run `queries` with `alg` on `threads` worker threads, each owning a
/// private [`QueryEngine`]. Results are returned in input order.
///
/// `threads = 0` is treated as 1. Worker panics propagate.
pub fn query_batch(
    graph: &Graph,
    landmarks: Option<&LandmarkIndex>,
    alg: Algorithm,
    queries: &[BatchQuery],
    threads: usize,
) -> Vec<Result<KpjResult, QueryError>> {
    let threads = threads.max(1).min(queries.len().max(1));
    let next = AtomicUsize::new(0);

    let mut tagged: Vec<(usize, Result<KpjResult, QueryError>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut engine = QueryEngine::new(graph);
                        if let Some(idx) = landmarks {
                            engine = engine.with_landmarks(idx);
                        }
                        let mut out = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            let q = &queries[i];
                            out.push((i, engine.query_multi(alg, &q.sources, &q.targets, q.k)));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
        });

    tagged.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), queries.len());
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::datasets;
    use kpj_landmark::SelectionStrategy;

    fn batch(n_queries: u32, n: u32) -> Vec<BatchQuery> {
        (0..n_queries)
            .map(|i| BatchQuery {
                sources: vec![(i * 37) % n],
                targets: vec![(i * 101 + 5) % n, (i * 13 + 9) % n],
                k: 1 + (i as usize % 10),
            })
            .collect()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = datasets::SJ.generate(0.05);
        let idx = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 1);
        let queries = batch(40, g.node_count() as u32);
        let par = query_batch(&g, Some(&idx), Algorithm::IterBoundI, &queries, 4);
        let mut engine = QueryEngine::new(&g).with_landmarks(&idx);
        for (q, r) in queries.iter().zip(&par) {
            let seq = engine.query_multi(Algorithm::IterBoundI, &q.sources, &q.targets, q.k);
            let got: Vec<u64> = r.as_ref().unwrap().paths.iter().map(|p| p.length).collect();
            let want: Vec<u64> = seq.unwrap().paths.iter().map(|p| p.length).collect();
            assert_eq!(got, want);
        }
    }

    #[test]
    fn degenerate_thread_counts_and_errors() {
        let g = datasets::SJ.generate(0.02);
        let n = g.node_count() as u32;
        let mut queries = batch(5, n);
        queries.push(BatchQuery { sources: vec![], targets: vec![1], k: 3 });
        queries.push(BatchQuery { sources: vec![n + 5], targets: vec![1], k: 3 });
        for threads in [0, 1, 16] {
            let r = query_batch(&g, None, Algorithm::Da, &queries, threads);
            assert_eq!(r.len(), queries.len());
            assert!(r[..5].iter().all(Result::is_ok));
            assert!(matches!(r[5], Err(QueryError::NoSources)));
            assert!(matches!(r[6], Err(QueryError::SourceOutOfRange(_))));
        }
    }

    #[test]
    fn empty_batch() {
        let g = datasets::SJ.generate(0.02);
        assert!(query_batch(&g, None, Algorithm::IterBoundI, &[], 8).is_empty());
    }
}
