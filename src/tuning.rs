//! Automatic parameter selection for `IterBoundI`.
//!
//! The paper tunes `|L|` (landmark count) and `α` (τ growth factor) by
//! hand and closes Eval-I with: *"It will be our future work to
//! automatically find the best choice of |L| and α."* This module is that
//! future work: measure a sample of real queries over a candidate grid and
//! pick the fastest setting. Deterministic given the query sample; the
//! cost is `O(|grid| · |sample|)` queries plus (for `|L|`) one index build
//! per candidate.

use std::time::{Duration, Instant};

use kpj_core::{Algorithm, QueryEngine};
use kpj_graph::{Graph, NodeId};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};

/// A sample query: one source and its destination set.
#[derive(Debug, Clone)]
pub struct SampleQuery {
    /// Source node.
    pub source: NodeId,
    /// Destination set `V_T`.
    pub targets: Vec<NodeId>,
    /// Number of paths to request.
    pub k: usize,
}

/// Outcome of a grid search: every trial plus the winner.
#[derive(Debug, Clone)]
pub struct TuningReport<P> {
    /// `(candidate, total wall time over the sample)`, in grid order.
    pub trials: Vec<(P, Duration)>,
    /// The fastest candidate.
    pub best: P,
}

impl<P: Copy> TuningReport<P> {
    fn from_trials(trials: Vec<(P, Duration)>) -> Self {
        let best = trials
            .iter()
            .min_by_key(|(_, d)| *d)
            .expect("at least one candidate")
            .0;
        TuningReport { trials, best }
    }
}

/// The paper's α grid (Fig. 6(b)).
pub const ALPHA_GRID: [f64; 5] = [1.05, 1.1, 1.2, 1.5, 1.8];

/// The paper's `|L|` grid (Fig. 6(a)).
pub const LANDMARK_GRID: [usize; 6] = [4, 8, 12, 16, 20, 32];

/// Pick the fastest `α` for `IterBoundI` on this graph/index/workload.
///
/// # Panics
/// Panics if `grid` or `sample` is empty, or any α ≤ 1.
pub fn tune_alpha(
    graph: &Graph,
    landmarks: Option<&LandmarkIndex>,
    sample: &[SampleQuery],
    grid: &[f64],
) -> TuningReport<f64> {
    assert!(!grid.is_empty() && !sample.is_empty(), "empty tuning input");
    let trials = grid
        .iter()
        .map(|&alpha| {
            let mut engine = QueryEngine::new(graph).with_alpha(alpha);
            if let Some(idx) = landmarks {
                engine = engine.with_landmarks(idx);
            }
            (alpha, run_sample(&mut engine, sample))
        })
        .collect();
    TuningReport::from_trials(trials)
}

/// Pick the fastest landmark count for `IterBoundI`, rebuilding the index
/// per candidate (`Farthest` selection, as in the paper). Returns the
/// report and the winning index so callers don't pay for a rebuild.
///
/// # Panics
/// Panics if `grid` or `sample` is empty.
pub fn tune_landmark_count(
    graph: &Graph,
    sample: &[SampleQuery],
    grid: &[usize],
    seed: u64,
) -> (TuningReport<usize>, LandmarkIndex) {
    assert!(!grid.is_empty() && !sample.is_empty(), "empty tuning input");
    let mut best_index: Option<(usize, LandmarkIndex)> = None;
    let mut trials = Vec::with_capacity(grid.len());
    for &count in grid {
        let idx = LandmarkIndex::build(graph, count, SelectionStrategy::Farthest, seed);
        let mut engine = QueryEngine::new(graph).with_landmarks(&idx);
        let elapsed = run_sample(&mut engine, sample);
        trials.push((count, elapsed));
        let is_best = trials.iter().all(|&(_, d)| elapsed <= d);
        if is_best {
            best_index = Some((count, idx));
        }
    }
    let report = TuningReport::from_trials(trials);
    let (_, idx) = best_index.expect("grid non-empty");
    (report, idx)
}

fn run_sample(engine: &mut QueryEngine<'_>, sample: &[SampleQuery]) -> Duration {
    let t0 = Instant::now();
    for q in sample {
        let _ = engine
            .query(Algorithm::IterBoundI, q.source, &q.targets, q.k)
            .expect("sample queries must be valid for the graph");
    }
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_workload::datasets;
    use kpj_workload::poi::generate_nested_pois;
    use kpj_workload::queries::QuerySets;

    fn sample() -> (Graph, Vec<SampleQuery>) {
        let g = datasets::SJ.generate(0.05);
        let mut cats = kpj_graph::CategoryIndex::new();
        let pois = generate_nested_pois(&mut cats, g.node_count(), 1);
        let targets = cats.members(pois.t[1]).to_vec();
        let qs = QuerySets::generate(&g, &targets, 5, 2, 1);
        let sample = qs
            .group(3)
            .iter()
            .map(|&s| SampleQuery {
                source: s,
                targets: targets.clone(),
                k: 10,
            })
            .collect();
        (g, sample)
    }

    #[test]
    fn alpha_tuning_returns_a_grid_member() {
        let (g, sample) = sample();
        let report = tune_alpha(&g, None, &sample, &[1.1, 1.5]);
        assert_eq!(report.trials.len(), 2);
        assert!([1.1, 1.5].contains(&report.best));
        assert!(report.trials.iter().any(|&(a, _)| a == report.best));
    }

    #[test]
    fn landmark_tuning_returns_matching_index() {
        let (g, sample) = sample();
        let (report, idx) = tune_landmark_count(&g, &sample, &[2, 6], 7);
        assert_eq!(report.trials.len(), 2);
        assert_eq!(idx.len(), report.best);
        // The winning index is usable directly.
        let mut engine = QueryEngine::new(&g).with_landmarks(&idx);
        let r = engine.query(
            Algorithm::IterBoundI,
            sample[0].source,
            &sample[0].targets,
            5,
        );
        assert!(r.is_ok());
    }

    #[test]
    #[should_panic(expected = "empty tuning input")]
    fn empty_grid_panics() {
        let (g, sample) = sample();
        let _ = tune_alpha(&g, None, &sample, &[]);
    }
}
