//! `kpj-cli` — run KPJ/KSP/GKPJ queries from the command line.
//!
//! ```sh
//! # Generate a synthetic road network (binary graph file) + categories:
//! kpj-cli generate --dataset SJ --scale 0.2 --out sj.kpj
//! kpj-cli pois --graph sj.kpj --kind nested --out sj.cats
//!
//! # Build and persist a landmark index:
//! kpj-cli landmarks --graph sj.kpj --count 16 --out sj.lm
//!
//! # Query: top-20 shortest paths from node 17 to category T2:
//! kpj-cli query --graph sj.kpj --landmarks sj.lm --categories sj.cats \
//!               --source 17 --category T2 -k 20 --algorithm iterboundi
//!
//! # Or with explicit target nodes, any algorithm, GKPJ sources:
//! kpj-cli query --graph sj.kpj --sources 17,99 --targets 3,5,1020 -k 10
//!
//! # Inspect a graph file:
//! kpj-cli info --graph sj.kpj
//! ```
//!
//! Graph files use the compact binary format of `kpj_graph::io`; category
//! files use the text format (`<name> <node>…` per line). DIMACS `.gr`
//! files are auto-detected by extension.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use kpj::prelude::*;
use kpj::workload::{datasets::DatasetSpec, poi, road::RoadConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => generate(&opts),
        "pois" => pois(&opts),
        "landmarks" => landmarks(&opts),
        "convert" => convert(&opts),
        "query" => query(&opts),
        "update" => update(&opts),
        "top" => top(&opts),
        "info" => info(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
kpj-cli — top-k shortest path join queries

commands:
  generate  --out FILE (--dataset NAME --scale S | --nodes N --arcs M) [--seed S]
  pois      --graph FILE --out FILE [--kind nested|cal] [--seed S]
  landmarks --graph FILE --out FILE [--count N] [--seed S] [--threads T]
  convert   --graph FILE --out FILE --to-v2 [--reduce [--keep a,b,c]]
            [--reorder] [--landmarks N] [--threads T] [--categories FILE]
            [--seed S]
            (write the page-aligned v2 format: zero-copy mmap on load,
             optional graph reduction — degree-2 chain contraction plus
             V_S/V_T pruning around the --keep ids and category members —
             optional BFS locality reorder, embedded landmark tables)
  query     --graph FILE (--targets a,b,c | --categories FILE --category NAME)
            (--source N | --sources a,b) [-k N] [--algorithm NAME]
            [--landmarks FILE] [--alpha F] [--timeout-ms MS] [--stats]
            [--metrics]   (print the per-stage registry, Prometheus text)
  update    --edge U,V,W [--edge U,V,W]… | --file FILE   [--addr HOST:PORT]
            (re-weight edges on a running kpj-serve; every parallel copy
             of (U,V) gets weight W and a new graph epoch is published.
             FILE holds one `U V W` triple per line, `#` comments ok)
  top       [--addr HOST:PORT] [--interval-ms MS] [--once]
            (live ops dashboard over a running kpj-serve's status verb:
             epochs, pool, cache, throughput, latency and the structured
             event journal, redrawn every MS [default: 1000]; --once
             prints a single snapshot and exits — CI-friendly)
  info      --graph FILE

Graph files: v1 and v2 binary formats and DIMACS `.gr` are auto-detected.
A v2 file opens zero-copy (mmap); its embedded landmarks are used unless
--landmarks overrides, and node ids on the command line are always
*original* ids even when the file is locality-reordered or reduced
(reduced files re-expand every answer path to original ids; querying a
contracted node is an error — rebuild with --keep to retain it).

algorithms: da, da-spt, da-pascoal, bestfirst, iterbound, iterboundp,
            iterboundi (default), sidetrack";

/// Parsed `--key value` options (order-insensitive).
struct Opts(Vec<(String, String)>);

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut out = Vec::new();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let key = a
                .strip_prefix("--")
                .or_else(|| a.strip_prefix('-'))
                .ok_or_else(|| format!("expected an option, got `{a}`"))?;
            let flag_only = matches!(
                key,
                "stats" | "metrics" | "to-v2" | "reorder" | "reduce" | "once"
            );
            let value = if flag_only {
                "true".to_string()
            } else {
                it.next()
                    .ok_or_else(|| format!("missing value for --{key}"))?
                    .clone()
            };
            out.push((key.to_string(), value));
        }
        Ok(Opts(out))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable option, in command-line order.
    fn get_all<'a>(&'a self, key: &'a str) -> impl Iterator<Item = &'a str> + 'a {
        self.0
            .iter()
            .filter(move |(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }

    fn node_list(&self, key: &str) -> Result<Option<Vec<NodeId>>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(v) => v
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .map_err(|_| format!("--{key}: bad node id `{t}`"))
                })
                .collect::<Result<Vec<_>, _>>()
                .map(Some),
        }
    }
}

/// Open any supported graph file as a [`kpj::store::StoreBundle`]:
/// DIMACS `.gr` and v1 binaries land on the heap, v2 binaries are
/// mmapped zero-copy together with their embedded sidecars (categories,
/// landmark tables, reorder permutation).
fn load_bundle(path: &str) -> Result<kpj::store::StoreBundle, String> {
    if path.ends_with(".gr") {
        let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
        let g = kpj::graph::io::read_dimacs_gr(BufReader::new(f))
            .map_err(|e| format!("{path}: {e}"))?;
        return Ok(kpj::store::StoreBundle::from_heap_graph(g));
    }
    kpj::store::open_any(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))
}

fn load_graph(path: &str) -> Result<Graph, String> {
    Ok(load_bundle(path)?.graph)
}

fn generate(o: &Opts) -> Result<(), String> {
    let out = o.require("out")?;
    let seed: u64 = o.num("seed", 42)?;
    let g = if let Some(name) = o.get("dataset") {
        let spec = DatasetSpec::by_name(name)
            .ok_or_else(|| format!("unknown dataset `{name}` (CAL/SJ/SF/COL/FLA/USA)"))?;
        let scale: f64 = o.num("scale", 0.1)?;
        spec.generate(scale)
    } else {
        let nodes: usize = o.num("nodes", 0)?;
        let arcs: usize = o.num("arcs", 0)?;
        if nodes == 0 {
            return Err("need --dataset or --nodes/--arcs".into());
        }
        RoadConfig {
            nodes,
            arcs,
            base_weight: 1_000,
            seed,
        }
        .generate()
    };
    let f = File::create(out).map_err(|e| format!("{out}: {e}"))?;
    kpj::graph::io::write_binary(&g, BufWriter::new(f)).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} nodes, {} arcs)",
        out,
        g.node_count(),
        g.edge_count()
    );
    Ok(())
}

fn pois(o: &Opts) -> Result<(), String> {
    let g = load_graph(o.require("graph")?)?;
    let out = o.require("out")?;
    let seed: u64 = o.num("seed", 42)?;
    let mut idx = CategoryIndex::new();
    match o.get("kind").unwrap_or("nested") {
        "nested" => {
            poi::generate_nested_pois(&mut idx, g.node_count(), seed);
        }
        "cal" => {
            poi::generate_cal_categories(&mut idx, g.node_count(), seed);
        }
        other => return Err(format!("unknown --kind `{other}` (nested|cal)")),
    }
    let f = File::create(out).map_err(|e| format!("{out}: {e}"))?;
    kpj::graph::io::write_categories(&idx, BufWriter::new(f)).map_err(|e| e.to_string())?;
    println!("wrote {} ({} categories)", out, idx.category_count());
    Ok(())
}

fn landmarks(o: &Opts) -> Result<(), String> {
    let g = load_graph(o.require("graph")?)?;
    let out = o.require("out")?;
    let count: usize = o.num("count", 16)?;
    let seed: u64 = o.num("seed", 42)?;
    // Parallel build is bit-identical to the sequential one; `--threads 0`
    // (the default) uses every core.
    let threads: usize = o.num("threads", 0)?;
    let idx = kpj::core::offline::build_landmarks_parallel(
        &g,
        count,
        SelectionStrategy::Farthest,
        seed,
        threads,
    );
    let f = File::create(out).map_err(|e| format!("{out}: {e}"))?;
    idx.write_binary(BufWriter::new(f))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} landmarks over {} nodes)",
        out,
        idx.len(),
        idx.node_count()
    );
    Ok(())
}

/// `convert --to-v2`: rewrite any supported graph file into the
/// page-aligned v2 format, optionally BFS-reordering for cache locality
/// and embedding landmark tables, so `kpj-serve --graph-bin` cold-starts
/// zero-copy from mmap.
fn convert(o: &Opts) -> Result<(), String> {
    if o.get("to-v2").is_none() {
        return Err("convert: only --to-v2 is supported".into());
    }
    let input = o.require("graph")?;
    let out = o.require("out")?;
    let seed: u64 = o.num("seed", 42)?;
    let threads: usize = o.num("threads", 0)?;
    let bundle = load_bundle(input)?;
    let (mut graph, mut landmarks, mut remap) = (bundle.graph, bundle.landmarks, bundle.remap);
    let mut reduction = bundle.reduction;

    let mut categories = match o.get("categories") {
        None => bundle.categories,
        Some(path) => {
            let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
            Some(
                kpj::graph::io::read_categories(BufReader::new(f), graph.node_count())
                    .map_err(|e| e.to_string())?,
            )
        }
    };

    if o.get("reduce").is_some() {
        if reduction.is_some() {
            return Err(format!("{input} is already reduced"));
        }
        if remap.is_some() {
            return Err(format!(
                "{input} is locality-reordered; re-convert the original file \
                 with --reduce --reorder (reduction runs on original ids)"
            ));
        }
        // V_S/V_T keep set: explicit --keep ids plus every category member
        // (so category queries keep working on the reduced file).
        let mut keep: Vec<NodeId> = o.node_list("keep")?.unwrap_or_default();
        if let Some(c) = &categories {
            for (_, _, members) in c.iter() {
                keep.extend_from_slice(members);
            }
        }
        keep.sort_unstable();
        keep.dedup();
        if let Some(&v) = keep.iter().find(|&&v| (v as usize) >= graph.node_count()) {
            return Err(format!("--keep: node id {v} out of range"));
        }
        if keep.is_empty() {
            eprintln!("note: no --keep ids or categories; contracting without V_S/V_T pruning");
        }
        let (n0, m0) = (graph.node_count(), graph.edge_count());
        let red = kpj::graph::reduce(&graph, &keep, &keep);
        // Embedded landmark tables describe the unreduced graph; drop
        // them (pass --landmarks N to rebuild on the reduced one).
        landmarks = None;
        categories = categories.map(|c| {
            let mut out = CategoryIndex::new();
            for (_, name, members) in c.iter() {
                let translated = members
                    .iter()
                    .map(|&v| {
                        red.reduction
                            .to_reduced(v)
                            .expect("category members are keep nodes")
                    })
                    .collect();
                out.add_category(name, translated);
            }
            out
        });
        graph = red.graph;
        println!(
            "reduced {n0} -> {} nodes, {m0} -> {} arcs ({} shortcuts, {} interior nodes)",
            graph.node_count(),
            graph.edge_count(),
            red.reduction.shortcut_count(),
            red.reduction.interior_count(),
        );
        reduction = Some(red.reduction);
    }

    if o.get("reorder").is_some() {
        if remap.is_some() {
            return Err(format!("{input} is already locality-reordered"));
        }
        let r = kpj::store::reorder(&graph);
        categories = categories.map(|c| kpj::store::remap_categories(&c, &r.remap));
        landmarks = landmarks.map(|l| kpj::store::remap_landmarks(&l, &r.remap));
        match reduction.as_mut() {
            // Fold the reorder into the reduction: the file then maps
            // original ids straight to the reordered reduced ids and
            // carries no separate remap sections.
            Some(red) => *red = kpj::store::remap_reduction(red, &graph, &r),
            None => remap = Some(r.remap),
        }
        graph = r.graph;
    }

    if let Some(count) = o.get("landmark-count").or(o.get("landmarks")) {
        let count: usize = count
            .parse()
            .map_err(|_| format!("--landmarks: bad number `{count}`"))?;
        landmarks = (count > 0).then(|| {
            kpj::core::offline::build_landmarks_parallel(
                &graph,
                count,
                SelectionStrategy::Farthest,
                seed,
                threads,
            )
        });
    }

    kpj::store::write_store_to_path(
        std::path::Path::new(out),
        &graph,
        categories.as_ref(),
        landmarks.as_ref(),
        remap.as_ref(),
        reduction.as_ref(),
    )
    .map_err(|e| format!("{out}: {e}"))?;
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out} (v2, {} nodes, {} arcs, {bytes} bytes{}{}{}{})",
        graph.node_count(),
        graph.edge_count(),
        if reduction.is_some() { ", reduced" } else { "" },
        if remap.is_some() { ", reordered" } else { "" },
        match &landmarks {
            Some(l) => format!(", {} landmarks", l.len()),
            None => String::new(),
        },
        match &categories {
            Some(c) => format!(", {} categories", c.category_count()),
            None => String::new(),
        },
    );
    Ok(())
}

fn query(o: &Opts) -> Result<(), String> {
    let bundle = load_bundle(o.require("graph")?)?;
    let g = bundle.graph;

    // Reordered or reduced v2 files: the command line (and any sidecar
    // files) speak *original* ids; translate to the file's internal ids
    // below. Reordered answers are translated back when printing; reduced
    // answers are re-expanded to original ids by the engine itself.
    let translation = if let Some(red) = bundle.reduction {
        kpj::graph::IdTranslation::Reduce(std::sync::Arc::new(red))
    } else if let Some(r) = bundle.remap {
        kpj::graph::IdTranslation::Remap(std::sync::Arc::new(r))
    } else {
        kpj::graph::IdTranslation::Identity
    };
    let external_nodes = translation.external_node_count().unwrap_or(g.node_count());

    // Targets: explicit list or a named category from a category file.
    let targets: Vec<NodeId> = if let Some(t) = o.node_list("targets")? {
        t
    } else {
        let cat_file = o
            .require("categories")
            .map_err(|_| "need --targets a,b,c or --categories FILE --category NAME".to_string())?;
        let name = o.require("category")?;
        let f = File::open(cat_file).map_err(|e| format!("{cat_file}: {e}"))?;
        let idx = kpj::graph::io::read_categories(BufReader::new(f), external_nodes)
            .map_err(|e| e.to_string())?;
        let cat = idx
            .find_by_name(name)
            .ok_or_else(|| format!("category `{name}` not in {cat_file}"))?;
        idx.members(cat).to_vec()
    };

    let mut sources: Vec<NodeId> = if let Some(s) = o.node_list("sources")? {
        s
    } else {
        vec![o.num::<NodeId>("source", NodeId::MAX)?]
    };
    if sources == [NodeId::MAX] {
        return Err("need --source N or --sources a,b".into());
    }

    let mut targets = targets;
    for v in sources.iter_mut().chain(targets.iter_mut()) {
        *v = translation.to_engine(*v).map_err(|e| e.to_string())?;
    }

    let k: usize = o.num("k", 20)?;
    let alg: Algorithm = o.get("algorithm").unwrap_or("iterboundi").parse()?;

    let lm = match o.get("landmarks") {
        // A v2 file's embedded landmark tables (already in internal ids)
        // are used automatically.
        None => bundle.landmarks,
        Some(path) => {
            if translation.reduction().is_some() {
                return Err(
                    "a sidecar --landmarks file speaks original ids and cannot align \
                     with a reduced graph; embed tables at convert time instead \
                     (convert --reduce --landmarks N)"
                        .into(),
                );
            }
            let f = File::open(path).map_err(|e| format!("{path}: {e}"))?;
            let idx = LandmarkIndex::read_binary(BufReader::new(f)).map_err(|e| e.to_string())?;
            // A sidecar index is in original ids; align it with the graph.
            Some(match translation.output_remap() {
                Some(r) => kpj::store::remap_landmarks(&idx, r),
                None => idx,
            })
        }
    };

    let mut engine = QueryEngine::new(&g);
    if let Some(red) = translation.reduction() {
        engine = engine.with_reduction(red);
    }
    if let Some(idx) = &lm {
        if idx.node_count() != g.node_count() {
            return Err("landmark index does not match the graph".into());
        }
        engine = engine.with_landmarks(idx);
    }
    if let Some(a) = o.get("alpha") {
        let alpha: f64 = a
            .parse()
            .map_err(|_| format!("--alpha: bad number `{a}`"))?;
        if alpha <= 1.0 {
            return Err("--alpha must exceed 1".into());
        }
        engine = engine.with_alpha(alpha);
    }

    // Per-query budget: expired deadlines abort cleanly with an error
    // instead of running arbitrarily long on hard instances.
    let deadline = match o.get("timeout-ms") {
        None => kpj::core::Deadline::none(),
        Some(ms) => {
            let ms: u64 = ms
                .parse()
                .map_err(|_| format!("--timeout-ms: bad number `{ms}`"))?;
            kpj::core::Deadline::after(std::time::Duration::from_millis(ms))
        }
    };

    let t0 = std::time::Instant::now();
    let r = engine
        .query_multi_deadline(alg, &sources, &targets, k, deadline)
        .map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();

    let ext = |v: NodeId| translation.output_remap().map_or(v, |r| r.to_external(v));
    for (i, p) in r.paths.iter().enumerate() {
        let nodes: Vec<String> = p.nodes.iter().map(|&v| ext(v).to_string()).collect();
        println!("P{} len={} : {}", i + 1, p.length, nodes.join(" "));
    }
    eprintln!(
        "{} paths in {:.3?} with {} ({} nodes settled)",
        r.paths.len(),
        elapsed,
        alg.name(),
        r.stats.nodes_settled
    );
    if o.get("stats").is_some() {
        eprintln!("{:#?}", r.stats);
    }
    if o.get("metrics").is_some() {
        // Fold this query's span trace and work counters into a fresh
        // registry and print the same Prometheus text `kpj-serve` exposes.
        let metrics = kpj::service::Metrics::new();
        metrics.absorb_stats(alg, &r.stats);
        metrics.record_stage(alg, kpj::obs::Stage::Total, elapsed);
        let row = kpj::service::algorithm_index(alg);
        let (older, newer) = engine.trace_spans();
        for span in older.iter().chain(newer) {
            metrics.registry().record_ns(row, span.stage, span.dur_ns);
        }
        let mut text = String::new();
        metrics.render_prometheus(&mut text);
        print!("{text}");
    }
    Ok(())
}

/// `update`: push a weight-update batch to a running `kpj-serve` over the
/// NDJSON wire (`{"op":"update","edges":[[u,v,w],…]}`). The server
/// publishes a new graph epoch, repairs its landmark tables
/// incrementally, and reports what changed; in-flight queries finish on
/// the epoch they pinned at admission, so there is no downtime.
fn update(o: &Opts) -> Result<(), String> {
    use std::io::{BufRead, Write};

    let addr = o.get("addr").unwrap_or("127.0.0.1:7878");
    let mut edges: Vec<(NodeId, NodeId, u32)> = Vec::new();
    for spec in o.get_all("edge") {
        let parts: Vec<&str> = spec.split(',').map(str::trim).collect();
        let [u, v, w] = parts.as_slice() else {
            return Err(format!("--edge: expected U,V,W, got `{spec}`"));
        };
        let parse = |t: &str, what: &str| -> Result<u64, String> {
            t.parse::<u64>()
                .map_err(|_| format!("--edge {spec}: bad {what} `{t}`"))
        };
        edges.push((
            NodeId::try_from(parse(u, "node id")?)
                .map_err(|_| format!("--edge {spec}: node id `{u}` out of range"))?,
            NodeId::try_from(parse(v, "node id")?)
                .map_err(|_| format!("--edge {spec}: node id `{v}` out of range"))?,
            u32::try_from(parse(w, "weight")?)
                .map_err(|_| format!("--edge {spec}: weight `{w}` out of range"))?,
        ));
    }
    if let Some(path) = o.get("file") {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [u, v, w] = fields.as_slice() else {
                return Err(format!("{path}:{}: expected `U V W`", lineno + 1));
            };
            let bad = |t: &str| format!("{path}:{}: bad number `{t}`", lineno + 1);
            edges.push((
                u.parse().map_err(|_| bad(u))?,
                v.parse().map_err(|_| bad(v))?,
                w.parse().map_err(|_| bad(w))?,
            ));
        }
    }
    if edges.is_empty() {
        return Err("update: need at least one --edge U,V,W or --file FILE".into());
    }

    let body = edges
        .iter()
        .map(|&(u, v, w)| format!("[{u},{v},{w}]"))
        .collect::<Vec<_>>()
        .join(",");
    let request = format!("{{\"id\":1,\"op\":\"update\",\"edges\":[{body}]}}");

    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);
    writer
        .write_all(request.as_bytes())
        .and_then(|()| writer.write_all(b"\n"))
        .and_then(|()| writer.flush())
        .map_err(|e| format!("{addr}: {e}"))?;
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("{addr}: {e}"))?;
    if line.trim().is_empty() {
        return Err(format!("{addr}: server closed the connection"));
    }
    let reply = kpj::service::json::Json::parse(line.trim())
        .map_err(|e| format!("{addr}: malformed response: {e}"))?;
    use kpj::service::json::Json;
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        let code = reply
            .get("error")
            .and_then(Json::as_str)
            .unwrap_or("unknown");
        let msg = reply.get("message").and_then(Json::as_str).unwrap_or("");
        return Err(format!("server rejected the update: {code} {msg}"));
    }
    let field = |k: &str| reply.get(k).and_then(Json::as_u64).unwrap_or(0);
    println!(
        "epoch {} published: {} edge weight(s) changed, landmark repair {} us \
         ({} nodes touched), {} stale cache entries purged",
        field("epoch"),
        field("changed"),
        field("repair_us"),
        field("affected_nodes"),
        field("cache_purged"),
    );
    if field("changed") == 0 {
        println!("(all weights were already current: no new epoch was needed)");
    }
    Ok(())
}

/// `top`: a refreshing terminal dashboard over a running `kpj-serve`.
/// Polls `{"op":"status"}` on one persistent connection and renders the
/// gauges, throughput (with a rate derived from consecutive snapshots),
/// latency quantiles and the event-journal tail. `--once` prints a
/// single snapshot without clearing the screen, so CI can grep the
/// output (`live=`, `queue=` tokens).
fn top(o: &Opts) -> Result<(), String> {
    use std::io::{BufRead, Write};

    let addr = o.get("addr").unwrap_or("127.0.0.1:7878");
    let once = o.get("once").is_some();
    let interval: u64 = o.num("interval-ms", 1_000)?;

    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let mut writer = BufWriter::new(stream);

    let mut id = 0u64;
    // Previous (instant, cumulative query count) for the rate readout.
    let mut prev: Option<(std::time::Instant, u64)> = None;
    loop {
        id += 1;
        writer
            .write_all(format!("{{\"id\":{id},\"op\":\"status\"}}\n").as_bytes())
            .and_then(|()| writer.flush())
            .map_err(|e| format!("{addr}: {e}"))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("{addr}: {e}"))?;
        if line.trim().is_empty() {
            return Err(format!("{addr}: server closed the connection"));
        }
        use kpj::service::json::Json;
        let reply = Json::parse(line.trim()).map_err(|e| format!("{addr}: malformed: {e}"))?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(format!("{addr}: status failed: {}", line.trim()));
        }
        let status = reply
            .get("status")
            .ok_or_else(|| format!("{addr}: response carries no status object"))?;

        let now = std::time::Instant::now();
        let queries = status
            .get("throughput")
            .and_then(|t| t.get("queries"))
            .and_then(Json::as_u64)
            .unwrap_or(0);
        let rate = prev.map(|(t, q)| {
            let dt = now.duration_since(t).as_secs_f64();
            if dt > 0.0 {
                queries.saturating_sub(q) as f64 / dt
            } else {
                0.0
            }
        });
        prev = Some((now, queries));

        let mut screen = String::new();
        render_status(&mut screen, addr, status, rate);
        if once {
            print!("{screen}");
            std::io::stdout().flush().ok();
            return Ok(());
        }
        // Clear + home, then the frame in one write: no flicker.
        print!("\x1b[2J\x1b[H{screen}");
        std::io::stdout().flush().ok();
        std::thread::sleep(std::time::Duration::from_millis(interval.max(100)));
    }
}

/// Render one `status` snapshot as the `top` dashboard frame.
fn render_status(out: &mut String, addr: &str, s: &kpj::service::json::Json, rate: Option<f64>) {
    use kpj::service::json::Json;
    use std::fmt::Write as _;

    // Missing fields render as 0 rather than failing: an older server is
    // still monitorable with a newer CLI.
    let u = |path: &[&str]| -> u64 {
        let mut cur = s;
        for key in path {
            match cur.get(key) {
                Some(v) => cur = v,
                None => return 0,
            }
        }
        cur.as_u64().unwrap_or(0)
    };

    let _ = writeln!(
        out,
        "kpj-serve {addr} — up {}s, status snapshot #{}",
        u(&["uptime_s"]),
        u(&["snapshot_seq"]),
    );
    let _ = writeln!(
        out,
        "epoch    current={} live={} pins={} repair_queue={} swaps={}",
        u(&["epoch", "current"]),
        u(&["epoch", "live"]),
        u(&["epoch", "pins"]),
        u(&["epoch", "repair_queue"]),
        u(&["epoch", "swaps"]),
    );
    let _ = writeln!(
        out,
        "pool     workers={} busy={} queue={} (peak {}, cap {}) executed={} rejected={} par_grants={}",
        u(&["pool", "workers"]),
        u(&["pool", "busy"]),
        u(&["pool", "queue_depth"]),
        u(&["pool", "queue_peak"]),
        u(&["pool", "queue_capacity"]),
        u(&["pool", "executed"]),
        u(&["pool", "rejected"]),
        u(&["pool", "par_grants"]),
    );
    let _ = writeln!(
        out,
        "cache    entries={} pending={} evictions={} hits={} shared={} misses={}",
        u(&["cache", "entries"]),
        u(&["cache", "pending"]),
        u(&["cache", "evictions"]),
        u(&["cache", "hits"]),
        u(&["cache", "shared"]),
        u(&["cache", "misses"]),
    );
    let _ = writeln!(
        out,
        "storage  mmap_bytes={} expand_hops={}",
        u(&["storage", "mmap_bytes"]),
        u(&["storage", "expand_hops"]),
    );
    let rate_str = rate.map_or(String::new(), |r| format!(" rate={r:.1}/s"));
    let _ = writeln!(
        out,
        "load     queries={queries}{rate_str} failures={} deadline_exceeded={} paths={}",
        u(&["throughput", "failures"]),
        u(&["throughput", "deadline_exceeded"]),
        u(&["throughput", "paths_returned"]),
        queries = u(&["throughput", "queries"]),
    );
    let _ = writeln!(
        out,
        "latency  p50={}us p99={}us mean={}us max={}us (n={})",
        u(&["latency_us", "p50"]),
        u(&["latency_us", "p99"]),
        u(&["latency_us", "mean"]),
        u(&["latency_us", "max"]),
        u(&["latency_us", "count"]),
    );
    let _ = writeln!(
        out,
        "updates  swaps={} edges={} repair_mean={}us repair_max={}us",
        u(&["updates", "epoch_swaps"]),
        u(&["updates", "edges_updated"]),
        u(&["updates", "repair_mean_us"]),
        u(&["updates", "repair_max_us"]),
    );
    let _ = writeln!(
        out,
        "events   recorded={} dropped={}",
        u(&["events", "recorded"]),
        u(&["events", "dropped"]),
    );
    // Last few journal entries, oldest first — generic over the event's
    // own fields so new event kinds need no CLI change.
    if let Some(tail) = s
        .get("events")
        .and_then(|e| e.get("tail"))
        .and_then(Json::as_arr)
    {
        let skip = tail.len().saturating_sub(10);
        for ev in &tail[skip..] {
            let mut fields = String::new();
            if let Json::Obj(pairs) = ev {
                for (k, v) in pairs {
                    if matches!(k.as_str(), "seq" | "at_us" | "event") {
                        continue;
                    }
                    let _ = write!(fields, " {k}={v}");
                }
            }
            let _ = writeln!(
                out,
                "  [{:>5} +{:>9.3}s] {}{fields}",
                ev.get("seq").and_then(Json::as_u64).unwrap_or(0),
                ev.get("at_us").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6,
                ev.get("event").and_then(Json::as_str).unwrap_or("?"),
            );
        }
    }
}

fn info(o: &Opts) -> Result<(), String> {
    let bundle = load_bundle(o.require("graph")?)?;
    if bundle.is_mapped() {
        // Checksum the mmapped payload once, while we are inspecting the
        // file anyway — `open` only verifies the header/table.
        bundle.verify_data().map_err(|e| e.to_string())?;
        println!(
            "format: v2 (zero-copy mmap, data checksum ok{}{}{})",
            if bundle.landmarks.is_some() {
                ", embedded landmarks"
            } else {
                ""
            },
            if bundle.remap.is_some() {
                ", locality-reordered"
            } else {
                ""
            },
            if bundle.reduction.is_some() {
                ", reduced"
            } else {
                ""
            },
        );
    } else {
        println!("format: v1/heap");
    }
    if let Some(red) = &bundle.reduction {
        println!(
            "reduction: {} original -> {} reduced nodes, {} shortcuts, {} interior nodes",
            red.original_node_count(),
            red.reduced_node_count(),
            red.shortcut_count(),
            red.interior_count(),
        );
    }
    let g = bundle.graph;
    println!("nodes: {}", g.node_count());
    println!("arcs:  {}", g.edge_count());
    let mut max_deg = 0;
    let mut isolated = 0usize;
    for v in g.nodes() {
        let d = g.out_degree(v);
        max_deg = max_deg.max(d);
        isolated += usize::from(d == 0 && g.in_degree(v) == 0);
    }
    println!("max out-degree: {max_deg}");
    println!("isolated nodes: {isolated}");
    println!("total weight:   {}", g.total_weight());
    Ok(())
}
