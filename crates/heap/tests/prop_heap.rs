//! Property-based model checks for both priority queues.

use kpj_heap::{IndexedMinHeap, MinHeap};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// IndexedMinHeap behaves exactly like a map + min-extraction model
    /// under arbitrary interleavings of push/decrease, pop and clear.
    #[test]
    fn indexed_heap_model(ops in vec((0..4u8, 0..24usize, 0..500u64), 1..400)) {
        let mut h: IndexedMinHeap<u64> = IndexedMinHeap::new(24);
        let mut model: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for (op, item, key) in ops {
            match op {
                0 | 1 => {
                    let changed = h.push_or_decrease(item, key);
                    match model.get(&item) {
                        None => {
                            prop_assert!(changed);
                            model.insert(item, key);
                        }
                        Some(&old) if key < old => {
                            prop_assert!(changed);
                            model.insert(item, key);
                        }
                        Some(_) => prop_assert!(!changed),
                    }
                }
                2 => match h.pop() {
                    None => prop_assert!(model.is_empty()),
                    Some((item, key)) => {
                        let min = *model.values().min().unwrap();
                        prop_assert_eq!(key, min);
                        prop_assert_eq!(model.remove(&item), Some(key));
                        prop_assert!(!h.contains(item));
                        // Final keys stay readable after the pop.
                        prop_assert_eq!(h.key(item), key);
                    }
                },
                _ => {
                    h.clear();
                    model.clear();
                }
            }
            prop_assert_eq!(h.len(), model.len());
            prop_assert_eq!(h.is_empty(), model.is_empty());
            if let Some((_, k)) = h.peek() {
                prop_assert_eq!(k, *model.values().min().unwrap());
            }
            for (&i, &k) in &model {
                prop_assert!(h.contains(i));
                prop_assert_eq!(h.key(i), k);
            }
        }
    }

    /// Draining a MinHeap yields keys in sorted order and preserves the
    /// key→value pairing.
    #[test]
    fn min_heap_drains_sorted(entries in vec((0..10_000u64, 0..10_000u64), 0..200)) {
        let mut q = MinHeap::new();
        for &(k, v) in &entries {
            q.push(k, v);
        }
        prop_assert_eq!(q.len(), entries.len());
        let mut drained = Vec::new();
        while let Some((k, v)) = q.pop() {
            drained.push((k, v));
        }
        // Keys non-decreasing.
        prop_assert!(drained.windows(2).all(|w| w[0].0 <= w[1].0));
        // Same multiset of entries.
        let mut want = entries;
        want.sort_unstable();
        let mut got = drained;
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// peek_key always reports the next pop's key.
    #[test]
    fn min_heap_peek_consistent(entries in vec(0..1_000u32, 1..100)) {
        let mut q = MinHeap::new();
        for (i, &k) in entries.iter().enumerate() {
            q.push(k, i);
        }
        while let Some(top) = q.peek_key() {
            let (k, _) = q.pop().unwrap();
            prop_assert_eq!(k, top);
        }
        prop_assert!(q.is_empty());
    }
}
