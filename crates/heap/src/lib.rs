//! Priority queues for the `kpj` workspace.
//!
//! Two queues cover every algorithm in the paper:
//!
//! * [`IndexedKaryHeap`] — a k-ary min-heap over a *dense* key universe
//!   `0..capacity` with `O(log n)` `decrease-key`. This is the queue inside
//!   every Dijkstra/A\* search (`QV` in Alg. 5, `QT` in Alg. 6/7): each graph
//!   node appears at most once, and label corrections decrease its key in
//!   place, so no stale entries are ever popped. [`IndexedMinHeap`] is its
//!   binary (`A = 2`) alias; the engine's hot search loop uses arity 4
//!   (shallower sift-up for decrease-key-heavy workloads — see
//!   `examples/heap_arity.rs` for the microbench).
//! * [`MinHeap`] — a thin min-ordered convenience wrapper around
//!   `std::collections::BinaryHeap` for queues whose entries are not dense
//!   (the subspace queue `Q` of Alg. 2/Alg. 4, candidate sets, generators).
//!
//! Both are allocation-frugal: `IndexedKaryHeap` reuses its backing arrays
//! across searches via [`IndexedKaryHeap::clear`], and `MinHeap` exposes
//! `with_capacity`.

#![warn(missing_docs)]

mod indexed;
mod min_heap;

pub use indexed::{IndexedKaryHeap, IndexedMinHeap};
pub use min_heap::MinHeap;
