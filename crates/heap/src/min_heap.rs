//! Min-ordered wrapper around `std::collections::BinaryHeap`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A min-heap of `(key, value)` pairs ordered by `key` only.
///
/// Values need no ordering of their own, which keeps payload types (boxed
/// subspaces, path handles) free of artificial `Ord` impls. Ties between
/// equal keys pop in unspecified order.
///
/// ```
/// use kpj_heap::MinHeap;
/// let mut q = MinHeap::new();
/// q.push(5u64, "five");
/// q.push(1, "one");
/// q.push(3, "three");
/// assert_eq!(q.pop(), Some((1, "one")));
/// assert_eq!(q.peek_key(), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct MinHeap<K: Ord + Copy, V> {
    inner: BinaryHeap<Entry<K, V>>,
}

#[derive(Debug, Clone)]
struct Entry<K: Ord + Copy, V> {
    key: Reverse<K>,
    value: V,
}

impl<K: Ord + Copy, V> PartialEq for Entry<K, V> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<K: Ord + Copy, V> Eq for Entry<K, V> {}
impl<K: Ord + Copy, V> PartialOrd for Entry<K, V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<K: Ord + Copy, V> Ord for Entry<K, V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<K: Ord + Copy, V> MinHeap<K, V> {
    /// An empty queue.
    pub fn new() -> Self {
        MinHeap {
            inner: BinaryHeap::new(),
        }
    }

    /// An empty queue with pre-allocated room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        MinHeap {
            inner: BinaryHeap::with_capacity(cap),
        }
    }

    /// Number of queued entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no entries are queued.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Queue `value` under `key`.
    pub fn push(&mut self, key: K, value: V) {
        self.inner.push(Entry {
            key: Reverse(key),
            value,
        });
    }

    /// Remove and return the entry with the smallest key.
    pub fn pop(&mut self) -> Option<(K, V)> {
        self.inner.pop().map(|e| (e.key.0, e.value))
    }

    /// The smallest key, if any (the paper's `Q.top().key`).
    pub fn peek_key(&self) -> Option<K> {
        self.inner.peek().map(|e| e.key.0)
    }

    /// Borrow the value with the smallest key.
    pub fn peek(&self) -> Option<(K, &V)> {
        self.inner.peek().map(|e| (e.key.0, &e.value))
    }

    /// Drop all entries.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<K: Ord + Copy, V> Default for MinHeap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_order() {
        let mut q = MinHeap::new();
        for k in [9u32, 4, 7, 1, 8] {
            q.push(k, k * 10);
        }
        let mut keys = Vec::new();
        while let Some((k, v)) = q.pop() {
            assert_eq!(v, k * 10);
            keys.push(k);
        }
        assert_eq!(keys, vec![1, 4, 7, 8, 9]);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = MinHeap::with_capacity(4);
        q.push(2u64, 'b');
        q.push(1, 'a');
        assert_eq!(q.peek_key(), Some(1));
        assert_eq!(q.peek(), Some((1, &'a')));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((1, 'a')));
    }

    #[test]
    fn values_need_no_ord() {
        // A payload type that is neither Ord nor Eq.
        struct Opaque(#[allow(dead_code)] f64);
        let mut q: MinHeap<u32, Opaque> = MinHeap::new();
        q.push(3, Opaque(0.5));
        q.push(1, Opaque(1.5));
        assert_eq!(q.pop().unwrap().0, 1);
    }

    #[test]
    fn clear_and_empty() {
        let mut q: MinHeap<u8, ()> = MinHeap::default();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(1, ());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn equal_keys_all_delivered() {
        let mut q = MinHeap::new();
        for i in 0..5 {
            q.push(7u32, i);
        }
        let mut vals: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 2, 3, 4]);
    }
}
