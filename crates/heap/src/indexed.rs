//! K-ary min-heap over a dense key universe with decrease-key.

/// Position sentinel: the item is not currently on the heap.
const ABSENT: u32 = u32::MAX;

/// A k-ary min-heap over items `0..capacity` with `O(log n)` push, pop
/// and decrease-key, and `O(1)` membership/key lookup.
///
/// The arity `A` is a compile-time constant. Binary (`A = 2`) is the
/// classic layout; wider heaps trade a slightly costlier `sift_down`
/// (compare up to `A` children per level) for a shallower tree, which
/// pays off in decrease-key-heavy workloads like Dijkstra where
/// `sift_up` (one comparison per level) dominates: a 4-ary heap halves
/// the sift-up depth. `crates/heap/examples/heap_arity.rs` measures the
/// trade-off.
///
/// Tie-breaking is arity-independent in the cases this workspace relies
/// on: among equal keys the earlier heap slot wins, and for `A = 2` the
/// layout is bit-identical to the previous binary implementation.
///
/// Each item can be on the heap at most once;
/// [`push_or_decrease`](IndexedKaryHeap::push_or_decrease)
/// (the Dijkstra label-correction step) either inserts the item or lowers
/// its key, refusing increases. Popped items remember their final key until
/// [`clear`](IndexedKaryHeap::clear) — callers use this as the "settled
/// distance" table when convenient.
///
/// ```
/// use kpj_heap::IndexedMinHeap;
/// let mut h: IndexedMinHeap<u64> = IndexedMinHeap::new(4);
/// h.push_or_decrease(2, 30);
/// h.push_or_decrease(0, 10);
/// h.push_or_decrease(2, 20); // decrease
/// h.push_or_decrease(2, 99); // ignored (increase)
/// assert_eq!(h.pop(), Some((0, 10)));
/// assert_eq!(h.pop(), Some((2, 20)));
/// assert_eq!(h.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct IndexedKaryHeap<K: Ord + Copy, const A: usize> {
    /// Heap array of item ids, ordered by `keys`.
    heap: Vec<u32>,
    /// `pos[item]` = index in `heap`, or `ABSENT`.
    pos: Vec<u32>,
    /// `keys[item]` = current (or final, if popped) key. Only meaningful for
    /// items touched since the last `clear`.
    keys: Vec<K>,
    /// Items touched since the last `clear`, for cheap clearing.
    touched: Vec<u32>,
}

/// The binary special case — the workspace-wide default heap.
pub type IndexedMinHeap<K> = IndexedKaryHeap<K, 2>;

impl<K: Ord + Copy + Default, const A: usize> IndexedKaryHeap<K, A> {
    /// An empty heap over items `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        const { assert!(A >= 2, "heap arity must be at least 2") };
        assert!(
            capacity < ABSENT as usize,
            "capacity exceeds u32 position space"
        );
        IndexedKaryHeap {
            heap: Vec::new(),
            pos: vec![ABSENT; capacity],
            keys: vec![K::default(); capacity],
            touched: Vec::new(),
        }
    }

    /// Number of items currently on the heap.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no items are queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Key universe size.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.pos.len()
    }

    /// True if `item` is currently queued.
    #[inline]
    pub fn contains(&self, item: usize) -> bool {
        self.pos[item] != ABSENT
    }

    /// The current key of a queued item, or the final key of a popped item
    /// (meaningless for items untouched since the last clear).
    #[inline]
    pub fn key(&self, item: usize) -> K {
        self.keys[item]
    }

    /// The minimum entry without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(usize, K)> {
        self.heap
            .first()
            .map(|&i| (i as usize, self.keys[i as usize]))
    }

    /// Insert `item` with `key`, or decrease its key if already queued with
    /// a larger one. Returns `true` if the heap changed.
    ///
    /// An *increase* of a queued item's key is ignored — exactly the
    /// behaviour Dijkstra label correction wants.
    pub fn push_or_decrease(&mut self, item: usize, key: K) -> bool {
        if self.pos[item] == ABSENT {
            self.keys[item] = key;
            self.pos[item] = self.heap.len() as u32;
            self.heap.push(item as u32);
            self.touched.push(item as u32);
            self.sift_up(self.heap.len() - 1);
            true
        } else if key < self.keys[item] {
            self.keys[item] = key;
            self.sift_up(self.pos[item] as usize);
            true
        } else {
            false
        }
    }

    /// Remove and return the minimum `(item, key)`.
    pub fn pop(&mut self) -> Option<(usize, K)> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        self.pos[top as usize] = ABSENT;
        Some((top as usize, self.keys[top as usize]))
    }

    /// Empty the heap and forget all touched keys, in time proportional to
    /// the number of items touched since the previous clear (not capacity).
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.pos[i as usize] = ABSENT;
        }
        self.heap.clear();
        self.touched.clear();
    }

    #[inline]
    fn less(&self, a: u32, b: u32) -> bool {
        self.keys[a as usize] < self.keys[b as usize]
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / A;
            if self.less(self.heap[i], self.heap[parent]) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = A * i + 1;
            if first >= self.heap.len() {
                break;
            }
            let end = (first + A).min(self.heap.len());
            let mut smallest = i;
            for c in first..end {
                if self.less(self.heap[c], self.heap[smallest]) {
                    smallest = c;
                }
            }
            if smallest == i {
                break;
            }
            self.swap(i, smallest);
            i = smallest;
        }
    }

    #[inline]
    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.pos[self.heap[a] as usize] = a as u32;
        self.pos[self.heap[b] as usize] = b as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut h: IndexedMinHeap<u32> = IndexedMinHeap::new(8);
        for (i, k) in [(3, 30), (1, 10), (7, 70), (2, 20)] {
            h.push_or_decrease(i, k);
        }
        let mut out = Vec::new();
        while let Some((i, k)) = h.pop() {
            out.push((i, k));
        }
        assert_eq!(out, vec![(1, 10), (2, 20), (3, 30), (7, 70)]);
    }

    #[test]
    fn decrease_key_reorders_increase_ignored() {
        let mut h: IndexedMinHeap<u32> = IndexedMinHeap::new(4);
        h.push_or_decrease(0, 50);
        h.push_or_decrease(1, 40);
        assert!(h.push_or_decrease(0, 5));
        assert!(!h.push_or_decrease(1, 100));
        assert_eq!(h.key(1), 40);
        assert_eq!(h.pop(), Some((0, 5)));
        assert_eq!(h.pop(), Some((1, 40)));
    }

    #[test]
    fn contains_and_peek() {
        let mut h: IndexedMinHeap<u64> = IndexedMinHeap::new(4);
        assert!(h.is_empty());
        assert_eq!(h.peek(), None);
        h.push_or_decrease(2, 9);
        assert!(h.contains(2));
        assert!(!h.contains(0));
        assert_eq!(h.peek(), Some((2, 9)));
        h.pop();
        assert!(!h.contains(2));
        // Final key is remembered after pop.
        assert_eq!(h.key(2), 9);
    }

    #[test]
    fn clear_resets_membership_cheaply() {
        let mut h: IndexedMinHeap<u32> = IndexedMinHeap::new(100);
        h.push_or_decrease(5, 1);
        h.push_or_decrease(6, 2);
        h.pop();
        h.clear();
        assert!(h.is_empty());
        assert!(!h.contains(5));
        assert!(!h.contains(6));
        h.push_or_decrease(6, 3);
        assert_eq!(h.pop(), Some((6, 3)));
    }

    #[test]
    fn duplicate_key_values_all_pop() {
        let mut h: IndexedMinHeap<u32> = IndexedMinHeap::new(10);
        for i in 0..10 {
            h.push_or_decrease(i, 7);
        }
        let mut n = 0;
        while h.pop().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }

    /// Deterministic pseudo-random op stream (xorshift), no rand dep.
    fn model_check<const A: usize>() {
        use std::collections::BTreeMap;
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cap = 64usize;
        let mut h: IndexedKaryHeap<u64, A> = IndexedKaryHeap::new(cap);
        // Model mirrors only *queued* items.
        let mut model: BTreeMap<usize, u64> = BTreeMap::new();
        for _ in 0..10_000 {
            if next() % 3 != 0 {
                let item = (next() as usize) % cap;
                let key = next() % 1000;
                let changed = h.push_or_decrease(item, key);
                match model.get_mut(&item) {
                    None => {
                        assert!(changed, "fresh push must change the heap");
                        model.insert(item, key);
                    }
                    Some(k) if key < *k => {
                        assert!(changed, "strict decrease must change the heap");
                        *k = key;
                    }
                    Some(_) => assert!(!changed, "increase must be ignored"),
                }
            } else {
                match h.pop() {
                    None => assert!(model.is_empty()),
                    Some((item, key)) => {
                        let min = *model.values().min().expect("model non-empty");
                        assert_eq!(key, min, "popped key must be the minimum");
                        assert_eq!(model.remove(&item), Some(key));
                    }
                }
            }
            assert_eq!(h.len(), model.len());
        }
    }

    #[test]
    fn model_check_against_btreemap_binary() {
        model_check::<2>();
    }

    #[test]
    fn model_check_against_btreemap_quaternary() {
        model_check::<4>();
    }

    #[test]
    fn model_check_against_btreemap_octonary() {
        model_check::<8>();
    }

    #[test]
    fn arities_agree_on_popped_key_sequences() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let cap = 128usize;
        let mut h2: IndexedKaryHeap<u64, 2> = IndexedKaryHeap::new(cap);
        let mut h4: IndexedKaryHeap<u64, 4> = IndexedKaryHeap::new(cap);
        for _ in 0..2_000 {
            let item = (next() as usize) % cap;
            let key = next() % 500;
            assert_eq!(
                h2.push_or_decrease(item, key),
                h4.push_or_decrease(item, key)
            );
        }
        // Keys (not necessarily items — equal keys may tie-break
        // differently across arities) drain in the same order.
        while let Some((_, k2)) = h2.pop() {
            let (_, k4) = h4.pop().expect("same length");
            assert_eq!(k2, k4);
        }
        assert!(h4.is_empty());
    }
}
