//! Microbench: heap arity under a Dijkstra-shaped workload.
//!
//! Replays the same deterministic stream of `push_or_decrease`/`pop`
//! operations — the mix a best-first search produces (many decrease-keys,
//! one pop per settle) — against arities 2, 4 and 8, and prints the
//! median wall time of 5 runs per arity.
//!
//! ```text
//! cargo run --release -p kpj-heap --example heap_arity
//! ```
//!
//! No external bench harness: `std::time::Instant` and a fixed xorshift
//! stream keep the crate dependency-free. Numbers are indicative, not a
//! statement about your machine — rerun locally before tuning
//! `SEARCH_HEAP_ARITY` in `crates/sp/src/searcher.rs`.

use std::time::Instant;

use kpj_heap::IndexedKaryHeap;

const UNIVERSE: usize = 1 << 16;
const OPS: usize = 2_000_000;
const RUNS: usize = 5;

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One replay: an op stream weighted like a search frontier (2/3 pushes
/// or decreases clustered around a moving "wavefront" key, 1/3 pops).
/// Returns a checksum so the work cannot be optimized away.
fn replay<const A: usize>() -> (u64, f64) {
    let mut heap: IndexedKaryHeap<u64, A> = IndexedKaryHeap::new(UNIVERSE);
    let mut rng = XorShift(0x2545F4914F6CDD1D);
    let mut checksum = 0u64;
    let start = Instant::now();
    let mut wave = 0u64;
    for _ in 0..OPS {
        let r = rng.next();
        if !r.is_multiple_of(3) {
            let item = (r >> 8) as usize % UNIVERSE;
            // Keys trail the wavefront, as relaxations do: mostly
            // decreasing refinements of recently pushed labels.
            let key = wave + (r >> 40) % 1024;
            heap.push_or_decrease(item, key);
        } else if let Some((item, key)) = heap.pop() {
            checksum = checksum.wrapping_add(key).wrapping_add(item as u64);
            wave = key;
        }
    }
    while let Some((item, key)) = heap.pop() {
        checksum = checksum.wrapping_add(key).wrapping_add(item as u64);
    }
    (checksum, start.elapsed().as_secs_f64() * 1e3)
}

fn median_ms<const A: usize>() -> (u64, f64) {
    let mut times = Vec::with_capacity(RUNS);
    let mut checksum = 0;
    for _ in 0..RUNS {
        let (c, ms) = replay::<A>();
        checksum = c;
        times.push(ms);
    }
    times.sort_by(|a, b| a.total_cmp(b));
    (checksum, times[RUNS / 2])
}

fn main() {
    println!("heap arity microbench: {OPS} ops over {UNIVERSE} items, median of {RUNS} runs");
    let (c2, t2) = median_ms::<2>();
    let (c4, t4) = median_ms::<4>();
    let (c8, t8) = median_ms::<8>();
    // Checksums keep the work live; they may differ across arities (equal
    // keys tie-break differently, which feeds back into the op stream).
    std::hint::black_box((c2, c4, c8));
    println!("  arity 2: {t2:8.2} ms  (1.00x)");
    println!("  arity 4: {t4:8.2} ms  ({:.2}x)", t2 / t4);
    println!("  arity 8: {t8:8.2} ms  ({:.2}x)", t2 / t8);
}
