//! Blocking TCP front-end: one thread per connection, newline-delimited
//! JSON requests handled by [`wire::handle_line`](crate::wire::handle_line).
//!
//! Std-only by design (no async runtime is available offline): for a
//! CPU-bound workload the engine pool is the real concurrency limit, so a
//! thread per connection is cheap enough and keeps the server ~60 lines.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use crate::service::KpjService;
use crate::wire::handle_line;

/// Serve `listener` forever, spawning one handler thread per accepted
/// connection. Returns only when `accept` fails fatally.
pub fn serve(listener: TcpListener, service: Arc<KpjService>) -> std::io::Result<()> {
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            // Transient per-connection failures should not kill the
            // server loop.
            Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
            Err(e) => return Err(e),
        };
        let service = Arc::clone(&service);
        std::thread::Builder::new()
            .name("kpj-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, &service);
            })?;
    }
    Ok(())
}

/// Drive one connection: read request lines, write response lines, until
/// EOF or an I/O error.
fn handle_connection(stream: TcpStream, service: &KpjService) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writer.write_all(handle_line(service, &line).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::service::ServiceConfig;
    use kpj_graph::GraphBuilder;

    #[test]
    fn tcp_roundtrip() {
        let mut b = GraphBuilder::new(3);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(1, 2, 1).unwrap();
        let service = Arc::new(KpjService::new(
            Arc::new(b.build()),
            None,
            ServiceConfig {
                pool: PoolConfig {
                    workers: 1,
                    queue_capacity: 4,
                    ..Default::default()
                },
                cache_capacity: 4,
                ..ServiceConfig::default()
            },
        ));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            let _ = serve(listener, service);
        });

        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        writer
            .write_all(b"{\"id\":1,\"op\":\"ping\"}\n{\"id\":2,\"op\":\"query\",\"sources\":[0],\"targets\":[2],\"k\":1}\n")
            .unwrap();
        writer.flush().unwrap();

        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"pong\":true"), "{line}");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "{line}");
        assert!(line.contains("\"lengths\":[2]"), "{line}");
    }
}
