//! kpj-service — a concurrent query-serving layer over the KPJ engines.
//!
//! The algorithm crates answer one query at a time on one thread; this
//! crate turns them into a *service*:
//!
//! | Module | Provides |
//! |---|---|
//! | [`pool`] | [`EnginePool`]: N worker threads, each owning a private [`kpj_core::QueryEngine`], fed from a bounded queue with reject-on-full admission control |
//! | [`cache`] | [`ResultCache`]: sharded LRU over completed results with single-flight deduplication of concurrent identical queries |
//! | [`service`] | [`KpjService`]: cache → pool → deadline → metrics composition, the one call-site the front-ends share |
//! | [`metrics`] | [`Metrics`]: atomic counters, per-(algorithm, stage) latency histograms in a [`kpj_obs::StageRegistry`], per-algorithm engine [`kpj_core::QueryStats`] counters, the system-state [`kpj_obs::GaugeSet`] + structured [`kpj_obs::EventJournal`], Prometheus text exposition |
//! | [`flight`] | [`FlightRecorder`]: dumps queries slower than a threshold as replayable `.kpjcase` files with their span traces |
//! | [`wire`] | the newline-delimited JSON protocol (pure string → string) |
//! | [`server`] | the blocking TCP front-end (`kpj-serve` binary) |
//! | [`json`] | minimal JSON parser/writer (the build is offline; no serde) |
//!
//! Deadlines ride on [`kpj_core::Deadline`]: the engine polls
//! cooperatively and returns [`kpj_core::QueryError::DeadlineExceeded`]
//! without poisoning its reusable scratch.
//!
//! ```
//! use std::sync::Arc;
//! use kpj_core::Algorithm;
//! use kpj_graph::GraphBuilder;
//! use kpj_service::{KpjService, QueryRequest, ServiceConfig};
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_bidirectional(0, 1, 2).unwrap();
//! b.add_bidirectional(1, 2, 2).unwrap();
//! let service = KpjService::new(Arc::new(b.build()), None, ServiceConfig::default());
//!
//! let request = QueryRequest {
//!     algorithm: Algorithm::IterBoundI,
//!     sources: vec![0],
//!     targets: vec![2],
//!     k: 1,
//!     timeout_ms: Some(1_000),
//! };
//! let result = service.execute(&request).unwrap();
//! assert_eq!(result.paths.path(0).length, 4);
//! let again = service.execute(&request).unwrap();   // served from cache
//! assert_eq!(service.snapshot().cache_hits, 1);
//! assert_eq!(again.paths.path(0).length, 4);
//! assert!(Arc::ptr_eq(&result, &again));          // no result copy on a hit
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod epoch;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod pool;
pub mod server;
pub mod service;
pub mod wire;

pub use cache::{CacheKey, InFlight, Lookup, ResultCache, SharedFlight};
pub use epoch::{EpochCell, GraphEpoch};
pub use flight::FlightRecorder;
pub use metrics::{
    algorithm_index, event, gauge, Histogram, Metrics, MetricsSnapshot, EVENT_KINDS, GAUGE_NAMES,
    JOURNAL_CAPACITY, SLOW_SHED_US,
};
pub use pool::{
    par_grant, resolve_workers, EnginePool, JobHandle, PoolConfig, PoolHooks, QueryRequest,
};
pub use server::serve;
pub use service::{Answer, KpjService, ServiceConfig, UpdateOutcome};

/// Errors surfaced by the serving layer. `Clone` so single-flight can
/// broadcast one failure to every waiter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// Admission control rejected the request: the queue is full.
    Overloaded,
    /// The pool is tearing down; no new work is accepted.
    ShuttingDown,
    /// The engine rejected or failed the query (including
    /// [`kpj_core::QueryError::DeadlineExceeded`]).
    Query(kpj_core::QueryError),
    /// A weight-update batch was rejected (unknown node or edge); the
    /// serving state is unchanged.
    Update(String),
    /// A worker panicked or an in-flight computation was abandoned.
    Internal(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded => write!(f, "service overloaded: queue is full"),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Query(e) => write!(f, "{e}"),
            ServiceError::Update(msg) => write!(f, "bad update: {msg}"),
            ServiceError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kpj_core::QueryError> for ServiceError {
    fn from(e: kpj_core::QueryError) -> Self {
        ServiceError::Query(e)
    }
}
