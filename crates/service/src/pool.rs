//! A fixed-size pool of worker threads, each owning one [`QueryEngine`],
//! fed from a bounded queue with reject-on-full admission control.
//!
//! The engine is deliberately single-threaded (all scratch is
//! epoch-stamped and reused across queries), so concurrency comes from
//! *replication*: `N` workers each build a private engine against the
//! shared graph and drain a common queue. Submitting to a full queue
//! fails immediately with [`ServiceError::Overloaded`] rather than
//! building an unbounded backlog — the caller (or its client) decides
//! whether to retry.
//!
//! ## Graph epochs
//!
//! Every job carries the [`GraphEpoch`] pinned at admission, and each
//! worker keeps its engine built against the epoch of the job it is
//! running: when a popped job's epoch differs, the worker drops the old
//! engine (releasing its pin) and rebuilds against the new one. Pins are
//! taken in admission order and publishes are monotonic, so the queue is
//! monotone in epoch id and a worker rebuilds at most once per swap —
//! warmed scratch (and the zero-alloc steady state) survives for as long
//! as the epoch does.
//!
//! ## Reply-slot integrity
//!
//! A worker that dies between popping a job and filling its reply slot
//! would strand the submitter (and, through the single-flight cache,
//! every later request for the same key). Queries run under
//! `catch_unwind`, and a scope guard backstops the slot besides: whatever
//! unwinds, the slot fills and waiters observe a retryable error.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kpj_core::{Algorithm, Deadline, KpjResult, QueryEngine};
use kpj_graph::{Graph, NodeId, Reduction};
use kpj_landmark::LandmarkIndex;
use kpj_obs::Stage;

use crate::epoch::{EpochCell, GraphEpoch};
use crate::flight::FlightRecorder;
use crate::metrics::{algorithm_index, event, gauge, Metrics, SLOW_SHED_US};
use crate::ServiceError;

/// One KPJ query as submitted to the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRequest {
    /// Which of the paper's algorithms to run.
    pub algorithm: Algorithm,
    /// Source nodes (GKPJ when more than one).
    pub sources: Vec<NodeId>,
    /// Target category.
    pub targets: Vec<NodeId>,
    /// Number of paths requested.
    pub k: usize,
    /// Optional per-query budget; `Some(0)` expires immediately.
    pub timeout_ms: Option<u64>,
}

impl QueryRequest {
    /// The deadline implied by `timeout_ms`, anchored at "now".
    pub fn deadline(&self) -> Deadline {
        match self.timeout_ms {
            Some(ms) => Deadline::after(Duration::from_millis(ms)),
            None => Deadline::none(),
        }
    }
}

/// Pool sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Worker-thread count; `0` means one per available CPU.
    pub workers: usize,
    /// Maximum queued (not yet running) requests before admission
    /// control rejects with [`ServiceError::Overloaded`].
    pub queue_capacity: usize,
    /// Upper bound on *intra-query* threads a worker may grant itself
    /// (`QueryEngine::set_par_threads`). `0` disables intra-query
    /// parallelism entirely; values `>= 2` let an idle pool spend its
    /// spare workers widening one query's deviation rounds. The grant
    /// is adaptive — see [`par_grant`].
    pub par_threads_max: usize,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            workers: 0,
            queue_capacity: 128,
            par_threads_max: 0,
        }
    }
}

impl PoolConfig {
    /// `workers` with the `0 = auto` rule applied.
    pub fn effective_workers(&self) -> usize {
        resolve_workers(self.workers)
    }
}

/// Resolve a `0 = one per available CPU` worker count.
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// How many intra-query threads a worker should grant the job it just
/// popped. The pool's spare capacity is split evenly among the workers
/// currently busy: an idle pool hands one query the full
/// `par_threads_max`, a saturated pool degrades to sequential (inter-
/// query replication already uses every core). Deadline-carrying jobs
/// always get the maximum — latency is what the budget protects, and a
/// deadline miss costs more than a little oversubscription.
///
/// Parallel execution is bit-identical to sequential (the engine's
/// canonical-round-batch contract), so the grant can vary per job
/// without making answers depend on load.
pub fn par_grant(worker_count: usize, busy: usize, par_max: usize, has_deadline: bool) -> usize {
    if par_max < 2 {
        return 0;
    }
    let grant = if has_deadline {
        par_max
    } else {
        (worker_count / busy.max(1)).clamp(1, par_max)
    };
    if grant >= 2 {
        grant
    } else {
        0
    }
}

/// Observability attachments for the pool. Workers own the engines, so
/// everything that reads engine-side state (span traces, per-query work
/// counters) has to happen on the worker thread — these hooks are how
/// the service hands that work down.
#[derive(Clone)]
pub struct PoolHooks {
    /// Per-(algorithm, stage) histogram + work-counter registry. Workers
    /// drain each query's span trace into it and absorb [`kpj_core`]
    /// `QueryStats` counters.
    pub metrics: Option<Arc<Metrics>>,
    /// Slow-query flight recorder; consulted after every successful
    /// query with the engine-side latency.
    pub flight: Option<Arc<FlightRecorder>>,
    /// Trace 1-in-N queries (`0` disables tracing entirely).
    pub trace_sample: u32,
    /// Chaos hook: called on the worker thread right before each query
    /// executes, inside the panic isolation boundary. Tests (and fault
    /// drills) inject panics here to prove a dying worker can neither
    /// strand its submitter nor wedge a single-flight cache key.
    pub fault: Option<FaultHook>,
}

/// Shared chaos-injection callback (see [`PoolHooks::fault`]).
pub type FaultHook = Arc<dyn Fn(&QueryRequest) + Send + Sync>;

impl Default for PoolHooks {
    fn default() -> Self {
        PoolHooks {
            metrics: None,
            flight: None,
            trace_sample: 1,
            fault: None,
        }
    }
}

/// Write-once reply slot shared between a worker and the submitter.
struct ReplySlot {
    result: Mutex<Option<Result<KpjResult, ServiceError>>>,
    done: Condvar,
}

impl ReplySlot {
    fn new() -> Arc<ReplySlot> {
        Arc::new(ReplySlot {
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn fill(&self, value: Result<KpjResult, ServiceError>) {
        let mut slot = self.result.lock().unwrap();
        if slot.is_none() {
            *slot = Some(value);
            self.done.notify_all();
        }
    }
}

/// Handle to a submitted query; [`wait`](JobHandle::wait) blocks until
/// the worker publishes the result.
pub struct JobHandle {
    slot: Arc<ReplySlot>,
}

impl JobHandle {
    /// Block until the query completes and take its result.
    pub fn wait(self) -> Result<KpjResult, ServiceError> {
        let mut guard = self.slot.result.lock().unwrap();
        loop {
            if let Some(result) = guard.take() {
                return result;
            }
            guard = self.slot.done.wait(guard).unwrap();
        }
    }
}

/// Fills the reply slot with a retryable error if the job span unwinds
/// before a real result lands. `fill` is write-once, so on the normal
/// path this drop is a no-op.
struct SlotGuard(Arc<ReplySlot>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fill(Err(ServiceError::Internal(
            "worker died before replying".to_string(),
        )));
    }
}

struct Job {
    request: QueryRequest,
    slot: Arc<ReplySlot>,
    submitted: Instant,
    /// The graph version pinned at admission; the query runs to
    /// completion on it even if newer epochs publish meanwhile.
    epoch: Arc<GraphEpoch>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    capacity: usize,
    executed: AtomicU64,
    /// Workers currently executing a job — the load signal behind the
    /// adaptive intra-query grant ([`par_grant`]) and the
    /// `busy_workers` gauge.
    busy: AtomicUsize,
    /// Mirror of [`PoolHooks::metrics`], reachable from the pop sites so
    /// the `queue_depth` gauge tracks both ends of the queue.
    metrics: Option<Arc<Metrics>>,
}

impl Shared {
    /// Mirror the queue depth into the gauge layer. Callers hold the
    /// queue lock, so the gauge moves monotonically with the queue.
    fn note_queue_depth(&self, depth: usize) {
        if let Some(metrics) = &self.metrics {
            metrics.gauges().set(gauge::QUEUE_DEPTH, depth as i64);
        }
    }
}

/// The worker pool. Dropping it drains the queue (already-admitted
/// queries still run), then joins every worker.
pub struct EnginePool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    worker_count: usize,
    epochs: Arc<EpochCell>,
}

impl EnginePool {
    /// Spawn `config` workers over a shared graph and optional landmark
    /// index. Each worker constructs its own [`QueryEngine`] (with its
    /// own scratch) inside its thread.
    pub fn new(
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        config: PoolConfig,
    ) -> EnginePool {
        EnginePool::with_hooks(graph, landmarks, config, PoolHooks::default())
    }

    /// [`new`](EnginePool::new) with observability hooks attached.
    pub fn with_hooks(
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        config: PoolConfig,
        hooks: PoolHooks,
    ) -> EnginePool {
        EnginePool::with_hooks_reduced(graph, landmarks, None, config, hooks)
    }

    /// [`with_hooks`](EnginePool::with_hooks) for a reduced graph: every
    /// worker engine expands answer paths through `reduction`, so results
    /// leave the pool in original node ids.
    pub fn with_hooks_reduced(
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        reduction: Option<Arc<Reduction>>,
        config: PoolConfig,
        hooks: PoolHooks,
    ) -> EnginePool {
        let worker_count = config.effective_workers();
        let epochs = Arc::new(EpochCell::new_reduced(graph, landmarks, reduction));
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: config.queue_capacity.max(1),
            executed: AtomicU64::new(0),
            busy: AtomicUsize::new(0),
            metrics: hooks.metrics.clone(),
        });
        let par_threads_max = config.par_threads_max;
        let workers = (0..worker_count)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let epochs = Arc::clone(&epochs);
                let hooks = hooks.clone();
                std::thread::Builder::new()
                    .name(format!("kpj-worker-{i}"))
                    .spawn(move || {
                        worker_loop(&shared, &epochs, &hooks, worker_count, par_threads_max)
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        EnginePool {
            shared,
            workers,
            worker_count,
            epochs,
        }
    }

    /// Number of worker threads actually running.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Queries executed (not rejected) so far — used by tests to prove
    /// single-flight deduplication reached the pool exactly once.
    pub fn executed(&self) -> u64 {
        self.shared.executed.load(Ordering::Relaxed)
    }

    /// Jobs admitted but not yet popped by a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().unwrap().jobs.len()
    }

    /// Queued-request limit behind admission control.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Workers currently executing a job.
    pub fn busy(&self) -> usize {
        self.shared.busy.load(Ordering::Relaxed)
    }

    /// The epoch cell: pin for admission, inspect for liveness.
    pub fn epochs(&self) -> &Arc<EpochCell> {
        &self.epochs
    }

    /// Publish the next epoch and wake every parked worker, so none of
    /// them keeps a superseded epoch pinned through an idle warm engine.
    /// The current epoch's reduction (if any) carries forward; use
    /// [`publish_reduced`](EnginePool::publish_reduced) when the update
    /// rewrote expansion prefix sums.
    pub fn publish(
        &self,
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        touched_edges: usize,
    ) -> Arc<GraphEpoch> {
        let next = self.epochs.publish(graph, landmarks, touched_edges);
        self.shared.not_empty.notify_all();
        next
    }

    /// [`publish`](EnginePool::publish) with an explicit next reduction.
    pub fn publish_reduced(
        &self,
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        reduction: Option<Arc<Reduction>>,
        touched_edges: usize,
    ) -> Arc<GraphEpoch> {
        let next = self
            .epochs
            .publish_reduced(graph, landmarks, reduction, touched_edges);
        self.shared.not_empty.notify_all();
        next
    }

    /// Submit a query pinned to the current epoch. Returns
    /// [`ServiceError::Overloaded`] when the queue is at capacity and
    /// [`ServiceError::ShuttingDown`] after the pool starts tearing down.
    pub fn submit(&self, request: QueryRequest) -> Result<JobHandle, ServiceError> {
        self.submit_pinned(request, self.epochs.pin())
    }

    /// Submit a query pinned to a specific epoch (normally the one the
    /// caller pinned at admission, so the cache key and the executing
    /// graph can never disagree).
    pub fn submit_pinned(
        &self,
        request: QueryRequest,
        epoch: Arc<GraphEpoch>,
    ) -> Result<JobHandle, ServiceError> {
        let slot = ReplySlot::new();
        {
            let mut state = self.shared.state.lock().unwrap();
            if state.closed {
                return Err(ServiceError::ShuttingDown);
            }
            if state.jobs.len() >= self.shared.capacity {
                if let Some(metrics) = &self.shared.metrics {
                    metrics.record_event(
                        event::ADMISSION_REJECT,
                        [state.jobs.len() as u64, self.shared.capacity as u64, 0, 0],
                    );
                }
                return Err(ServiceError::Overloaded);
            }
            state.jobs.push_back(Job {
                request,
                slot: Arc::clone(&slot),
                submitted: Instant::now(),
                epoch,
            });
            self.shared.note_queue_depth(state.jobs.len());
        }
        self.shared.not_empty.notify_one();
        Ok(JobHandle { slot })
    }

    /// Convenience: submit and block for the result.
    pub fn run(&self, request: QueryRequest) -> Result<KpjResult, ServiceError> {
        self.submit(request)?.wait()
    }
}

impl Drop for EnginePool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().unwrap();
            state.closed = true;
        }
        self.shared.not_empty.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn build_engine<'g>(
    graph: &'g Graph,
    landmarks: Option<&'g LandmarkIndex>,
    reduction: Option<&'g Reduction>,
    hooks: &PoolHooks,
) -> QueryEngine<'g> {
    let mut engine = QueryEngine::new(graph);
    if let Some(idx) = landmarks {
        engine = engine.with_landmarks(idx);
    }
    if let Some(red) = reduction {
        engine = engine.with_reduction(red);
    }
    engine.set_trace_sampling(hooks.trace_sample);
    engine
}

/// Drain the engine's span ring and the query's work counters into the
/// registry, then hand a genuinely slow query to the flight recorder.
/// Runs *before* the reply slot fills so that by the time a caller
/// observes the answer, its metrics and any flight record exist.
#[allow(clippy::too_many_arguments)]
fn observe_query(
    engine: &QueryEngine<'_>,
    graph: &Graph,
    reduction: Option<&Reduction>,
    hooks: &PoolHooks,
    request: &QueryRequest,
    queue_wait: Duration,
    exec: Duration,
    result: &KpjResult,
) {
    if let Some(metrics) = &hooks.metrics {
        let registry = metrics.registry();
        let alg = algorithm_index(request.algorithm);
        registry.record(alg, Stage::QueueWait, queue_wait);
        let (older, newer) = engine.trace_spans();
        for span in older.iter().chain(newer) {
            registry.record_ns(alg, span.stage, span.dur_ns);
        }
        metrics.absorb_stats(request.algorithm, &result.stats);
        if let Some(red) = reduction {
            // Interior nodes can only appear in an answer via chain
            // re-expansion, so counting them measures how much of the
            // reduced-away graph this query's paths passed through.
            let hops: usize = result
                .paths
                .iter()
                .map(|p| p.nodes.iter().filter(|&&n| red.is_interior(n)).count())
                .sum();
            metrics.gauges().set(gauge::EXPAND_HOPS, hops as i64);
        }
    }
    if let Some(flight) = &hooks.flight {
        if exec >= flight.threshold() {
            let before = flight.written();
            flight.maybe_record(graph, request, exec, engine.trace_spans(), result);
            if flight.written() > before {
                if let Some(metrics) = &hooks.metrics {
                    metrics.record_event(
                        event::FLIGHT_DUMP,
                        [
                            algorithm_index(request.algorithm) as u64,
                            exec.as_micros() as u64,
                            flight.written(),
                            0,
                        ],
                    );
                }
            }
        }
    }
}

/// Record a worker shedding a superseded epoch: the `shed_wait_us` gauge
/// tracks how long the retired graph lingered after being replaced, and
/// sheds that out-stay [`SLOW_SHED_US`] earn an extra `slow_shed` event —
/// the signal that idle workers are holding memory hostage.
fn note_shed(hooks: &PoolHooks, epoch: &GraphEpoch) {
    let Some(metrics) = &hooks.metrics else {
        return;
    };
    let wait_us = epoch
        .superseded_elapsed()
        .map_or(0, |d| d.as_micros() as u64);
    metrics.gauges().set(gauge::SHED_WAIT_US, wait_us as i64);
    metrics.record_event(event::EPOCH_SHED, [epoch.id(), wait_us, 0, 0]);
    if wait_us > SLOW_SHED_US {
        metrics.record_event(event::SLOW_SHED, [epoch.id(), wait_us, 0, 0]);
    }
}

/// Pop the next job, or `None` once the queue is drained and closed.
fn pop_job(shared: &Shared) -> Option<Job> {
    let mut state = shared.state.lock().unwrap();
    loop {
        if let Some(job) = state.jobs.pop_front() {
            shared.note_queue_depth(state.jobs.len());
            return Some(job);
        }
        if state.closed {
            return None;
        }
        state = shared.not_empty.wait(state).unwrap();
    }
}

/// What an engine-holding worker should do next.
enum Next {
    /// Run this job (same or different epoch — caller checks).
    Job(Job),
    /// Queue is idle and the held epoch is superseded: drop the warm
    /// engine so the old graph can retire, then wait epoch-free.
    Shed,
    /// Pool is shutting down.
    Closed,
}

/// Like [`pop_job`], but refuses to park while pinning a superseded
/// epoch: an idle worker's warm engine must not keep a retired graph
/// alive indefinitely. Publishers nudge the queue condvar so sleeping
/// workers re-run this check.
fn next_job(shared: &Shared, epochs: &EpochCell, held: &GraphEpoch) -> Next {
    let mut state = shared.state.lock().unwrap();
    loop {
        if let Some(job) = state.jobs.pop_front() {
            shared.note_queue_depth(state.jobs.len());
            return Next::Job(job);
        }
        if state.closed {
            return Next::Closed;
        }
        if epochs.current_id() != held.id() {
            return Next::Shed;
        }
        state = shared.not_empty.wait(state).unwrap();
    }
}

fn worker_loop(
    shared: &Shared,
    epochs: &EpochCell,
    hooks: &PoolHooks,
    worker_count: usize,
    par_threads_max: usize,
) {
    // A job popped under one epoch's engine that belongs to the next
    // epoch; carried across the rebuild below.
    let mut carry: Option<Job> = None;
    'epoch: loop {
        let mut job = match carry.take().or_else(|| pop_job(shared)) {
            Some(job) => job,
            None => return,
        };
        // The engine borrows this stack-local pin, so it can never
        // outlive the epoch's graph; dropping the engine at the end of
        // the scope releases the worker's share of the pin.
        let epoch = Arc::clone(&job.epoch);
        let graph: &Graph = epoch.graph();
        let landmarks: Option<&LandmarkIndex> = epoch.landmarks().map(Arc::as_ref);
        let reduction: Option<&Reduction> = epoch.reduction().map(Arc::as_ref);
        let mut engine = build_engine(graph, landmarks, reduction, hooks);
        loop {
            shared.executed.fetch_add(1, Ordering::Relaxed);
            let queue_wait = job.submitted.elapsed();
            // Whatever happens below — including panics outside the
            // catch_unwind, e.g. in an engine rebuild — the submitter
            // gets an answer.
            let guard = SlotGuard(Arc::clone(&job.slot));
            let r = &job.request;
            let busy = shared.busy.fetch_add(1, Ordering::Relaxed) + 1;
            let grant = par_grant(worker_count, busy, par_threads_max, r.timeout_ms.is_some());
            if par_threads_max >= 2 {
                engine.set_par_threads(grant);
            }
            if let Some(metrics) = &hooks.metrics {
                metrics.gauges().add(gauge::BUSY_WORKERS, 1);
                if grant >= 2 {
                    metrics.gauges().add(gauge::PAR_GRANTS, grant as i64);
                }
            }
            let started = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(fault) = &hooks.fault {
                    fault(r);
                }
                let result = engine.query_multi_deadline(
                    r.algorithm,
                    &r.sources,
                    &r.targets,
                    r.k,
                    r.deadline(),
                );
                // Inside the isolation boundary on purpose: a panicking
                // metrics sink or flight recorder must not strand the
                // submitter either.
                if let Ok(result) = &result {
                    observe_query(
                        &engine,
                        graph,
                        reduction,
                        hooks,
                        r,
                        queue_wait,
                        started.elapsed(),
                        result,
                    );
                }
                result
            }));
            shared.busy.fetch_sub(1, Ordering::Relaxed);
            if let Some(metrics) = &hooks.metrics {
                metrics.gauges().add(gauge::BUSY_WORKERS, -1);
                if grant >= 2 {
                    metrics.gauges().add(gauge::PAR_GRANTS, -(grant as i64));
                }
            }
            match outcome {
                Ok(result) => job.slot.fill(result.map_err(ServiceError::Query)),
                Err(_) => {
                    // The engine's epoch-stamped scratch may be
                    // mid-update; rebuild it rather than trust a
                    // half-written state.
                    job.slot
                        .fill(Err(ServiceError::Internal("query panicked".to_string())));
                    engine = build_engine(graph, landmarks, reduction, hooks);
                }
            }
            drop(guard); // no-op: the slot is filled on every path above
            job = match next_job(shared, epochs, &epoch) {
                Next::Job(next) => {
                    if Arc::ptr_eq(&next.epoch, &epoch) {
                        next
                    } else {
                        // Epoch switch: rebuild the engine against the
                        // new graph. The queue is monotone in epoch id,
                        // so this happens at most once per published
                        // update.
                        carry = Some(next);
                        continue 'epoch;
                    }
                }
                Next::Shed => {
                    note_shed(hooks, &epoch);
                    continue 'epoch;
                }
                Next::Closed => return,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;

    fn diamond() -> Arc<Graph> {
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(1, 2, 1).unwrap();
        b.add_bidirectional(0, 3, 2).unwrap();
        b.add_bidirectional(3, 2, 2).unwrap();
        Arc::new(b.build())
    }

    fn request(k: usize) -> QueryRequest {
        QueryRequest {
            algorithm: Algorithm::IterBoundI,
            sources: vec![0],
            targets: vec![2],
            k,
            timeout_ms: None,
        }
    }

    #[test]
    fn pool_answers_queries() {
        let pool = EnginePool::new(
            diamond(),
            None,
            PoolConfig {
                workers: 2,
                queue_capacity: 8,
                ..Default::default()
            },
        );
        assert_eq!(pool.worker_count(), 2);
        let result = pool.run(request(2)).unwrap();
        let lengths: Vec<u64> = result.paths.iter().map(|p| p.length).collect();
        assert_eq!(lengths, vec![2, 4]);
        assert_eq!(pool.executed(), 1);
    }

    #[test]
    fn zero_workers_means_available_parallelism() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
        let pool = EnginePool::new(
            diamond(),
            None,
            PoolConfig {
                workers: 0,
                queue_capacity: 8,
                ..Default::default()
            },
        );
        assert!(pool.worker_count() >= 1);
        assert!(pool.run(request(1)).is_ok());
    }

    #[test]
    fn bad_query_surfaces_engine_error() {
        let pool = EnginePool::new(
            diamond(),
            None,
            PoolConfig {
                workers: 1,
                queue_capacity: 8,
                ..Default::default()
            },
        );
        let mut bad = request(1);
        bad.sources = vec![99];
        match pool.run(bad) {
            Err(ServiceError::Query(kpj_core::QueryError::SourceOutOfRange(99))) => {}
            other => panic!("expected SourceOutOfRange, got {other:?}"),
        }
    }

    #[test]
    fn worker_hooks_populate_the_stage_registry() {
        let metrics = Arc::new(Metrics::new());
        let pool = EnginePool::with_hooks(
            diamond(),
            None,
            PoolConfig {
                workers: 1,
                queue_capacity: 8,
                ..Default::default()
            },
            PoolHooks {
                metrics: Some(Arc::clone(&metrics)),
                ..Default::default()
            },
        );
        pool.run(request(2)).unwrap();
        let idx = algorithm_index(Algorithm::IterBoundI);
        // Queue wait is measured by the worker itself, trace or not.
        assert_eq!(
            metrics.registry().histogram(idx, Stage::QueueWait).count(),
            1
        );
        // Work counters travel from the engine's QueryStats into the
        // registry on the worker thread.
        let snap = metrics.snapshot();
        assert!(snap.heap_pops > 0, "heap pops not absorbed: {snap}");
        // With tracing compiled in, engine-side spans land in their
        // per-stage histograms too.
        #[cfg(feature = "trace")]
        assert!(
            metrics.registry().histogram(idx, Stage::SptBuild).count() > 0
                || metrics
                    .registry()
                    .histogram(idx, Stage::DeviationRound)
                    .count()
                    > 0,
            "no engine spans reached the registry"
        );
    }

    #[test]
    fn par_grant_splits_spare_capacity() {
        // Disabled knob always grants sequential.
        assert_eq!(par_grant(8, 1, 0, false), 0);
        assert_eq!(par_grant(8, 1, 1, true), 0);
        // Idle pool: one busy worker gets the full budget.
        assert_eq!(par_grant(8, 1, 4, false), 4);
        // Half-busy: spare capacity splits.
        assert_eq!(par_grant(8, 4, 4, false), 2);
        // Saturated (or oversubscribed): degrade to sequential.
        assert_eq!(par_grant(8, 8, 4, false), 0);
        assert_eq!(par_grant(4, 9, 4, false), 0);
        // Deadline-carrying jobs always get the maximum.
        assert_eq!(par_grant(8, 8, 4, true), 4);
        // Single-worker pools never self-parallelize without a deadline.
        assert_eq!(par_grant(1, 1, 4, false), 0);
        assert_eq!(par_grant(1, 1, 4, true), 4);
    }

    #[test]
    fn par_enabled_pool_answers_like_sequential() {
        let graph = diamond();
        let seq = EnginePool::new(
            Arc::clone(&graph),
            None,
            PoolConfig {
                workers: 1,
                queue_capacity: 8,
                ..Default::default()
            },
        );
        let par = EnginePool::new(
            graph,
            None,
            PoolConfig {
                workers: 2,
                queue_capacity: 8,
                par_threads_max: 4,
            },
        );
        // A deadline-free query on an idle 2-worker pool grants 2
        // intra-query threads; a deadline forces the full 4. Either way
        // the answer must match the sequential pool's bit for bit.
        for timeout_ms in [None, Some(10_000)] {
            let mut req = request(3);
            req.timeout_ms = timeout_ms;
            let a = seq.run(req.clone()).unwrap();
            let b = par.run(req).unwrap();
            assert_eq!(a.paths, b.paths);
        }
    }

    #[test]
    fn panicking_query_reports_and_worker_recovers() {
        // A fault injected at the same point a panicking metrics sink
        // would fire (after pop, before fill) must produce a retryable
        // error — not a stranded submitter — and the single worker must
        // keep serving afterwards.
        let poison = 3usize;
        let pool = EnginePool::with_hooks(
            diamond(),
            None,
            PoolConfig {
                workers: 1,
                queue_capacity: 8,
                ..Default::default()
            },
            PoolHooks {
                fault: Some(Arc::new(move |r: &QueryRequest| {
                    if r.k == poison {
                        panic!("injected worker fault");
                    }
                })),
                ..Default::default()
            },
        );
        match pool.run(request(poison)) {
            Err(ServiceError::Internal(msg)) => assert!(msg.contains("panicked"), "{msg}"),
            other => panic!("expected Internal, got {other:?}"),
        }
        // Same worker, fresh engine: still answers.
        assert_eq!(pool.run(request(2)).unwrap().paths.len(), 2);
        assert_eq!(pool.executed(), 2);
    }

    #[test]
    fn epoch_swap_retargets_workers_and_pins_run_to_completion() {
        let graph = diamond();
        let pool = EnginePool::new(
            Arc::clone(&graph),
            None,
            PoolConfig {
                workers: 2,
                queue_capacity: 16,
                ..Default::default()
            },
        );
        assert_eq!(pool.run(request(1)).unwrap().paths.path(0).length, 2);

        // Pin the old epoch the way an admitted query would, then publish
        // a version where the short route costs 50.
        let old_pin = pool.epochs().pin();
        let (updated, _) = graph
            .with_updated_weights(&[kpj_graph::WeightUpdate {
                from: 0,
                to: 1,
                weight: 50,
            }])
            .unwrap();
        pool.publish(Arc::new(updated), None, 1);

        // New submissions see the new weights...
        assert_eq!(pool.run(request(1)).unwrap().paths.path(0).length, 4);
        // ...while a job explicitly pinned to the old epoch still runs on
        // the old graph.
        let handle = pool
            .submit_pinned(request(1), Arc::clone(&old_pin))
            .unwrap();
        assert_eq!(handle.wait().unwrap().paths.path(0).length, 2);
        drop(old_pin);
        // Idle workers shed superseded engines (the publish nudged them;
        // the pinned job's worker sheds as soon as its queue goes idle) —
        // poll briefly for the old epoch to retire.
        let deadline = Instant::now() + Duration::from_secs(5);
        while pool.epochs().live_epochs() > 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.epochs().live_epochs(), 1);
    }

    #[test]
    fn queued_work_completes_on_drop() {
        let pool = EnginePool::new(
            diamond(),
            None,
            PoolConfig {
                workers: 1,
                queue_capacity: 64,
                ..Default::default()
            },
        );
        // The diamond holds exactly two simple 0→2 paths.
        let handles: Vec<JobHandle> = (0..16).map(|_| pool.submit(request(3)).unwrap()).collect();
        drop(pool);
        for h in handles {
            assert_eq!(h.wait().unwrap().paths.len(), 2);
        }
    }
}
