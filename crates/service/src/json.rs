//! A minimal JSON value type with a recursive-descent parser and writer.
//!
//! The serving layer speaks newline-delimited JSON; the build environment
//! is offline, so instead of `serde_json` this module implements the small
//! subset the wire protocol needs: objects, arrays, strings (with escape
//! sequences), numbers, booleans and null. Integer-syntax tokens are kept
//! exact in an `i128` ([`Json::Int`]) — node ids, `k`, and path lengths
//! are 64-bit quantities that would be corrupted above 2^53 by an `f64`
//! detour — while float-syntax tokens (`.`/`e`/`E`) stay `f64`
//! ([`Json::Num`]). Inputs are server-facing, so parsing is depth-limited
//! and never recurses on attacker-chosen depth beyond [`MAX_DEPTH`].

use std::fmt;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written in integer syntax (no `.`, `e` or `E`), exact.
    /// `i128` covers the full `u64` range (path lengths) with sign.
    Int(i128),
    /// A number written in float syntax. Exactness is not guaranteed.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// [`get`](Json::get) lookups are first-match, writers never emit
    /// duplicates).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Object field lookup (`None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it was *written* as one.
    ///
    /// Only [`Json::Int`] qualifies: `1e3` or `7.0` are float syntax and
    /// must be rejected where an id or count is expected, because the
    /// `f64` path silently corrupts values above 2^53.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::Int(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as a `usize`, if it is a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|v| usize::try_from(v).ok())
    }

    /// The value as a float, if numeric (integers convert, possibly
    /// losing precision above 2^53 — fine for float consumers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(n) => Some(n),
            Json::Int(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Parse/shape errors with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            message: msg.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let mut integer_syntax = true;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                if !(b.is_ascii_digit() || b == b'-' && self.pos == start) {
                    integer_syntax = false;
                }
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        if integer_syntax {
            // Parse from the raw token: an f64 detour would round ids and
            // lengths above 2^53. Tokens beyond i128 (±1.7e38) are far
            // outside any wire quantity and are rejected outright.
            return match text.parse::<i128>() {
                Ok(n) => Ok(Json::Int(n)),
                Err(_) => Err(self.err("integer out of range")),
            };
        }
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(self.err("bad number")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are replaced rather than paired —
                            // the wire protocol never emits them.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                _ => {
                    // Re-scan the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("bad utf-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected array")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected object")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected `:`")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Num(n) => {
                // Keep float syntax on the wire so parse ∘ display is the
                // identity: a bare "42" would re-parse as Int(42).
                if n.fract() == 0.0 {
                    write!(f, "{n:.1}")
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_the_wire_shapes() {
        let src = r#"{"id":3,"op":"query","sources":[1,2],"k":20,"timeout_ms":null,"deep":{"a":[true,false,1.5]},"s":"a\"b\\c\nd"}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("op").unwrap().as_str(), Some("query"));
        assert_eq!(v.get("sources").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("timeout_ms"), Some(&Json::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nd"));
        let reparsed = Json::parse(&v.to_string()).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "", "{", "[1,]", "{\"a\"}", "tru", "1 2", "\"\\x\"", "{\"a\":}", "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn numbers_and_unicode() {
        assert_eq!(Json::parse("-2.5e1").unwrap().as_f64(), Some(-25.0));
        assert_eq!(Json::parse("\"\\u0041é\"").unwrap().as_str(), Some("Aé"));
        assert_eq!(Json::Int(42).to_string(), "42");
        assert_eq!(Json::Num(42.0).to_string(), "42.0");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert!(Json::parse("1e999").is_err(), "infinite number accepted");
    }

    #[test]
    fn integers_parse_exactly_beyond_2_pow_53() {
        // 2^53 + 1 is the first u64 an f64 cannot represent; u64::MAX is
        // the largest wire quantity (a path length).
        for v in [9_007_199_254_740_993_u64, u64::MAX, 0, 1] {
            let parsed = Json::parse(&v.to_string()).unwrap();
            assert_eq!(parsed, Json::Int(v as i128));
            assert_eq!(parsed.as_u64(), Some(v), "corrupted {v}");
            assert_eq!(parsed.to_string(), v.to_string());
        }
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn float_syntax_is_not_an_integer() {
        // `1e3` and `7.0` are numerically integral but must not pass for
        // ids or counts: the f64 detour is lossy above 2^53.
        for float_ish in ["1e3", "7.0", "7.5", "0.5e1"] {
            let parsed = Json::parse(float_ish).unwrap();
            assert_eq!(parsed.as_u64(), None, "{float_ish} accepted as integer");
            assert!(parsed.as_f64().is_some());
        }
        assert_eq!(Json::parse("10").unwrap().as_f64(), Some(10.0));
    }

    #[test]
    fn oversized_integer_tokens_are_rejected() {
        let too_big = "1".repeat(60); // > i128::MAX
        assert!(Json::parse(&too_big).is_err());
        assert!(Json::parse(&format!("-{too_big}")).is_err());
    }

    #[test]
    fn display_roundtrips_numbers() {
        for src in ["42", "-42", "42.0", "0.5", "18446744073709551615"] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{src}");
        }
    }
}
