//! Epoch/RCU-style graph versioning: live weight updates with zero query
//! downtime.
//!
//! A [`GraphEpoch`] is one immutable published version of the serving
//! state — graph plus (repaired) landmark index. Queries **pin** the
//! current epoch at admission ([`EpochCell::pin`], a lock-guarded
//! `Arc::clone`, no allocation) and run to completion on it; the updater
//! builds the next version off to the side and **publishes** it with an
//! atomic pointer swap. Nothing is ever mutated in place, so readers need
//! no fences beyond the `RwLock` read, and an old epoch **retires**
//! (frees its graph and tables) the moment its last pinned query drops
//! its `Arc` — classic RCU with reference counts standing in for the
//! grace period.
//!
//! The epoch id is also the cache-coherence token: `CacheKey` includes
//! it, so an answer computed on epoch `e` can only ever be returned to a
//! request that pinned epoch `e` — stale answers are unreachable by
//! construction, not by invalidation racing the swap (see DESIGN.md §14).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use kpj_graph::{Graph, Reduction};
use kpj_landmark::LandmarkIndex;

/// One immutable published version of the serving state.
pub struct GraphEpoch {
    id: u64,
    graph: Arc<Graph>,
    landmarks: Option<Arc<LandmarkIndex>>,
    /// When the graph is a reduced one (v2 `--reduce` storage), the
    /// [`Reduction`] every worker engine expands answer paths through.
    /// Versioned with the epoch because an interior-chain weight update
    /// replaces the expansion prefix sums along with the graph.
    reduction: Option<Arc<Reduction>>,
    /// Distinct edges whose weight changed between the previous epoch and
    /// this one (0 for the initial epoch) — the update's blast radius,
    /// surfaced in update responses and metrics.
    touched_edges: usize,
    /// Live-epoch gauge shared with the [`EpochCell`]; decremented on
    /// drop so tests and metrics can watch retirement happen.
    live: Arc<AtomicUsize>,
    /// Stamped (once, by the publisher, inside the swap's write lock)
    /// the moment a newer epoch replaced this one. Lets idle workers
    /// report how long a superseded graph lingered before they shed it.
    superseded: OnceLock<Instant>,
}

impl GraphEpoch {
    fn new(
        id: u64,
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        reduction: Option<Arc<Reduction>>,
        touched_edges: usize,
        live: Arc<AtomicUsize>,
    ) -> Arc<GraphEpoch> {
        live.fetch_add(1, Ordering::Relaxed);
        Arc::new(GraphEpoch {
            id,
            graph,
            landmarks,
            reduction,
            touched_edges,
            live,
            superseded: OnceLock::new(),
        })
    }

    /// Monotonically increasing version number (the initial epoch is 0).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The graph this epoch serves.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The landmark index this epoch serves (already repaired for its
    /// graph), if the service has one.
    pub fn landmarks(&self) -> Option<&Arc<LandmarkIndex>> {
        self.landmarks.as_ref()
    }

    /// The reduction this epoch's graph was produced by, if any.
    pub fn reduction(&self) -> Option<&Arc<Reduction>> {
        self.reduction.as_ref()
    }

    /// Distinct edges changed relative to the previous epoch.
    pub fn touched_edges(&self) -> usize {
        self.touched_edges
    }

    /// Time since a newer epoch replaced this one, or `None` while it is
    /// still current. The publisher stamps the outgoing epoch inside the
    /// swap, so "how stale is the graph I'm about to shed?" is answerable
    /// without any clock reads on the query path.
    pub fn superseded_elapsed(&self) -> Option<Duration> {
        self.superseded.get().map(Instant::elapsed)
    }
}

impl Drop for GraphEpoch {
    fn drop(&mut self) {
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for GraphEpoch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphEpoch")
            .field("id", &self.id)
            .field("touched_edges", &self.touched_edges)
            .finish_non_exhaustive()
    }
}

/// The swap point: holds the current epoch and hands out pins.
pub struct EpochCell {
    current: RwLock<Arc<GraphEpoch>>,
    live: Arc<AtomicUsize>,
}

impl EpochCell {
    /// Wrap the initial serving state as epoch 0.
    pub fn new(graph: Arc<Graph>, landmarks: Option<Arc<LandmarkIndex>>) -> EpochCell {
        EpochCell::new_reduced(graph, landmarks, None)
    }

    /// [`new`](EpochCell::new) for a reduced graph: every epoch carries
    /// the reduction so worker engines expand answers transparently.
    pub fn new_reduced(
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        reduction: Option<Arc<Reduction>>,
    ) -> EpochCell {
        let live = Arc::new(AtomicUsize::new(0));
        let first = GraphEpoch::new(0, graph, landmarks, reduction, 0, Arc::clone(&live));
        EpochCell {
            current: RwLock::new(first),
            live,
        }
    }

    /// Pin the current epoch: the returned `Arc` keeps its graph and
    /// landmark tables alive for as long as the caller holds it. This is
    /// a read-lock plus a refcount increment — **no allocation** — so
    /// the per-query zero-alloc gate holds across it.
    pub fn pin(&self) -> Arc<GraphEpoch> {
        Arc::clone(&self.current.read().unwrap())
    }

    /// The current epoch id without pinning.
    pub fn current_id(&self) -> u64 {
        self.current.read().unwrap().id
    }

    /// Publish `graph`/`landmarks` as the next epoch and return it. The
    /// swap is atomic with respect to [`pin`](EpochCell::pin): a
    /// concurrent query gets either the old epoch or the new one, intact
    /// — never a mix. Callers serialize their *builds* (the service holds
    /// an updater lock); this method only serializes the swap itself.
    /// Weight updates preserve the graph's structure, so the current
    /// epoch's reduction (if any) is carried forward unchanged; use
    /// [`publish_reduced`](EpochCell::publish_reduced) when an
    /// interior-chain update replaced the expansion prefix sums.
    pub fn publish(
        &self,
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        touched_edges: usize,
    ) -> Arc<GraphEpoch> {
        let mut current = self.current.write().unwrap();
        let reduction = current.reduction.clone();
        let next = GraphEpoch::new(
            current.id + 1,
            graph,
            landmarks,
            reduction,
            touched_edges,
            Arc::clone(&self.live),
        );
        let _ = current.superseded.set(Instant::now());
        *current = Arc::clone(&next);
        next
    }

    /// [`publish`](EpochCell::publish) with an explicit reduction for the
    /// next epoch (a chain-interior weight update rewrote prefix sums).
    pub fn publish_reduced(
        &self,
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        reduction: Option<Arc<Reduction>>,
        touched_edges: usize,
    ) -> Arc<GraphEpoch> {
        let mut current = self.current.write().unwrap();
        let next = GraphEpoch::new(
            current.id + 1,
            graph,
            landmarks,
            reduction,
            touched_edges,
            Arc::clone(&self.live),
        );
        let _ = current.superseded.set(Instant::now());
        *current = Arc::clone(&next);
        next
    }

    /// Number of epochs not yet retired (published minus dropped). An
    /// idle service sits at 1; it grows only while old epochs still have
    /// pinned queries in flight.
    pub fn live_epochs(&self) -> usize {
        self.live.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;

    fn tiny() -> Arc<Graph> {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 1).unwrap();
        Arc::new(b.build())
    }

    #[test]
    fn pins_survive_publish_and_epochs_retire_on_drop() {
        let cell = EpochCell::new(tiny(), None);
        assert_eq!(cell.current_id(), 0);
        assert_eq!(cell.live_epochs(), 1);

        let pinned = cell.pin();
        let next_graph = tiny();
        let published = cell.publish(Arc::clone(&next_graph), None, 3);
        assert_eq!(published.id(), 1);
        assert_eq!(published.touched_edges(), 3);
        assert_eq!(cell.current_id(), 1);
        // The old epoch is still alive: `pinned` holds it.
        assert_eq!(cell.live_epochs(), 2);
        assert_eq!(pinned.id(), 0);
        drop(pinned);
        assert_eq!(cell.live_epochs(), 1, "old epoch retires with its last pin");

        // New pins see the new epoch (and its graph identity).
        let fresh = cell.pin();
        assert_eq!(fresh.id(), 1);
        assert!(Arc::ptr_eq(fresh.graph(), &next_graph));
    }

    #[test]
    fn publish_ids_are_sequential() {
        let cell = EpochCell::new(tiny(), None);
        for expect in 1..=5 {
            let e = cell.publish(tiny(), None, 0);
            assert_eq!(e.id(), expect);
        }
        assert_eq!(cell.current_id(), 5);
        assert_eq!(cell.live_epochs(), 1, "unpinned epochs retire immediately");
    }
}
