//! Sharded LRU result cache with single-flight deduplication.
//!
//! Keyed by the *normalized* query `(epoch, algorithm, sources, targets,
//! k)` — timeouts are intentionally not part of the key: a cached answer
//! is the full answer, valid whatever deadline the asker had in mind. The
//! graph epoch **is** part of the key: an answer computed on epoch `e`
//! can only be returned to a request admitted on epoch `e`, so a weight
//! update can never serve a stale answer — there is no invalidation to
//! race against the swap. Entries from superseded epochs become
//! unreachable at publish and are reaped by [`ResultCache::purge_stale`]
//! (and by ordinary LRU pressure).
//!
//! Single-flight: the first miss for a key installs a [`Flight`] slot and
//! gets back an [`InFlight`] token obligating it to compute and publish.
//! Concurrent requests for the same key block on the flight instead of
//! duplicating the (potentially expensive) k-shortest-path computation.
//! If the owner fails — deadline, overload, panic — the error is
//! broadcast to the waiters and the slot is removed, so the *next*
//! request retries fresh rather than caching a failure.
//!
//! Eviction is approximate LRU per shard: each shard keeps a monotonically
//! increasing tick, stamps entries on touch, and when over budget evicts
//! the lowest-stamped *ready* entries (in-flight slots are never evicted;
//! they are bounded by pool admission control).

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use kpj_core::Algorithm;
use kpj_graph::NodeId;

use crate::metrics::{gauge, Metrics};
use crate::service::Answer;
use crate::ServiceError;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 16;

/// Normalized cache key. Construct via [`CacheKey::new`] so that the
/// source/target sets are deduplicated and order-insensitive.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    epoch: u64,
    algorithm: Algorithm,
    sources: Vec<NodeId>,
    targets: Vec<NodeId>,
    k: usize,
}

impl CacheKey {
    /// Build a key; sorts and dedups the node sets so `{1,2}` and
    /// `{2,1,2}` address the same entry. `epoch` is the graph epoch the
    /// request pinned at admission.
    pub fn new(
        epoch: u64,
        algorithm: Algorithm,
        sources: &[NodeId],
        targets: &[NodeId],
        k: usize,
    ) -> CacheKey {
        let mut sources = sources.to_vec();
        sources.sort_unstable();
        sources.dedup();
        let mut targets = targets.to_vec();
        targets.sort_unstable();
        targets.dedup();
        CacheKey {
            epoch,
            algorithm,
            sources,
            targets,
            k,
        }
    }

    /// The graph epoch this key is scoped to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The normalized source set.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The normalized target set.
    pub fn targets(&self) -> &[NodeId] {
        &self.targets
    }
}

/// A computation other requests can wait on.
struct Flight {
    outcome: Mutex<Option<Result<Arc<Answer>, ServiceError>>>,
    done: Condvar,
}

impl Flight {
    fn wait(&self) -> Result<Arc<Answer>, ServiceError> {
        let mut guard = self.outcome.lock().unwrap();
        loop {
            if let Some(outcome) = guard.as_ref() {
                return outcome.clone();
            }
            guard = self.done.wait(guard).unwrap();
        }
    }

    fn publish(&self, outcome: Result<Arc<Answer>, ServiceError>) {
        let mut guard = self.outcome.lock().unwrap();
        if guard.is_none() {
            *guard = Some(outcome);
            self.done.notify_all();
        }
    }
}

enum Slot {
    Ready { value: Arc<Answer>, stamp: u64 },
    Pending(Arc<Flight>),
}

struct Shard {
    map: HashMap<CacheKey, Slot>,
    tick: u64,
}

/// Outcome of a cache lookup.
pub enum Lookup {
    /// Completed entry — serve immediately.
    Hit(Arc<Answer>),
    /// Nobody is computing this key; the caller now owns the flight and
    /// MUST resolve the returned [`InFlight`] token.
    Miss(InFlight),
    /// Someone else is computing; block on [`SharedFlight::wait`].
    Shared(SharedFlight),
}

/// A flight owned by another request.
pub struct SharedFlight {
    flight: Arc<Flight>,
}

impl SharedFlight {
    /// Block until the owning request publishes its outcome.
    pub fn wait(self) -> Result<Arc<Answer>, ServiceError> {
        self.flight.wait()
    }
}

/// Obligation token for the single request that must compute a key.
///
/// Resolve with [`complete`](InFlight::complete) or
/// [`fail`](InFlight::fail); dropping it unresolved (e.g. on panic in the
/// caller) broadcasts an internal error so waiters never hang.
pub struct InFlight {
    cache: Arc<CacheInner>,
    key: CacheKey,
    flight: Arc<Flight>,
    resolved: bool,
}

impl InFlight {
    /// Publish a successful result: waiters are woken and the entry
    /// becomes a [`Lookup::Hit`] for future requests.
    pub fn complete(mut self, value: Arc<Answer>) {
        self.resolved = true;
        self.cache
            .finish(&self.key, Ok(Arc::clone(&value)), &self.flight);
    }

    /// Broadcast a failure and drop the slot; the next request for this
    /// key will recompute.
    pub fn fail(mut self, error: ServiceError) {
        self.resolved = true;
        self.cache.finish(&self.key, Err(error), &self.flight);
    }
}

impl Drop for InFlight {
    fn drop(&mut self) {
        if !self.resolved {
            self.cache.finish(
                &self.key,
                Err(ServiceError::Internal(
                    "in-flight query abandoned".to_string(),
                )),
                &self.flight,
            );
        }
    }
}

struct CacheInner {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    /// Gauge sink for eviction accounting (`cache_evictions` only ever
    /// climbs, making the gauge a cumulative counter with a peak mirror).
    metrics: Option<Arc<Metrics>>,
}

impl CacheInner {
    fn shard_of(&self, key: &CacheKey) -> &Mutex<Shard> {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    fn finish(
        &self,
        key: &CacheKey,
        outcome: Result<Arc<Answer>, ServiceError>,
        flight: &Arc<Flight>,
    ) {
        {
            let mut shard = self.shard_of(key).lock().unwrap();
            // Replace our Pending slot; leave foreign slots alone (a
            // failed flight's key may have been re-claimed already).
            let ours = matches!(
                shard.map.get(key),
                Some(Slot::Pending(f)) if Arc::ptr_eq(f, flight)
            );
            if ours {
                match &outcome {
                    Ok(value) => {
                        shard.tick += 1;
                        let stamp = shard.tick;
                        shard.map.insert(
                            key.clone(),
                            Slot::Ready {
                                value: Arc::clone(value),
                                stamp,
                            },
                        );
                        self.evict_locked(&mut shard);
                    }
                    Err(_) => {
                        shard.map.remove(key);
                    }
                }
            }
        }
        flight.publish(outcome);
    }

    /// Evict lowest-stamped ready entries until within budget. Holding
    /// the shard lock; O(n) scans are fine at cache scale.
    fn evict_locked(&self, shard: &mut Shard) {
        let ready = |s: &Slot| matches!(s, Slot::Ready { .. });
        while shard.map.values().filter(|s| ready(s)).count() > self.capacity_per_shard {
            let victim = shard
                .map
                .iter()
                .filter_map(|(k, s)| match s {
                    Slot::Ready { stamp, .. } => Some((*stamp, k.clone())),
                    Slot::Pending(_) => None,
                })
                .min_by_key(|(stamp, _)| *stamp)
                .map(|(_, k)| k);
            match victim {
                Some(k) => {
                    shard.map.remove(&k);
                    if let Some(metrics) = &self.metrics {
                        metrics.gauges().add(gauge::CACHE_EVICTIONS, 1);
                    }
                }
                None => break,
            };
        }
    }
}

/// The sharded result cache.
pub struct ResultCache {
    inner: Arc<CacheInner>,
}

impl ResultCache {
    /// A cache holding up to ~`capacity` completed results (rounded up
    /// to a multiple of the shard count).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache::with_metrics(capacity, None)
    }

    /// [`new`](ResultCache::new) with a gauge sink for eviction
    /// accounting.
    pub fn with_metrics(capacity: usize, metrics: Option<Arc<Metrics>>) -> ResultCache {
        let capacity_per_shard = capacity.div_ceil(SHARDS).max(1);
        ResultCache {
            inner: Arc::new(CacheInner {
                shards: (0..SHARDS)
                    .map(|_| {
                        Mutex::new(Shard {
                            map: HashMap::new(),
                            tick: 0,
                        })
                    })
                    .collect(),
                capacity_per_shard,
                metrics,
            }),
        }
    }

    /// Look up `key`, claiming the flight on a miss.
    pub fn lookup(&self, key: &CacheKey) -> Lookup {
        let mut shard = self.inner.shard_of(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(key) {
            Some(Slot::Ready { value, stamp }) => {
                *stamp = tick;
                Lookup::Hit(Arc::clone(value))
            }
            Some(Slot::Pending(flight)) => Lookup::Shared(SharedFlight {
                flight: Arc::clone(flight),
            }),
            None => {
                let flight = Arc::new(Flight {
                    outcome: Mutex::new(None),
                    done: Condvar::new(),
                });
                shard
                    .map
                    .insert(key.clone(), Slot::Pending(Arc::clone(&flight)));
                drop(shard);
                Lookup::Miss(InFlight {
                    cache: Arc::clone(&self.inner),
                    key: key.clone(),
                    flight,
                    resolved: false,
                })
            }
        }
    }

    /// Drop completed entries computed on epochs older than `epoch`,
    /// returning how many were reaped. Epoch-scoped keys already make
    /// stale entries unreachable the moment a new epoch publishes; this
    /// frees their memory eagerly instead of waiting for LRU pressure.
    /// Pending flights are left alone — their owners resolve them, and an
    /// old-epoch flight's key can no longer be looked up anyway.
    pub fn purge_stale(&self, epoch: u64) -> usize {
        let mut reaped = 0;
        for shard in &self.inner.shards {
            let mut shard = shard.lock().unwrap();
            let before = shard.map.len();
            shard
                .map
                .retain(|k, s| k.epoch >= epoch || !matches!(s, Slot::Ready { .. }));
            reaped += before - shard.map.len();
        }
        reaped
    }

    /// Number of completed (ready) entries across all shards.
    pub fn len(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .map
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready { .. }))
                    .count()
            })
            .sum()
    }

    /// True when no completed entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard `(ready, pending)` slot counts, in shard order. One
    /// consistent read per shard (not across shards), which is exactly
    /// the fidelity a live dashboard needs.
    pub fn occupancy(&self) -> Vec<(usize, usize)> {
        self.inner
            .shards
            .iter()
            .map(|s| {
                let shard = s.lock().unwrap();
                let ready = shard
                    .map
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready { .. }))
                    .count();
                (ready, shard.map.len() - ready)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_core::{KpjResult, QueryStats};

    fn result_with_tau(tau: u64) -> Arc<Answer> {
        Arc::new(Answer::new(KpjResult {
            paths: kpj_graph::PathSet::new(),
            stats: QueryStats {
                final_tau: tau,
                ..Default::default()
            },
        }))
    }

    fn key(k: usize) -> CacheKey {
        CacheKey::new(0, Algorithm::Da, &[0], &[1], k)
    }

    fn key_at(epoch: u64, k: usize) -> CacheKey {
        CacheKey::new(epoch, Algorithm::Da, &[0], &[1], k)
    }

    #[test]
    fn key_normalizes_node_sets() {
        let a = CacheKey::new(0, Algorithm::Da, &[2, 1, 2], &[5, 4], 3);
        let b = CacheKey::new(0, Algorithm::Da, &[1, 2], &[4, 5, 5], 3);
        assert_eq!(a, b);
        assert_eq!(a.sources(), &[1, 2]);
        assert_ne!(a, CacheKey::new(0, Algorithm::Da, &[1, 2], &[4, 5], 4));
        assert_ne!(
            a,
            CacheKey::new(0, Algorithm::BestFirst, &[1, 2], &[4, 5], 3)
        );
        // Same query on a different epoch is a different entry.
        assert_ne!(a, CacheKey::new(1, Algorithm::Da, &[2, 1], &[4, 5], 3));
        assert_eq!(a.epoch(), 0);
    }

    #[test]
    fn miss_then_complete_then_hit() {
        let cache = ResultCache::new(8);
        let token = match cache.lookup(&key(1)) {
            Lookup::Miss(t) => t,
            _ => panic!("expected miss"),
        };
        token.complete(result_with_tau(7));
        match cache.lookup(&key(1)) {
            Lookup::Hit(v) => assert_eq!(v.stats.final_tau, 7),
            _ => panic!("expected hit"),
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn concurrent_lookup_shares_the_flight() {
        let cache = ResultCache::new(8);
        let Lookup::Miss(token) = cache.lookup(&key(1)) else {
            panic!("expected miss")
        };
        let Lookup::Shared(shared) = cache.lookup(&key(1)) else {
            panic!("expected shared")
        };
        let waiter = std::thread::spawn(move || shared.wait());
        token.complete(result_with_tau(9));
        assert_eq!(waiter.join().unwrap().unwrap().stats.final_tau, 9);
    }

    #[test]
    fn failure_is_broadcast_and_not_cached() {
        let cache = ResultCache::new(8);
        let Lookup::Miss(token) = cache.lookup(&key(1)) else {
            panic!("expected miss")
        };
        let Lookup::Shared(shared) = cache.lookup(&key(1)) else {
            panic!("expected shared")
        };
        token.fail(ServiceError::Overloaded);
        assert!(matches!(shared.wait(), Err(ServiceError::Overloaded)));
        // The slot is gone: the next lookup re-claims the flight.
        assert!(matches!(cache.lookup(&key(1)), Lookup::Miss(_)));
        assert!(cache.is_empty());
    }

    #[test]
    fn dropped_token_unblocks_waiters() {
        let cache = ResultCache::new(8);
        let Lookup::Miss(token) = cache.lookup(&key(1)) else {
            panic!("expected miss")
        };
        let Lookup::Shared(shared) = cache.lookup(&key(1)) else {
            panic!("expected shared")
        };
        drop(token);
        assert!(matches!(shared.wait(), Err(ServiceError::Internal(_))));
        assert!(matches!(cache.lookup(&key(1)), Lookup::Miss(_)));
    }

    #[test]
    fn panicking_filler_leaves_a_retryable_miss() {
        // A filler that panics between claiming the flight and publishing
        // must not wedge the key: its waiter gets a retryable error, and
        // the *next* caller claims a fresh flight and actually executes.
        let cache = ResultCache::new(8);
        let Lookup::Miss(token) = cache.lookup(&key(1)) else {
            panic!("expected miss")
        };
        let Lookup::Shared(shared) = cache.lookup(&key(1)) else {
            panic!("expected shared")
        };
        let filler = std::thread::Builder::new()
            .name("dying-filler".into())
            .spawn(move || {
                let _owned = token;
                panic!("injected filler fault");
            })
            .unwrap();
        assert!(filler.join().is_err(), "filler must have panicked");
        assert!(matches!(shared.wait(), Err(ServiceError::Internal(_))));
        let Lookup::Miss(retry) = cache.lookup(&key(1)) else {
            panic!("key wedged: next caller did not get the flight")
        };
        retry.complete(result_with_tau(11));
        match cache.lookup(&key(1)) {
            Lookup::Hit(v) => assert_eq!(v.stats.final_tau, 11),
            _ => panic!("retry result not cached"),
        }
    }

    #[test]
    fn purge_reaps_only_stale_ready_entries() {
        let cache = ResultCache::new(64);
        for k in 1..=4usize {
            let Lookup::Miss(t) = cache.lookup(&key_at(0, k)) else {
                panic!("expected miss")
            };
            t.complete(result_with_tau(k as u64));
        }
        let Lookup::Miss(fresh) = cache.lookup(&key_at(1, 1)) else {
            panic!("expected miss")
        };
        fresh.complete(result_with_tau(9));
        // An old-epoch flight still pending must survive the purge.
        let Lookup::Miss(_pending) = cache.lookup(&key_at(0, 99)) else {
            panic!("expected miss")
        };
        assert_eq!(cache.purge_stale(1), 4);
        assert_eq!(cache.len(), 1);
        assert!(matches!(cache.lookup(&key_at(1, 1)), Lookup::Hit(_)));
        assert!(matches!(cache.lookup(&key_at(0, 99)), Lookup::Shared(_)));
    }

    #[test]
    fn lru_evicts_oldest_ready_entries() {
        // Single-shard pressure: use identical sources/targets, varying k,
        // and a capacity small enough to force eviction in any shard.
        let cache = ResultCache::new(1); // 1 per shard
        let mut keys = Vec::new();
        for k in 1..=64usize {
            let key = key(k);
            if let Lookup::Miss(t) = cache.lookup(&key) {
                t.complete(result_with_tau(k as u64));
            }
            keys.push(key);
        }
        // Each shard holds at most 1 ready entry.
        assert!(cache.len() <= SHARDS);
        // The freshest key must still be present.
        assert!(matches!(cache.lookup(keys.last().unwrap()), Lookup::Hit(_)));
    }
}
