//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one response line per request, `id` echoed
//! verbatim so clients may pipeline. Five operations:
//!
//! ```text
//! {"id":1,"op":"ping"}
//! {"id":2,"op":"query","algorithm":"iterboundi","sources":[0],
//!  "targets":[5,9],"k":20,"timeout_ms":250,"paths":true}
//! {"id":3,"op":"metrics"}
//! {"id":4,"op":"update","edges":[[0,1,50],[3,2,7]]}
//! {"id":5,"op":"status"}
//! ```
//!
//! `update` sets each `[from,to,weight]` edge to the given weight and
//! publishes the batch as a new graph epoch — queries already admitted
//! finish on the old weights; later ones see the new. The response
//! reports `epoch`, `changed`, `repair_us`, and `affected_nodes`.
//!
//! `status` returns one JSON snapshot of live system state: every gauge
//! (current value and high-water peak), epoch/pool/cache/storage detail,
//! throughput and latency aggregates, and the structured event journal's
//! tail — everything `kpj-cli top` renders, in one round trip.
//!
//! Responses carry `"ok":true` plus the payload, or `"ok":false` with a
//! machine-readable `error` code (`bad_request`, `overloaded`,
//! `deadline_exceeded`, `shutting_down`, `internal`) and a human
//! `message`. This module is pure string→string so the protocol is
//! testable without sockets; [`server`](crate::server) adds the TCP.

use std::fmt::Write as _;
use std::time::Instant;

use kpj_core::{Algorithm, QueryError};
use kpj_graph::{NodeId, Weight, WeightUpdate};
use kpj_obs::Stage;

use crate::json::Json;
use crate::metrics::gauge;
use crate::pool::QueryRequest;
use crate::service::KpjService;
use crate::ServiceError;

/// Largest accepted `k` — a backstop against `{"k":1e15}` requests
/// pinning a worker forever.
pub const MAX_K: usize = 10_000;

/// Largest accepted source/target set size.
pub const MAX_NODE_SET: usize = 100_000;

/// Handle one request line, producing one response line (no trailing
/// newline).
pub fn handle_line(service: &KpjService, line: &str) -> String {
    let parsed = match Json::parse(line) {
        Ok(v) => v,
        Err(e) => return error_response(Json::Null, "bad_request", &format!("bad json: {e}")),
    };
    let id = parsed.get("id").cloned().unwrap_or(Json::Null);
    // `cmd` is accepted as an alias of `op` (curl-friendly shorthand used
    // throughout the docs: `{"cmd":"metrics"}`).
    let op = parsed
        .get("op")
        .or_else(|| parsed.get("cmd"))
        .and_then(Json::as_str);
    match op {
        Some("ping") => Json::Obj(vec![
            ("id".to_string(), id),
            ("ok".to_string(), Json::Bool(true)),
            ("pong".to_string(), Json::Bool(true)),
        ])
        .to_string(),
        Some("metrics") => metrics_response(service, id),
        Some("query") => match parse_query(&parsed) {
            Ok((request, want_paths)) => run_query(service, id, &request, want_paths),
            Err(message) => error_response(id, "bad_request", &message),
        },
        Some("update") => match parse_update(&parsed) {
            Ok(updates) => run_update(service, id, &updates),
            Err(message) => error_response(id, "bad_request", &message),
        },
        Some("status") => status_response(service, id),
        Some(other) => error_response(id, "bad_request", &format!("unknown op `{other}`")),
        None => error_response(id, "bad_request", "missing `op` (or `cmd`)"),
    }
}

fn node_list(value: &Json, what: &str) -> Result<Vec<NodeId>, String> {
    let arr = value
        .as_arr()
        .ok_or_else(|| format!("`{what}` must be an array"))?;
    if arr.len() > MAX_NODE_SET {
        return Err(format!("`{what}` has more than {MAX_NODE_SET} nodes"));
    }
    arr.iter()
        .map(|v| {
            v.as_u64()
                .and_then(|n| NodeId::try_from(n).ok())
                .ok_or_else(|| format!("`{what}` must contain node ids"))
        })
        .collect()
}

fn parse_query(req: &Json) -> Result<(QueryRequest, bool), String> {
    let algorithm = match req.get("algorithm").and_then(Json::as_str) {
        Some(name) => name.parse::<Algorithm>()?,
        None => Algorithm::IterBoundI,
    };
    let sources = node_list(req.get("sources").ok_or("missing `sources`")?, "sources")?;
    let targets = node_list(req.get("targets").ok_or("missing `targets`")?, "targets")?;
    let k = req
        .get("k")
        .ok_or("missing `k`")?
        .as_usize()
        .ok_or("`k` must be a non-negative integer")?;
    if k == 0 || k > MAX_K {
        return Err(format!("`k` must be in 1..={MAX_K}"));
    }
    let timeout_ms = match req.get("timeout_ms") {
        None | Some(Json::Null) => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("`timeout_ms` must be a non-negative integer")?,
        ),
    };
    let want_paths = req.get("paths").and_then(Json::as_bool).unwrap_or(false);
    Ok((
        QueryRequest {
            algorithm,
            sources,
            targets,
            k,
            timeout_ms,
        },
        want_paths,
    ))
}

/// Largest accepted update batch — a backstop mirroring [`MAX_NODE_SET`].
pub const MAX_UPDATE_EDGES: usize = 100_000;

fn parse_update(req: &Json) -> Result<Vec<WeightUpdate>, String> {
    let edges = req
        .get("edges")
        .ok_or("missing `edges`")?
        .as_arr()
        .ok_or("`edges` must be an array of [from,to,weight] triples")?;
    if edges.is_empty() {
        return Err("`edges` must not be empty".to_string());
    }
    if edges.len() > MAX_UPDATE_EDGES {
        return Err(format!("`edges` has more than {MAX_UPDATE_EDGES} entries"));
    }
    edges
        .iter()
        .map(|e| {
            let triple = e
                .as_arr()
                .filter(|t| t.len() == 3)
                .ok_or("each edge must be a [from,to,weight] triple")?;
            let node = |v: &Json, what: &str| {
                v.as_u64()
                    .and_then(|n| NodeId::try_from(n).ok())
                    .ok_or_else(|| format!("`{what}` must be a node id"))
            };
            Ok(WeightUpdate {
                from: node(&triple[0], "from")?,
                to: node(&triple[1], "to")?,
                weight: triple[2]
                    .as_u64()
                    .and_then(|w| Weight::try_from(w).ok())
                    .ok_or("`weight` must be a non-negative integer")?,
            })
        })
        .collect()
}

fn run_update(service: &KpjService, id: Json, updates: &[WeightUpdate]) -> String {
    match service.apply_update(updates) {
        Ok(outcome) => Json::Obj(vec![
            ("id".to_string(), id),
            ("ok".to_string(), Json::Bool(true)),
            ("epoch".to_string(), Json::from(outcome.epoch)),
            ("changed".to_string(), Json::from(outcome.changed as u64)),
            ("repair_us".to_string(), Json::from(outcome.repair_us)),
            (
                "affected_nodes".to_string(),
                Json::from(outcome.affected_nodes),
            ),
            (
                "cache_purged".to_string(),
                Json::from(outcome.cache_purged as u64),
            ),
        ])
        .to_string(),
        Err(e) => error_response(id, error_code(&e), &e.to_string()),
    }
}

fn run_query(service: &KpjService, id: Json, request: &QueryRequest, want_paths: bool) -> String {
    let started = Instant::now();
    match service.execute(request) {
        Ok(answer) => {
            // Server-side latency (execute only, no socket time) rides in
            // the envelope so clients can split network from compute.
            let server_us = started.elapsed().as_micros() as u64;
            let encode = Instant::now();
            // Splice the per-request envelope around the answer's memoized
            // body: a cache hit reuses the exact bytes rendered on the
            // miss, so no path data is re-encoded (or copied) per request.
            let body = answer.wire_body(want_paths);
            let mut out = String::with_capacity(body.len() + 48);
            out.push_str("{\"id\":");
            write!(out, "{id}").expect("writing to a String cannot fail");
            write!(out, ",\"ok\":true,\"server_us\":{server_us},")
                .expect("writing to a String cannot fail");
            out.push_str(body);
            out.push('}');
            service
                .metrics()
                .record_stage(request.algorithm, Stage::Encode, encode.elapsed());
            out
        }
        Err(e) => error_response(id, error_code(&e), &e.to_string()),
    }
}

fn metrics_response(service: &KpjService, id: Json) -> String {
    // Sampled gauges (epoch/cache occupancy) are refreshed per scrape,
    // not per query — the exposition below carries them.
    service.refresh_gauges();
    let s = service.snapshot();
    let mut prometheus = String::new();
    service.metrics().render_prometheus(&mut prometheus);
    Json::Obj(vec![
        ("id".to_string(), id),
        ("ok".to_string(), Json::Bool(true)),
        (
            "metrics".to_string(),
            Json::Obj(vec![
                ("queries".to_string(), Json::from(s.queries)),
                ("failures".to_string(), Json::from(s.failures)),
                ("rejected".to_string(), Json::from(s.rejected)),
                (
                    "deadline_exceeded".to_string(),
                    Json::from(s.deadline_exceeded),
                ),
                ("cache_hits".to_string(), Json::from(s.cache_hits)),
                ("cache_shared".to_string(), Json::from(s.cache_shared)),
                ("cache_misses".to_string(), Json::from(s.cache_misses)),
                ("paths_returned".to_string(), Json::from(s.paths_returned)),
                ("latency_mean_us".to_string(), Json::from(s.latency_mean_us)),
                ("latency_p50_us".to_string(), Json::from(s.latency_p50_us)),
                ("latency_p99_us".to_string(), Json::from(s.latency_p99_us)),
                ("latency_max_us".to_string(), Json::from(s.latency_max_us)),
                ("nodes_settled".to_string(), Json::from(s.nodes_settled)),
                ("edges_relaxed".to_string(), Json::from(s.edges_relaxed)),
                (
                    "sp_computations".to_string(),
                    Json::from(s.shortest_path_computations),
                ),
                ("testlb_calls".to_string(), Json::from(s.testlb_calls)),
                ("heap_pops".to_string(), Json::from(s.heap_pops)),
                ("lb_prunes".to_string(), Json::from(s.lb_prunes)),
                (
                    "subspaces_skipped".to_string(),
                    Json::from(s.subspaces_skipped),
                ),
                ("tau_updates".to_string(), Json::from(s.tau_updates)),
            ]),
        ),
        // The full (algorithm, stage) histogram matrix, ready to be
        // dropped into a Prometheus scrape or `kpj-cli --metrics`.
        ("prometheus".to_string(), Json::from(prometheus.as_str())),
    ])
    .to_string()
}

/// How many journal events ride in a status response.
const STATUS_EVENT_TAIL: usize = 32;

/// `i64` gauge readings carry through the exact-integer JSON path.
fn jint(v: i64) -> Json {
    Json::Int(v as i128)
}

fn status_response(service: &KpjService, id: Json) -> String {
    service.refresh_gauges();
    let metrics = service.metrics();
    let s = service.snapshot();
    let gauges = metrics.gauges();
    let journal = metrics.journal();
    let pool = service.pool();

    let read = |idx: usize| jint(gauges.get(idx));
    let epoch = Json::Obj(vec![
        ("current".to_string(), read(gauge::EPOCH_ID)),
        ("live".to_string(), read(gauge::LIVE_EPOCHS)),
        ("pins".to_string(), read(gauge::EPOCH_PINS)),
        ("repair_queue".to_string(), read(gauge::REPAIR_QUEUE)),
        ("swaps".to_string(), Json::from(s.epoch_swaps)),
    ]);
    let pool_obj = Json::Obj(vec![
        ("workers".to_string(), Json::from(pool.worker_count())),
        ("busy".to_string(), read(gauge::BUSY_WORKERS)),
        ("queue_depth".to_string(), read(gauge::QUEUE_DEPTH)),
        (
            "queue_peak".to_string(),
            jint(gauges.peak(gauge::QUEUE_DEPTH)),
        ),
        (
            "queue_capacity".to_string(),
            Json::from(pool.queue_capacity()),
        ),
        ("executed".to_string(), Json::from(pool.executed())),
        ("par_grants".to_string(), read(gauge::PAR_GRANTS)),
        ("rejected".to_string(), Json::from(s.rejected)),
    ]);
    let shards: Vec<Json> = service
        .cache()
        .map(|cache| cache.occupancy())
        .unwrap_or_default()
        .into_iter()
        .map(|(ready, pending)| Json::Arr(vec![Json::from(ready), Json::from(pending)]))
        .collect();
    let cache = Json::Obj(vec![
        ("entries".to_string(), read(gauge::CACHE_ENTRIES)),
        ("pending".to_string(), read(gauge::CACHE_WAITERS)),
        ("evictions".to_string(), read(gauge::CACHE_EVICTIONS)),
        ("hits".to_string(), Json::from(s.cache_hits)),
        ("shared".to_string(), Json::from(s.cache_shared)),
        ("misses".to_string(), Json::from(s.cache_misses)),
        ("shards".to_string(), Json::Arr(shards)),
    ]);
    let storage = Json::Obj(vec![
        ("mmap_bytes".to_string(), read(gauge::MMAP_BYTES)),
        ("expand_hops".to_string(), read(gauge::EXPAND_HOPS)),
    ]);
    let throughput = Json::Obj(vec![
        ("queries".to_string(), Json::from(s.queries)),
        ("failures".to_string(), Json::from(s.failures)),
        (
            "deadline_exceeded".to_string(),
            Json::from(s.deadline_exceeded),
        ),
        ("paths_returned".to_string(), Json::from(s.paths_returned)),
    ]);
    let latency = Json::Obj(vec![
        ("mean".to_string(), Json::from(s.latency_mean_us)),
        ("p50".to_string(), Json::from(s.latency_p50_us)),
        ("p99".to_string(), Json::from(s.latency_p99_us)),
        ("max".to_string(), Json::from(s.latency_max_us)),
        ("count".to_string(), Json::from(s.latency_count)),
    ]);
    let updates = Json::Obj(vec![
        ("epoch_swaps".to_string(), Json::from(s.epoch_swaps)),
        ("edges_updated".to_string(), Json::from(s.edges_updated)),
        ("repair_mean_us".to_string(), Json::from(s.repair_mean_us)),
        ("repair_max_us".to_string(), Json::from(s.repair_max_us)),
    ]);
    let gauge_obj = Json::Obj(
        (0..gauges.len())
            .map(|i| {
                (
                    gauges.name(i).to_string(),
                    Json::Obj(vec![
                        ("value".to_string(), jint(gauges.get(i))),
                        ("peak".to_string(), jint(gauges.peak(i))),
                    ]),
                )
            })
            .collect(),
    );
    let tail: Vec<Json> = journal
        .tail(STATUS_EVENT_TAIL)
        .into_iter()
        .map(|e| {
            let mut fields = vec![
                ("seq".to_string(), Json::from(e.seq)),
                ("at_us".to_string(), Json::from(e.at_us)),
                ("event".to_string(), Json::from(journal.kind_name(e.kind))),
            ];
            if let Some(kind) = journal.kinds().get(e.kind as usize) {
                for (field, value) in kind.fields.iter().zip(&e.args) {
                    if !field.is_empty() {
                        fields.push((field.to_string(), Json::from(*value)));
                    }
                }
            }
            Json::Obj(fields)
        })
        .collect();
    let events = Json::Obj(vec![
        ("recorded".to_string(), Json::from(journal.recorded())),
        ("dropped".to_string(), Json::from(journal.dropped())),
        ("tail".to_string(), Json::Arr(tail)),
    ]);
    Json::Obj(vec![
        ("id".to_string(), id),
        ("ok".to_string(), Json::Bool(true)),
        (
            "status".to_string(),
            Json::Obj(vec![
                ("uptime_s".to_string(), Json::from(s.uptime_s)),
                ("snapshot_seq".to_string(), Json::from(s.snapshot_seq)),
                ("epoch".to_string(), epoch),
                ("pool".to_string(), pool_obj),
                ("cache".to_string(), cache),
                ("storage".to_string(), storage),
                ("throughput".to_string(), throughput),
                ("latency_us".to_string(), latency),
                ("updates".to_string(), updates),
                ("gauges".to_string(), gauge_obj),
                ("events".to_string(), events),
            ]),
        ),
    ])
    .to_string()
}

/// Machine-readable error code for a [`ServiceError`].
pub fn error_code(e: &ServiceError) -> &'static str {
    match e {
        ServiceError::Overloaded => "overloaded",
        ServiceError::ShuttingDown => "shutting_down",
        ServiceError::Query(QueryError::DeadlineExceeded) => "deadline_exceeded",
        ServiceError::Query(_) => "bad_request",
        ServiceError::Update(_) => "bad_request",
        ServiceError::Internal(_) => "internal",
    }
}

fn error_response(id: Json, code: &str, message: &str) -> String {
    Json::Obj(vec![
        ("id".to_string(), id),
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::from(code)),
        ("message".to_string(), Json::from(message)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use crate::service::ServiceConfig;
    use kpj_graph::GraphBuilder;
    use std::sync::Arc;

    fn service() -> KpjService {
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(1, 2, 1).unwrap();
        b.add_bidirectional(0, 3, 2).unwrap();
        b.add_bidirectional(3, 2, 2).unwrap();
        let config = ServiceConfig {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 8,
                ..Default::default()
            },
            cache_capacity: 16,
            ..ServiceConfig::default()
        };
        KpjService::new(Arc::new(b.build()), None, config)
    }

    #[test]
    fn ping_echoes_id() {
        let svc = service();
        let resp = handle_line(&svc, r#"{"id":7,"op":"ping"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("pong").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn query_returns_ordered_lengths_and_paths() {
        let svc = service();
        let resp = handle_line(
            &svc,
            r#"{"id":1,"op":"query","algorithm":"da","sources":[0],"targets":[2],"k":2,"paths":true}"#,
        );
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        assert_eq!(v.get("count").unwrap().as_u64(), Some(2));
        let lengths: Vec<u64> = v
            .get("lengths")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(lengths, vec![2, 4]);
        let first = v.get("paths").unwrap().as_arr().unwrap()[0]
            .as_arr()
            .unwrap();
        let nodes: Vec<u64> = first.iter().filter_map(Json::as_u64).collect();
        assert_eq!(nodes, vec![0, 1, 2]);
        assert!(
            v.get("stats")
                .unwrap()
                .get("settled")
                .unwrap()
                .as_u64()
                .unwrap()
                > 0
        );
    }

    #[test]
    fn sidetrack_algorithm_is_served_and_labelled() {
        let svc = service();
        let resp = handle_line(
            &svc,
            r#"{"id":1,"op":"query","algorithm":"sidetrack","sources":[0],"targets":[2],"k":2,"paths":true}"#,
        );
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        let lengths: Vec<u64> = v
            .get("lengths")
            .unwrap()
            .as_arr()
            .unwrap()
            .iter()
            .filter_map(Json::as_u64)
            .collect();
        assert_eq!(lengths, vec![2, 4]);
        // The sidetrack-specific work counters travel the wire too.
        let stats = v.get("stats").unwrap();
        assert!(stats.get("sidetracks_scanned").unwrap().as_u64().unwrap() > 0);
        // Metrics label the new algorithm like any other.
        let m = Json::parse(&handle_line(&svc, r#"{"id":2,"op":"metrics"}"#)).unwrap();
        let prom = m.get("prometheus").unwrap().as_str().unwrap();
        assert!(prom.contains("kpj_stage_duration_seconds_bucket{algorithm=\"Sidetrack\""));
        let work = prom
            .lines()
            .find(|l| {
                l.starts_with(
                    "kpj_engine_work_total{algorithm=\"Sidetrack\",counter=\"sidetrack_splices\"}",
                )
            })
            .expect("splice counter series");
        let splices: u64 = work.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(splices > 0, "{work}");
    }

    #[test]
    fn unknown_algorithm_error_lists_every_valid_name() {
        let svc = service();
        let resp = handle_line(
            &svc,
            r#"{"id":1,"op":"query","algorithm":"quantum","sources":[0],"targets":[2],"k":1}"#,
        );
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{resp}");
        assert_eq!(v.get("error").unwrap().as_str(), Some("bad_request"));
        let message = v.get("message").unwrap().as_str().unwrap().to_string();
        for alg in Algorithm::ALL {
            assert!(
                message.contains(&alg.name().to_ascii_lowercase()),
                "error message misses `{}`: {message}",
                alg.name()
            );
        }
    }

    #[test]
    fn cache_hit_reuses_result_and_encoded_body() {
        let svc = service();
        let req = QueryRequest {
            algorithm: Algorithm::Da,
            sources: vec![0],
            targets: vec![2],
            k: 2,
            timeout_ms: None,
        };
        let first = svc.execute(&req).unwrap();
        let second = svc.execute(&req).unwrap();
        // The hit shares the computed result — no KpjResult clone…
        assert!(Arc::ptr_eq(&first, &second), "cache hit cloned the result");
        // …and the JSON body is rendered once and interned: both calls
        // return the very same string (pointer equality), so serving a hit
        // copies no path data into an encoder either.
        assert!(
            std::ptr::eq(first.wire_body(true), second.wire_body(true)),
            "cache hit re-encoded the body"
        );
        assert_eq!(svc.snapshot().cache_hits, 1);

        // The spliced responses differ only in the per-request envelope
        // (id + measured server_us); the shared body bytes are identical.
        let line = |id: u32| {
            format!(
                "{{\"id\":{id},\"op\":\"query\",\"algorithm\":\"da\",\"sources\":[0],\"targets\":[2],\"k\":2,\"paths\":true}}"
            )
        };
        let scrub = |resp: &str| {
            let start =
                resp.find("\"server_us\":").expect("server_us present") + "\"server_us\":".len();
            let digits = resp[start..]
                .find(|c: char| !c.is_ascii_digit())
                .expect("terminated number");
            format!("{}0{}", &resp[..start], &resp[start + digits..])
        };
        let a = handle_line(&svc, &line(41));
        let b = handle_line(&svc, &line(42));
        assert_eq!(scrub(&a).replacen("\"id\":41", "\"id\":42", 1), scrub(&b));
    }

    #[test]
    fn malformed_requests_get_bad_request() {
        let svc = service();
        for (line, why) in [
            ("this is not json", "parse failure"),
            (r#"{"id":1}"#, "missing op"),
            (r#"{"id":1,"op":"nope"}"#, "unknown op"),
            (
                r#"{"id":1,"op":"query","targets":[2],"k":1}"#,
                "missing sources",
            ),
            (
                r#"{"id":1,"op":"query","sources":[0],"targets":[2],"k":0}"#,
                "k = 0",
            ),
            (
                r#"{"id":1,"op":"query","sources":[0],"targets":[2],"k":99999999}"#,
                "k too big",
            ),
            (
                r#"{"id":1,"op":"query","algorithm":"quantum","sources":[0],"targets":[2],"k":1}"#,
                "bad algorithm",
            ),
            (
                r#"{"id":1,"op":"query","sources":[0.5],"targets":[2],"k":1}"#,
                "fractional node id",
            ),
        ] {
            let v = Json::parse(&handle_line(&svc, line)).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{why}");
            assert_eq!(
                v.get("error").unwrap().as_str(),
                Some("bad_request"),
                "{why}"
            );
        }
    }

    #[test]
    fn large_ids_echo_exactly() {
        // 2^53 + 1 is silently rounded by any f64 detour; the id must
        // come back bit-exact so pipelining clients can match responses.
        let svc = service();
        let resp = handle_line(&svc, r#"{"id":9007199254740993,"op":"ping"}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(9_007_199_254_740_993));
        assert!(resp.contains("9007199254740993"), "{resp}");
        assert!(!resp.contains("9007199254740992"), "rounded id: {resp}");
    }

    #[test]
    fn float_syntax_integers_are_rejected() {
        // `1e3` etc. used to sneak through the f64 number path for ids,
        // `k`, and timeouts. Integer fields want integer syntax.
        let svc = service();
        for (line, why) in [
            (
                r#"{"id":1,"op":"query","sources":[0],"targets":[2],"k":1e3}"#,
                "k in exponent notation",
            ),
            (
                r#"{"id":1,"op":"query","sources":[1e1],"targets":[2],"k":1}"#,
                "source id in exponent notation",
            ),
            (
                r#"{"id":1,"op":"query","sources":[2.0],"targets":[2],"k":1}"#,
                "float-syntax source id",
            ),
            (
                r#"{"id":1,"op":"query","sources":[0],"targets":[2],"k":1,"timeout_ms":1.5}"#,
                "fractional timeout",
            ),
        ] {
            let v = Json::parse(&handle_line(&svc, line)).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{why}");
            assert_eq!(
                v.get("error").unwrap().as_str(),
                Some("bad_request"),
                "{why}"
            );
        }
    }

    #[test]
    fn out_of_range_node_is_bad_request() {
        let svc = service();
        let resp = handle_line(
            &svc,
            r#"{"id":1,"op":"query","sources":[99],"targets":[2],"k":1}"#,
        );
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("bad_request"));
    }

    #[test]
    fn zero_timeout_reports_deadline_exceeded() {
        let svc = service();
        let resp = handle_line(
            &svc,
            r#"{"id":4,"op":"query","sources":[0],"targets":[2],"k":2,"timeout_ms":0}"#,
        );
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("error").unwrap().as_str(), Some("deadline_exceeded"));
        // The worker scratch survives: the same query without a timeout
        // succeeds afterwards.
        let ok = handle_line(
            &svc,
            r#"{"id":5,"op":"query","sources":[0],"targets":[2],"k":2}"#,
        );
        let v = Json::parse(&ok).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{ok}");
    }

    #[test]
    fn update_publishes_a_new_epoch_and_later_queries_see_it() {
        let svc = service();
        let lengths = |resp: &str| -> Vec<u64> {
            let v = Json::parse(resp).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{resp}");
            v.get("lengths")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .filter_map(Json::as_u64)
                .collect()
        };
        let query = r#"{"id":1,"op":"query","sources":[0],"targets":[2],"k":1}"#;
        assert_eq!(lengths(&handle_line(&svc, query)), vec![2]);

        // Raise the short route; the batch publishes epoch 1.
        let resp = handle_line(&svc, r#"{"id":2,"op":"update","edges":[[0,1,50]]}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("changed").unwrap().as_u64(), Some(1));

        // The identical query must NOT be served from the epoch-0 cache
        // entry: the key is epoch-scoped, so it recomputes on the new
        // graph and the long route wins.
        assert_eq!(lengths(&handle_line(&svc, query)), vec![4]);
        // ...and caches under epoch 1: a repeat is a hit.
        assert_eq!(lengths(&handle_line(&svc, query)), vec![4]);
        assert_eq!(svc.snapshot().cache_hits, 1);
        assert_eq!(svc.snapshot().epoch_swaps, 1);

        // Re-sending the same weight is a no-op: no new epoch.
        let resp = handle_line(&svc, r#"{"id":3,"op":"update","edges":[[0,1,50]]}"#);
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("changed").unwrap().as_u64(), Some(0));

        // A non-existent edge rejects the whole batch and changes nothing.
        for (line, why) in [
            (
                r#"{"id":4,"op":"update","edges":[[0,2,5]]}"#,
                "no such edge",
            ),
            (r#"{"id":5,"op":"update","edges":[[99,0,5]]}"#, "bad node"),
            (r#"{"id":6,"op":"update","edges":[]}"#, "empty batch"),
            (r#"{"id":7,"op":"update","edges":[[0,1]]}"#, "not a triple"),
            (r#"{"id":8,"op":"update"}"#, "missing edges"),
        ] {
            let v = Json::parse(&handle_line(&svc, line)).unwrap();
            assert_eq!(v.get("ok").unwrap().as_bool(), Some(false), "{why}");
            assert_eq!(
                v.get("error").unwrap().as_str(),
                Some("bad_request"),
                "{why}"
            );
        }
        assert_eq!(lengths(&handle_line(&svc, query)), vec![4]);
    }

    #[test]
    fn status_reports_gauges_and_event_tail() {
        let svc = service();
        let query = r#"{"id":1,"op":"query","sources":[0],"targets":[2],"k":2}"#;
        handle_line(&svc, query);
        handle_line(&svc, r#"{"id":2,"op":"update","edges":[[0,1,50]]}"#);
        handle_line(&svc, query);
        let v = Json::parse(&handle_line(&svc, r#"{"id":3,"op":"status"}"#)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let status = v.get("status").unwrap();
        let epoch = status.get("epoch").unwrap();
        assert_eq!(epoch.get("current").unwrap().as_u64(), Some(1));
        assert_eq!(epoch.get("swaps").unwrap().as_u64(), Some(1));
        let pool = status.get("pool").unwrap();
        assert_eq!(pool.get("workers").unwrap().as_u64(), Some(1));
        assert_eq!(pool.get("queue_depth").unwrap().as_u64(), Some(0));
        assert_eq!(pool.get("executed").unwrap().as_u64(), Some(2));
        // One entry survives on the current epoch (the post-update query).
        let cache = status.get("cache").unwrap();
        assert_eq!(cache.get("entries").unwrap().as_u64(), Some(1));
        assert_eq!(cache.get("shards").unwrap().as_arr().unwrap().len(), 16);
        assert_eq!(
            status
                .get("throughput")
                .unwrap()
                .get("queries")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        // The update left a publish + applied pair in the journal tail.
        let events = status.get("events").unwrap();
        assert!(events.get("recorded").unwrap().as_u64().unwrap() >= 2);
        let tail = events.get("tail").unwrap().as_arr().unwrap();
        let names: Vec<&str> = tail
            .iter()
            .filter_map(|e| e.get("event").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"epoch_published"), "{names:?}");
        assert!(names.contains(&"update_applied"), "{names:?}");
        // Every gauge appears with value+peak.
        let gauges = status.get("gauges").unwrap();
        let live = gauges.get("live_epochs").unwrap();
        assert!(live.get("value").unwrap().as_u64().unwrap() >= 1);
        assert!(live.get("peak").unwrap().as_u64().unwrap() >= 1);
        // Repeating status bumps the snapshot sequence.
        let seq1 = status.get("snapshot_seq").unwrap().as_u64().unwrap();
        let v2 = Json::parse(&handle_line(&svc, r#"{"id":4,"op":"status"}"#)).unwrap();
        let seq2 = v2
            .get("status")
            .unwrap()
            .get("snapshot_seq")
            .unwrap()
            .as_u64()
            .unwrap();
        assert_eq!(seq2, seq1 + 1);
    }

    #[test]
    fn deadline_expiry_lands_in_the_journal() {
        let svc = service();
        handle_line(
            &svc,
            r#"{"id":1,"op":"query","sources":[0],"targets":[2],"k":2,"timeout_ms":0}"#,
        );
        let v = Json::parse(&handle_line(&svc, r#"{"id":2,"op":"status"}"#)).unwrap();
        let tail = v
            .get("status")
            .unwrap()
            .get("events")
            .unwrap()
            .get("tail")
            .unwrap()
            .as_arr()
            .unwrap();
        let expiry = tail
            .iter()
            .find(|e| e.get("event").and_then(Json::as_str) == Some("deadline_expired"))
            .expect("deadline_expired event in tail");
        assert_eq!(expiry.get("k").unwrap().as_u64(), Some(2));
        assert_eq!(expiry.get("timeout_ms").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn metrics_roundtrip() {
        let svc = service();
        handle_line(
            &svc,
            r#"{"id":1,"op":"query","sources":[0],"targets":[2],"k":1}"#,
        );
        handle_line(
            &svc,
            r#"{"id":2,"op":"query","sources":[0],"targets":[2],"k":1}"#,
        );
        // `cmd` is an accepted alias of `op`.
        let v = Json::parse(&handle_line(&svc, r#"{"id":9,"cmd":"metrics"}"#)).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let m = v.get("metrics").unwrap();
        assert_eq!(m.get("queries").unwrap().as_u64(), Some(2));
        assert_eq!(m.get("cache_hits").unwrap().as_u64(), Some(1));
        assert_eq!(m.get("cache_misses").unwrap().as_u64(), Some(1));
        assert!(m.get("heap_pops").unwrap().as_u64().unwrap() > 0);
        // The exposition block is a valid-looking Prometheus text dump
        // covering the default algorithm's stage histograms.
        let prom = v.get("prometheus").unwrap().as_str().unwrap();
        assert!(prom.contains("kpj_stage_duration_seconds_bucket{algorithm=\"IterBoundI\""));
        assert!(
            prom.contains("kpj_engine_work_total{algorithm=\"IterBoundI\",counter=\"heap_pops\"}")
        );
        assert!(prom.contains("kpj_service_events_total{event=\"queries\"} 2"));
    }
}
