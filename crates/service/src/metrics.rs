//! Aggregated serving metrics: lock-free counters, per-(algorithm, stage)
//! latency histograms in a [`StageRegistry`], and per-algorithm engine
//! work counters mirroring [`QueryStats`]. One [`Metrics`] instance is
//! shared (via `Arc`) by the pool workers, the cache, and the wire layer;
//! reads take a consistent-enough [`MetricsSnapshot`] without stopping the
//! world, and [`Metrics::render_prometheus`] exposes the full matrix in
//! the Prometheus text format.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use kpj_core::{Algorithm, QueryStats};
pub use kpj_obs::Histogram;
use kpj_obs::{EventJournal, EventKind, GaugeSet, Stage, StageRegistry, MAX_EVENT_ARGS};

/// Indices into [`QueryStats::FIELD_NAMES`] for the counters surfaced in
/// [`MetricsSnapshot`]. Kept next to a compile-time length check so a
/// reordering of the field table cannot silently skew the snapshot.
mod field {
    pub const SP: usize = 0;
    pub const LB: usize = 1;
    pub const TESTLB: usize = 2;
    pub const SETTLED: usize = 4;
    pub const RELAXED: usize = 5;
    pub const SUBSPACES: usize = 7;
    pub const HEAP_POPS: usize = 8;
    pub const LB_PRUNES: usize = 9;
    pub const SUBSPACES_SKIPPED: usize = 10;
    pub const TAU_UPDATES: usize = 11;
}

const _: () = {
    assert!(QueryStats::FIELD_NAMES.len() == 18);
};

/// Indices into the service's [`GaugeSet`] — the system-state gauges
/// threaded through the epoch lifecycle, pool admission, cache shards
/// and storage layer. Kept in one table (next to [`GAUGE_NAMES`]) so a
/// hot-path gauge update is a single indexed atomic store.
pub mod gauge {
    /// Epochs not yet retired (1 when idle).
    pub const LIVE_EPOCHS: usize = 0;
    /// Id of the currently serving epoch.
    pub const EPOCH_ID: usize = 1;
    /// Queries currently pinning the serving epoch (sampled).
    pub const EPOCH_PINS: usize = 2;
    /// How long the most recent epoch shed lagged its supersession, µs
    /// (the peak is the worst shed latency seen).
    pub const SHED_WAIT_US: usize = 3;
    /// Update batches waiting for or holding the updater lock.
    pub const REPAIR_QUEUE: usize = 4;
    /// Jobs sitting in the admission queue right now.
    pub const QUEUE_DEPTH: usize = 5;
    /// Workers currently executing a query.
    pub const BUSY_WORKERS: usize = 6;
    /// Intra-query parallel threads granted and outstanding.
    pub const PAR_GRANTS: usize = 7;
    /// Completed entries resident across all cache shards (sampled).
    pub const CACHE_ENTRIES: usize = 8;
    /// Single-flight slots other requests may be waiting on (sampled).
    pub const CACHE_WAITERS: usize = 9;
    /// Ready entries evicted by LRU pressure (monotone).
    pub const CACHE_EVICTIONS: usize = 10;
    /// Bytes served zero-copy from an mmap'd store file (0 = heap).
    pub const MMAP_BYTES: usize = 11;
    /// Interior nodes re-expanded into the last query's answer paths
    /// (the peak is the heaviest expansion seen). 0 without a reduction.
    pub const EXPAND_HOPS: usize = 12;
    /// Number of gauges.
    pub const COUNT: usize = 13;
}

/// Gauge names, indexed by the [`gauge`] constants.
pub const GAUGE_NAMES: [&str; gauge::COUNT] = [
    "live_epochs",
    "epoch_id",
    "epoch_pins",
    "shed_wait_us",
    "repair_queue",
    "queue_depth",
    "busy_workers",
    "par_grants",
    "cache_entries",
    "cache_waiters",
    "cache_evictions",
    "mmap_bytes",
    "expand_hops",
];

/// Kind ids for the service's [`EventJournal`] taxonomy. Argument
/// meanings live in [`EVENT_KINDS`]; both tables are index-aligned.
pub mod event {
    /// A weight-update batch published a new epoch:
    /// `{epoch, changed, affected_nodes, cache_purged}`.
    pub const EPOCH_PUBLISHED: u16 = 0;
    /// Timing breakdown of the same batch:
    /// `{epoch, translate_us, repair_us, purge_us}`.
    pub const UPDATE_APPLIED: u16 = 1;
    /// An idle worker dropped a superseded epoch: `{epoch, wait_us}`.
    pub const EPOCH_SHED: u16 = 2;
    /// A shed lagged its supersession past the slow threshold:
    /// `{epoch, wait_us}`.
    pub const SLOW_SHED: u16 = 3;
    /// Admission control rejected a request: `{queue_depth, capacity}`.
    pub const ADMISSION_REJECT: u16 = 4;
    /// A query failed its deadline: `{algorithm, k, timeout_ms}`.
    pub const DEADLINE_EXPIRED: u16 = 5;
    /// The flight recorder dumped a slow query:
    /// `{algorithm, exec_us, written_total}`.
    pub const FLIGHT_DUMP: u16 = 6;
}

/// The service's event schema, indexed by the [`event`] constants.
pub const EVENT_KINDS: [EventKind; 7] = [
    EventKind {
        name: "epoch_published",
        fields: ["epoch", "changed", "affected_nodes", "cache_purged"],
    },
    EventKind {
        name: "update_applied",
        fields: ["epoch", "translate_us", "repair_us", "purge_us"],
    },
    EventKind {
        name: "epoch_shed",
        fields: ["epoch", "wait_us", "", ""],
    },
    EventKind {
        name: "slow_shed",
        fields: ["epoch", "wait_us", "", ""],
    },
    EventKind {
        name: "admission_reject",
        fields: ["queue_depth", "capacity", "", ""],
    },
    EventKind {
        name: "deadline_expired",
        fields: ["algorithm", "k", "timeout_ms", ""],
    },
    EventKind {
        name: "flight_dump",
        fields: ["algorithm", "exec_us", "written_total", ""],
    },
];

/// Events retained by the in-memory journal before overwrite.
pub const JOURNAL_CAPACITY: usize = 256;

/// Sheds lagging their supersession by more than this are journalled as
/// [`event::SLOW_SHED`] — an idle worker kept a retired graph alive.
pub const SLOW_SHED_US: u64 = 100_000;

/// Dense index of an algorithm in [`Algorithm::ALL`] — the row index of
/// its registry cells.
pub fn algorithm_index(alg: Algorithm) -> usize {
    Algorithm::ALL
        .iter()
        .position(|&a| a == alg)
        .expect("Algorithm::ALL is exhaustive")
}

/// Shared serving-layer metrics registry.
pub struct Metrics {
    queries: AtomicU64,
    failures: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    cache_hits: AtomicU64,
    cache_shared: AtomicU64,
    cache_misses: AtomicU64,
    paths_returned: AtomicU64,
    /// Weight-update batches published as new graph epochs.
    epoch_swaps: AtomicU64,
    /// Distinct edges whose weight changed across all published batches.
    edges_updated: AtomicU64,
    /// End-to-end latency over every query regardless of algorithm (the
    /// per-algorithm split lives in `registry` under [`Stage::Total`]).
    latency: Histogram,
    /// Time spent repairing landmark tables per published batch.
    repair: Histogram,
    /// Per-(algorithm, stage) histograms + per-algorithm work counters.
    registry: StageRegistry,
    /// System-state gauges ([`gauge`] indices).
    gauges: GaugeSet,
    /// Structured event ring ([`event`] kinds).
    journal: EventJournal,
    /// Construction instant — the monotonic base for `uptime_s`, so
    /// scrapers can detect a restart between scrapes.
    started: Instant,
    /// Bumped per [`snapshot`](Metrics::snapshot), so two snapshots with
    /// identical counters are still distinguishable.
    snapshot_seq: AtomicU64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, all-zero registry with one row per [`Algorithm::ALL`] entry
    /// and one work counter per [`QueryStats::FIELD_NAMES`] entry.
    pub fn new() -> Metrics {
        Metrics {
            queries: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_shared: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            paths_returned: AtomicU64::new(0),
            epoch_swaps: AtomicU64::new(0),
            edges_updated: AtomicU64::new(0),
            latency: Histogram::default(),
            repair: Histogram::default(),
            registry: StageRegistry::new(
                Algorithm::ALL.iter().map(|a| a.name()).collect(),
                QueryStats::FIELD_NAMES.to_vec(),
            ),
            gauges: GaugeSet::new(GAUGE_NAMES.to_vec()),
            journal: EventJournal::new(JOURNAL_CAPACITY, EVENT_KINDS.to_vec()),
            started: Instant::now(),
            snapshot_seq: AtomicU64::new(0),
        }
    }

    /// The system-state gauges (see the [`gauge`] index constants).
    pub fn gauges(&self) -> &GaugeSet {
        &self.gauges
    }

    /// The structured event journal (see the [`event`] kind constants).
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Record one structured event. Allocation-free — safe anywhere on
    /// the hot path.
    pub fn record_event(&self, kind: u16, args: [u64; MAX_EVENT_ARGS]) {
        self.journal.record(kind, args);
    }

    /// Whole seconds since this registry (in practice: the server) was
    /// constructed.
    pub fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The per-(algorithm, stage) registry.
    pub fn registry(&self) -> &StageRegistry {
        &self.registry
    }

    /// Record a completed query (success or engine failure) and its
    /// end-to-end latency as observed by the service.
    pub fn record_query(&self, latency: Duration, ok: bool, paths: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        self.paths_returned.fetch_add(paths, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Record one stage duration for an algorithm.
    pub fn record_stage(&self, alg: Algorithm, stage: Stage, latency: Duration) {
        self.registry.record(algorithm_index(alg), stage, latency);
    }

    /// Record an admission-control rejection (queue full).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a query that failed its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache hit served from a completed entry.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that piggybacked on an in-flight computation.
    pub fn record_cache_shared(&self) {
        self.cache_shared.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache miss (the request will compute).
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one query's engine-side stats into that algorithm's work
    /// counters.
    pub fn absorb_stats(&self, alg: Algorithm, s: &QueryStats) {
        self.registry
            .add_counters(algorithm_index(alg), &s.field_values());
    }

    /// Record a published weight-update batch: how many distinct edges it
    /// touched and how long the landmark repair took (zero duration when
    /// the service runs without landmarks).
    pub fn record_update(&self, edges: u64, repair: Duration) {
        self.epoch_swaps.fetch_add(1, Ordering::Relaxed);
        self.edges_updated.fetch_add(edges, Ordering::Relaxed);
        self.repair.record(repair);
    }

    /// The landmark-repair latency histogram.
    pub fn repair(&self) -> &Histogram {
        &self.repair
    }

    /// The end-to-end latency histogram (e.g. for extra quantiles).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Render every metric in the Prometheus text exposition format: the
    /// full (algorithm, stage) histogram matrix, the per-algorithm work
    /// counters, and the service-level event counters.
    pub fn render_prometheus(&self, out: &mut String) {
        self.registry.render_prometheus(out);
        out.push_str(
            "# HELP kpj_service_events_total Service-level request outcomes.\n\
             # TYPE kpj_service_events_total counter\n",
        );
        for (event, value) in [
            ("queries", self.queries.load(Ordering::Relaxed)),
            ("failures", self.failures.load(Ordering::Relaxed)),
            ("rejected", self.rejected.load(Ordering::Relaxed)),
            (
                "deadline_exceeded",
                self.deadline_exceeded.load(Ordering::Relaxed),
            ),
            ("cache_hits", self.cache_hits.load(Ordering::Relaxed)),
            ("cache_shared", self.cache_shared.load(Ordering::Relaxed)),
            ("cache_misses", self.cache_misses.load(Ordering::Relaxed)),
            (
                "paths_returned",
                self.paths_returned.load(Ordering::Relaxed),
            ),
            ("epoch_swaps", self.epoch_swaps.load(Ordering::Relaxed)),
            ("edges_updated", self.edges_updated.load(Ordering::Relaxed)),
        ] {
            let _ = writeln!(out, "kpj_service_events_total{{event=\"{event}\"}} {value}");
        }
        out.push_str(
            "# HELP kpj_landmark_repair_us Landmark repair time per published update batch.\n\
             # TYPE kpj_landmark_repair_us gauge\n",
        );
        for (stat, value) in [
            ("count", self.repair.count()),
            ("mean", self.repair.mean_us()),
            ("max", self.repair.max_us()),
        ] {
            let _ = writeln!(out, "kpj_landmark_repair_us{{stat=\"{stat}\"}} {value}");
        }
        out.push_str(
            "# HELP kpj_uptime_seconds Seconds since the server started; a reset means a restart.\n\
             # TYPE kpj_uptime_seconds gauge\n",
        );
        let _ = writeln!(out, "kpj_uptime_seconds {}", self.uptime_s());
        out.push_str(
            "# HELP kpj_snapshot_seq Snapshots taken since start; resets with the process.\n\
             # TYPE kpj_snapshot_seq counter\n",
        );
        let _ = writeln!(
            out,
            "kpj_snapshot_seq {}",
            self.snapshot_seq.load(Ordering::Relaxed)
        );
        self.gauges.render_prometheus(
            "kpj_system_gauge",
            "Live system state (current value and high-water mark per gauge).",
            out,
        );
        out.push_str(
            "# HELP kpj_journal_events_total Structured events recorded to / dropped from the in-memory journal.\n\
             # TYPE kpj_journal_events_total counter\n",
        );
        for (outcome, value) in [
            ("recorded", self.journal.recorded()),
            ("dropped", self.journal.dropped()),
        ] {
            let _ = writeln!(
                out,
                "kpj_journal_events_total{{outcome=\"{outcome}\"}} {value}"
            );
        }
    }

    /// Take a point-in-time snapshot. Counters are read individually with
    /// relaxed ordering; totals may be off by in-flight updates, which is
    /// fine for monitoring. Work counters are summed across algorithms.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            uptime_s: self.uptime_s(),
            snapshot_seq: self.snapshot_seq.fetch_add(1, Ordering::Relaxed) + 1,
            queries: self.queries.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_shared: self.cache_shared.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            paths_returned: self.paths_returned.load(Ordering::Relaxed),
            epoch_swaps: self.epoch_swaps.load(Ordering::Relaxed),
            edges_updated: self.edges_updated.load(Ordering::Relaxed),
            repair_mean_us: self.repair.mean_us(),
            repair_max_us: self.repair.max_us(),
            latency_count: self.latency.count(),
            latency_mean_us: self.latency.mean_us(),
            latency_p50_us: self.latency.quantile_us(0.50).unwrap_or(0),
            latency_p99_us: self.latency.quantile_us(0.99).unwrap_or(0),
            latency_max_us: self.latency.max_us(),
            shortest_path_computations: self.registry.counter_total(field::SP),
            lower_bound_computations: self.registry.counter_total(field::LB),
            testlb_calls: self.registry.counter_total(field::TESTLB),
            nodes_settled: self.registry.counter_total(field::SETTLED),
            edges_relaxed: self.registry.counter_total(field::RELAXED),
            subspaces_created: self.registry.counter_total(field::SUBSPACES),
            heap_pops: self.registry.counter_total(field::HEAP_POPS),
            lb_prunes: self.registry.counter_total(field::LB_PRUNES),
            subspaces_skipped: self.registry.counter_total(field::SUBSPACES_SKIPPED),
            tau_updates: self.registry.counter_total(field::TAU_UPDATES),
        }
    }
}

/// Point-in-time copy of every served metric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Whole seconds the server has been up. Monotonic per process: a
    /// scraper seeing this shrink knows the server restarted (and every
    /// counter below reset) between scrapes.
    pub uptime_s: u64,
    /// 1-based sequence number of this snapshot. Also resets with the
    /// process, so `(uptime_s, snapshot_seq)` orders snapshots across
    /// restarts where raw counters would silently rewind.
    pub snapshot_seq: u64,
    /// Queries that ran to completion (including engine failures).
    pub queries: u64,
    /// Completed queries that returned an error.
    pub failures: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Queries that exceeded their deadline.
    pub deadline_exceeded: u64,
    /// Cache hits on completed entries.
    pub cache_hits: u64,
    /// Requests that joined an in-flight identical query.
    pub cache_shared: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Total paths returned to clients.
    pub paths_returned: u64,
    /// Weight-update batches published as new graph epochs.
    pub epoch_swaps: u64,
    /// Distinct edges changed across all published batches.
    pub edges_updated: u64,
    /// Mean landmark-repair time per published batch, µs.
    pub repair_mean_us: u64,
    /// Worst landmark-repair time, µs.
    pub repair_max_us: u64,
    /// Latency observations recorded.
    pub latency_count: u64,
    /// Mean end-to-end latency, µs.
    pub latency_mean_us: u64,
    /// Approximate median latency, µs.
    pub latency_p50_us: u64,
    /// Approximate 99th-percentile latency, µs.
    pub latency_p99_us: u64,
    /// Worst observed latency, µs.
    pub latency_max_us: u64,
    /// Summed engine stat: shortest-path computations.
    pub shortest_path_computations: u64,
    /// Summed engine stat: lower-bound computations.
    pub lower_bound_computations: u64,
    /// Summed engine stat: `TestLB` invocations.
    pub testlb_calls: u64,
    /// Summed engine stat: nodes settled.
    pub nodes_settled: u64,
    /// Summed engine stat: edges relaxed.
    pub edges_relaxed: u64,
    /// Summed engine stat: subspaces created.
    pub subspaces_created: u64,
    /// Summed engine stat: heap pops across every priority queue.
    pub heap_pops: u64,
    /// Summed engine stat: frontier entries discarded by a lower bound.
    pub lb_prunes: u64,
    /// Summed engine stat: subspaces dropped without a search.
    pub subspaces_skipped: u64,
    /// Summed engine stat: τ-tightening rounds.
    pub tau_updates: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "uptime_s={} snapshot_seq={}",
            self.uptime_s, self.snapshot_seq
        )?;
        writeln!(
            f,
            "queries={} failures={} rejected={} deadline_exceeded={}",
            self.queries, self.failures, self.rejected, self.deadline_exceeded
        )?;
        writeln!(
            f,
            "cache: hits={} shared={} misses={}",
            self.cache_hits, self.cache_shared, self.cache_misses
        )?;
        writeln!(
            f,
            "updates: epoch_swaps={} edges_updated={} repair_us: mean={} max={}",
            self.epoch_swaps, self.edges_updated, self.repair_mean_us, self.repair_max_us
        )?;
        writeln!(
            f,
            "latency_us: mean={} p50={} p99={} max={} (n={})",
            self.latency_mean_us,
            self.latency_p50_us,
            self.latency_p99_us,
            self.latency_max_us,
            self.latency_count
        )?;
        write!(
            f,
            "engine: sp={} lb={} testlb={} settled={} relaxed={} subspaces={} \
             heap_pops={} lb_prunes={} subspaces_skipped={} tau_updates={}",
            self.shortest_path_computations,
            self.lower_bound_computations,
            self.testlb_calls,
            self.nodes_settled,
            self.edges_relaxed,
            self.subspaces_created,
            self.heap_pops,
            self.lb_prunes,
            self.subspaces_skipped,
            self.tau_updates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_index_matches_registry_rows() {
        let m = Metrics::new();
        for (i, alg) in Algorithm::ALL.into_iter().enumerate() {
            assert_eq!(algorithm_index(alg), i);
            assert_eq!(m.registry().algorithms()[i], alg.name());
        }
        assert_eq!(m.registry().counter_names(), QueryStats::FIELD_NAMES);
    }

    #[test]
    fn snapshot_reflects_recorded_events() {
        let m = Metrics::new();
        m.record_query(Duration::from_micros(10), true, 20);
        m.record_query(Duration::from_millis(2), false, 0);
        m.record_rejected();
        m.record_deadline_exceeded();
        m.record_cache_hit();
        m.record_cache_shared();
        m.record_cache_miss();
        let stats = QueryStats {
            nodes_settled: 7,
            shortest_path_computations: 3,
            heap_pops: 11,
            subspaces_skipped: 2,
            ..Default::default()
        };
        m.absorb_stats(Algorithm::Da, &stats);
        m.absorb_stats(Algorithm::IterBoundI, &stats);
        let s = m.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.failures, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_shared, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.paths_returned, 20);
        assert_eq!(s.latency_count, 2);
        assert_eq!(s.nodes_settled, 14);
        assert_eq!(s.shortest_path_computations, 6);
        assert_eq!(s.heap_pops, 22);
        assert_eq!(s.subspaces_skipped, 4);
        assert!(s.latency_p99_us >= 2000);
        // The per-algorithm split is preserved underneath the totals.
        let da = algorithm_index(Algorithm::Da);
        assert_eq!(m.registry().counter(da, field::HEAP_POPS), 11);
        let text = s.to_string();
        assert!(text.contains("queries=2"));
        assert!(text.contains("heap_pops=22"));
    }

    #[test]
    fn stage_recording_lands_in_the_right_cell() {
        let m = Metrics::new();
        m.record_stage(
            Algorithm::BestFirst,
            Stage::QueueWait,
            Duration::from_micros(30),
        );
        let idx = algorithm_index(Algorithm::BestFirst);
        assert_eq!(m.registry().histogram(idx, Stage::QueueWait).count(), 1);
        assert_eq!(m.registry().histogram(idx, Stage::Total).count(), 0);
    }

    #[test]
    fn prometheus_exposition_covers_service_events() {
        let m = Metrics::new();
        m.record_query(Duration::from_micros(5), true, 1);
        m.record_cache_miss();
        let mut text = String::new();
        m.render_prometheus(&mut text);
        assert!(text.contains("kpj_service_events_total{event=\"queries\"} 1"));
        assert!(text.contains("kpj_service_events_total{event=\"cache_misses\"} 1"));
        assert!(text.contains("kpj_stage_duration_seconds_bucket{algorithm=\"DA\""));
    }
}
