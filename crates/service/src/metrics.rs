//! Aggregated serving metrics: lock-free counters, per-(algorithm, stage)
//! latency histograms in a [`StageRegistry`], and per-algorithm engine
//! work counters mirroring [`QueryStats`]. One [`Metrics`] instance is
//! shared (via `Arc`) by the pool workers, the cache, and the wire layer;
//! reads take a consistent-enough [`MetricsSnapshot`] without stopping the
//! world, and [`Metrics::render_prometheus`] exposes the full matrix in
//! the Prometheus text format.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use kpj_core::{Algorithm, QueryStats};
pub use kpj_obs::Histogram;
use kpj_obs::{Stage, StageRegistry};

/// Indices into [`QueryStats::FIELD_NAMES`] for the counters surfaced in
/// [`MetricsSnapshot`]. Kept next to a compile-time length check so a
/// reordering of the field table cannot silently skew the snapshot.
mod field {
    pub const SP: usize = 0;
    pub const LB: usize = 1;
    pub const TESTLB: usize = 2;
    pub const SETTLED: usize = 4;
    pub const RELAXED: usize = 5;
    pub const SUBSPACES: usize = 7;
    pub const HEAP_POPS: usize = 8;
    pub const LB_PRUNES: usize = 9;
    pub const SUBSPACES_SKIPPED: usize = 10;
    pub const TAU_UPDATES: usize = 11;
}

const _: () = {
    assert!(QueryStats::FIELD_NAMES.len() == 15);
};

/// Dense index of an algorithm in [`Algorithm::ALL`] — the row index of
/// its registry cells.
pub fn algorithm_index(alg: Algorithm) -> usize {
    Algorithm::ALL
        .iter()
        .position(|&a| a == alg)
        .expect("Algorithm::ALL is exhaustive")
}

/// Shared serving-layer metrics registry.
pub struct Metrics {
    queries: AtomicU64,
    failures: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    cache_hits: AtomicU64,
    cache_shared: AtomicU64,
    cache_misses: AtomicU64,
    paths_returned: AtomicU64,
    /// Weight-update batches published as new graph epochs.
    epoch_swaps: AtomicU64,
    /// Distinct edges whose weight changed across all published batches.
    edges_updated: AtomicU64,
    /// End-to-end latency over every query regardless of algorithm (the
    /// per-algorithm split lives in `registry` under [`Stage::Total`]).
    latency: Histogram,
    /// Time spent repairing landmark tables per published batch.
    repair: Histogram,
    /// Per-(algorithm, stage) histograms + per-algorithm work counters.
    registry: StageRegistry,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh, all-zero registry with one row per [`Algorithm::ALL`] entry
    /// and one work counter per [`QueryStats::FIELD_NAMES`] entry.
    pub fn new() -> Metrics {
        Metrics {
            queries: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_shared: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            paths_returned: AtomicU64::new(0),
            epoch_swaps: AtomicU64::new(0),
            edges_updated: AtomicU64::new(0),
            latency: Histogram::default(),
            repair: Histogram::default(),
            registry: StageRegistry::new(
                Algorithm::ALL.iter().map(|a| a.name()).collect(),
                QueryStats::FIELD_NAMES.to_vec(),
            ),
        }
    }

    /// The per-(algorithm, stage) registry.
    pub fn registry(&self) -> &StageRegistry {
        &self.registry
    }

    /// Record a completed query (success or engine failure) and its
    /// end-to-end latency as observed by the service.
    pub fn record_query(&self, latency: Duration, ok: bool, paths: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        self.paths_returned.fetch_add(paths, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Record one stage duration for an algorithm.
    pub fn record_stage(&self, alg: Algorithm, stage: Stage, latency: Duration) {
        self.registry.record(algorithm_index(alg), stage, latency);
    }

    /// Record an admission-control rejection (queue full).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a query that failed its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache hit served from a completed entry.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that piggybacked on an in-flight computation.
    pub fn record_cache_shared(&self) {
        self.cache_shared.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache miss (the request will compute).
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one query's engine-side stats into that algorithm's work
    /// counters.
    pub fn absorb_stats(&self, alg: Algorithm, s: &QueryStats) {
        self.registry
            .add_counters(algorithm_index(alg), &s.field_values());
    }

    /// Record a published weight-update batch: how many distinct edges it
    /// touched and how long the landmark repair took (zero duration when
    /// the service runs without landmarks).
    pub fn record_update(&self, edges: u64, repair: Duration) {
        self.epoch_swaps.fetch_add(1, Ordering::Relaxed);
        self.edges_updated.fetch_add(edges, Ordering::Relaxed);
        self.repair.record(repair);
    }

    /// The landmark-repair latency histogram.
    pub fn repair(&self) -> &Histogram {
        &self.repair
    }

    /// The end-to-end latency histogram (e.g. for extra quantiles).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Render every metric in the Prometheus text exposition format: the
    /// full (algorithm, stage) histogram matrix, the per-algorithm work
    /// counters, and the service-level event counters.
    pub fn render_prometheus(&self, out: &mut String) {
        self.registry.render_prometheus(out);
        out.push_str(
            "# HELP kpj_service_events_total Service-level request outcomes.\n\
             # TYPE kpj_service_events_total counter\n",
        );
        for (event, value) in [
            ("queries", self.queries.load(Ordering::Relaxed)),
            ("failures", self.failures.load(Ordering::Relaxed)),
            ("rejected", self.rejected.load(Ordering::Relaxed)),
            (
                "deadline_exceeded",
                self.deadline_exceeded.load(Ordering::Relaxed),
            ),
            ("cache_hits", self.cache_hits.load(Ordering::Relaxed)),
            ("cache_shared", self.cache_shared.load(Ordering::Relaxed)),
            ("cache_misses", self.cache_misses.load(Ordering::Relaxed)),
            (
                "paths_returned",
                self.paths_returned.load(Ordering::Relaxed),
            ),
            ("epoch_swaps", self.epoch_swaps.load(Ordering::Relaxed)),
            ("edges_updated", self.edges_updated.load(Ordering::Relaxed)),
        ] {
            let _ = writeln!(out, "kpj_service_events_total{{event=\"{event}\"}} {value}");
        }
        out.push_str(
            "# HELP kpj_landmark_repair_us Landmark repair time per published update batch.\n\
             # TYPE kpj_landmark_repair_us gauge\n",
        );
        for (stat, value) in [
            ("count", self.repair.count()),
            ("mean", self.repair.mean_us()),
            ("max", self.repair.max_us()),
        ] {
            let _ = writeln!(out, "kpj_landmark_repair_us{{stat=\"{stat}\"}} {value}");
        }
    }

    /// Take a point-in-time snapshot. Counters are read individually with
    /// relaxed ordering; totals may be off by in-flight updates, which is
    /// fine for monitoring. Work counters are summed across algorithms.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_shared: self.cache_shared.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            paths_returned: self.paths_returned.load(Ordering::Relaxed),
            epoch_swaps: self.epoch_swaps.load(Ordering::Relaxed),
            edges_updated: self.edges_updated.load(Ordering::Relaxed),
            repair_mean_us: self.repair.mean_us(),
            repair_max_us: self.repair.max_us(),
            latency_count: self.latency.count(),
            latency_mean_us: self.latency.mean_us(),
            latency_p50_us: self.latency.quantile_us(0.50).unwrap_or(0),
            latency_p99_us: self.latency.quantile_us(0.99).unwrap_or(0),
            latency_max_us: self.latency.max_us(),
            shortest_path_computations: self.registry.counter_total(field::SP),
            lower_bound_computations: self.registry.counter_total(field::LB),
            testlb_calls: self.registry.counter_total(field::TESTLB),
            nodes_settled: self.registry.counter_total(field::SETTLED),
            edges_relaxed: self.registry.counter_total(field::RELAXED),
            subspaces_created: self.registry.counter_total(field::SUBSPACES),
            heap_pops: self.registry.counter_total(field::HEAP_POPS),
            lb_prunes: self.registry.counter_total(field::LB_PRUNES),
            subspaces_skipped: self.registry.counter_total(field::SUBSPACES_SKIPPED),
            tau_updates: self.registry.counter_total(field::TAU_UPDATES),
        }
    }
}

/// Point-in-time copy of every served metric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries that ran to completion (including engine failures).
    pub queries: u64,
    /// Completed queries that returned an error.
    pub failures: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Queries that exceeded their deadline.
    pub deadline_exceeded: u64,
    /// Cache hits on completed entries.
    pub cache_hits: u64,
    /// Requests that joined an in-flight identical query.
    pub cache_shared: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Total paths returned to clients.
    pub paths_returned: u64,
    /// Weight-update batches published as new graph epochs.
    pub epoch_swaps: u64,
    /// Distinct edges changed across all published batches.
    pub edges_updated: u64,
    /// Mean landmark-repair time per published batch, µs.
    pub repair_mean_us: u64,
    /// Worst landmark-repair time, µs.
    pub repair_max_us: u64,
    /// Latency observations recorded.
    pub latency_count: u64,
    /// Mean end-to-end latency, µs.
    pub latency_mean_us: u64,
    /// Approximate median latency, µs.
    pub latency_p50_us: u64,
    /// Approximate 99th-percentile latency, µs.
    pub latency_p99_us: u64,
    /// Worst observed latency, µs.
    pub latency_max_us: u64,
    /// Summed engine stat: shortest-path computations.
    pub shortest_path_computations: u64,
    /// Summed engine stat: lower-bound computations.
    pub lower_bound_computations: u64,
    /// Summed engine stat: `TestLB` invocations.
    pub testlb_calls: u64,
    /// Summed engine stat: nodes settled.
    pub nodes_settled: u64,
    /// Summed engine stat: edges relaxed.
    pub edges_relaxed: u64,
    /// Summed engine stat: subspaces created.
    pub subspaces_created: u64,
    /// Summed engine stat: heap pops across every priority queue.
    pub heap_pops: u64,
    /// Summed engine stat: frontier entries discarded by a lower bound.
    pub lb_prunes: u64,
    /// Summed engine stat: subspaces dropped without a search.
    pub subspaces_skipped: u64,
    /// Summed engine stat: τ-tightening rounds.
    pub tau_updates: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "queries={} failures={} rejected={} deadline_exceeded={}",
            self.queries, self.failures, self.rejected, self.deadline_exceeded
        )?;
        writeln!(
            f,
            "cache: hits={} shared={} misses={}",
            self.cache_hits, self.cache_shared, self.cache_misses
        )?;
        writeln!(
            f,
            "updates: epoch_swaps={} edges_updated={} repair_us: mean={} max={}",
            self.epoch_swaps, self.edges_updated, self.repair_mean_us, self.repair_max_us
        )?;
        writeln!(
            f,
            "latency_us: mean={} p50={} p99={} max={} (n={})",
            self.latency_mean_us,
            self.latency_p50_us,
            self.latency_p99_us,
            self.latency_max_us,
            self.latency_count
        )?;
        write!(
            f,
            "engine: sp={} lb={} testlb={} settled={} relaxed={} subspaces={} \
             heap_pops={} lb_prunes={} subspaces_skipped={} tau_updates={}",
            self.shortest_path_computations,
            self.lower_bound_computations,
            self.testlb_calls,
            self.nodes_settled,
            self.edges_relaxed,
            self.subspaces_created,
            self.heap_pops,
            self.lb_prunes,
            self.subspaces_skipped,
            self.tau_updates
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_index_matches_registry_rows() {
        let m = Metrics::new();
        for (i, alg) in Algorithm::ALL.into_iter().enumerate() {
            assert_eq!(algorithm_index(alg), i);
            assert_eq!(m.registry().algorithms()[i], alg.name());
        }
        assert_eq!(m.registry().counter_names(), QueryStats::FIELD_NAMES);
    }

    #[test]
    fn snapshot_reflects_recorded_events() {
        let m = Metrics::new();
        m.record_query(Duration::from_micros(10), true, 20);
        m.record_query(Duration::from_millis(2), false, 0);
        m.record_rejected();
        m.record_deadline_exceeded();
        m.record_cache_hit();
        m.record_cache_shared();
        m.record_cache_miss();
        let stats = QueryStats {
            nodes_settled: 7,
            shortest_path_computations: 3,
            heap_pops: 11,
            subspaces_skipped: 2,
            ..Default::default()
        };
        m.absorb_stats(Algorithm::Da, &stats);
        m.absorb_stats(Algorithm::IterBoundI, &stats);
        let s = m.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.failures, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_shared, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.paths_returned, 20);
        assert_eq!(s.latency_count, 2);
        assert_eq!(s.nodes_settled, 14);
        assert_eq!(s.shortest_path_computations, 6);
        assert_eq!(s.heap_pops, 22);
        assert_eq!(s.subspaces_skipped, 4);
        assert!(s.latency_p99_us >= 2000);
        // The per-algorithm split is preserved underneath the totals.
        let da = algorithm_index(Algorithm::Da);
        assert_eq!(m.registry().counter(da, field::HEAP_POPS), 11);
        let text = s.to_string();
        assert!(text.contains("queries=2"));
        assert!(text.contains("heap_pops=22"));
    }

    #[test]
    fn stage_recording_lands_in_the_right_cell() {
        let m = Metrics::new();
        m.record_stage(
            Algorithm::BestFirst,
            Stage::QueueWait,
            Duration::from_micros(30),
        );
        let idx = algorithm_index(Algorithm::BestFirst);
        assert_eq!(m.registry().histogram(idx, Stage::QueueWait).count(), 1);
        assert_eq!(m.registry().histogram(idx, Stage::Total).count(), 0);
    }

    #[test]
    fn prometheus_exposition_covers_service_events() {
        let m = Metrics::new();
        m.record_query(Duration::from_micros(5), true, 1);
        m.record_cache_miss();
        let mut text = String::new();
        m.render_prometheus(&mut text);
        assert!(text.contains("kpj_service_events_total{event=\"queries\"} 1"));
        assert!(text.contains("kpj_service_events_total{event=\"cache_misses\"} 1"));
        assert!(text.contains("kpj_stage_duration_seconds_bucket{algorithm=\"DA\""));
    }
}
