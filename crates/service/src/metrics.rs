//! Aggregated serving metrics: lock-free counters, a latency histogram
//! with approximate quantiles, and summed [`QueryStats`] from the engine
//! pool. One [`Metrics`] instance is shared (via `Arc`) by the pool
//! workers, the cache, and the wire layer; reads take a consistent-enough
//! [`MetricsSnapshot`] without stopping the world.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use kpj_core::QueryStats;

/// Number of fine linear buckets covering 0..LINEAR_LIMIT_US µs.
const LINEAR_BUCKETS: usize = 16;
/// Upper edge of the linear region, microseconds.
const LINEAR_LIMIT_US: u64 = 16;
/// Log2 major buckets above the linear region; each is split into
/// [`MINOR_BUCKETS`] equal minors, giving ~6% worst-case relative error.
const MAJOR_BUCKETS: usize = 32;
/// Minors per major bucket.
const MINOR_BUCKETS: usize = 16;
/// Total bucket count.
const BUCKETS: usize = LINEAR_BUCKETS + MAJOR_BUCKETS * MINOR_BUCKETS;

/// A fixed-bucket latency histogram over microseconds.
///
/// Layout: 16 one-µs linear buckets for the sub-16µs range (cache hits),
/// then log2-major × 16-minor buckets up to `2^(4+32)` µs — far beyond any
/// plausible query latency. Recording is a single relaxed atomic add.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    fn index_of(us: u64) -> usize {
        if us < LINEAR_LIMIT_US {
            return us as usize;
        }
        // us >= 16, so ilog2 >= 4.
        let major = (us.ilog2() as u64 - 4).min(MAJOR_BUCKETS as u64 - 1);
        let low = 16u64 << major; // lower edge of the major bucket
        let width = low / MINOR_BUCKETS as u64; // ≥ 1 since low ≥ 16
        let minor = ((us - low) / width).min(MINOR_BUCKETS as u64 - 1);
        LINEAR_BUCKETS + (major as usize) * MINOR_BUCKETS + minor as usize
    }

    /// Representative (upper-edge) value of a bucket, µs.
    fn upper_edge(idx: usize) -> u64 {
        if idx < LINEAR_BUCKETS {
            return idx as u64 + 1;
        }
        let rel = idx - LINEAR_BUCKETS;
        let major = (rel / MINOR_BUCKETS) as u64;
        let minor = (rel % MINOR_BUCKETS) as u64;
        let low = 16u64 << major;
        low + (minor + 1) * (low / MINOR_BUCKETS as u64)
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.buckets[Self::index_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Approximate quantile (`q` in `[0, 1]`) in microseconds, or `None`
    /// when empty. Reported as the upper edge of the containing bucket.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::upper_edge(i));
            }
        }
        Some(self.max_us.load(Ordering::Relaxed))
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        let n = self.count.load(Ordering::Relaxed);
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(n)
            .unwrap_or(0)
    }

    /// Largest recorded value, µs.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }
}

/// Summed engine-side work counters (a concurrent mirror of
/// [`QueryStats`], aggregated across all workers).
#[derive(Default)]
struct WorkTotals {
    shortest_path_computations: AtomicU64,
    lower_bound_computations: AtomicU64,
    testlb_calls: AtomicU64,
    nodes_settled: AtomicU64,
    edges_relaxed: AtomicU64,
    subspaces_created: AtomicU64,
}

/// Shared serving-layer metrics registry.
#[derive(Default)]
pub struct Metrics {
    queries: AtomicU64,
    failures: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    cache_hits: AtomicU64,
    cache_shared: AtomicU64,
    cache_misses: AtomicU64,
    paths_returned: AtomicU64,
    latency: Histogram,
    work: WorkTotals,
}

impl Metrics {
    /// Fresh, all-zero registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Record a completed query (success or engine failure) and its
    /// end-to-end latency as observed by the service.
    pub fn record_query(&self, latency: Duration, ok: bool, paths: u64) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.failures.fetch_add(1, Ordering::Relaxed);
        }
        self.paths_returned.fetch_add(paths, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// Record an admission-control rejection (queue full).
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a query that failed its deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache hit served from a completed entry.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that piggybacked on an in-flight computation.
    pub fn record_cache_shared(&self) {
        self.cache_shared.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a cache miss (the request will compute).
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold one query's engine-side stats into the totals.
    pub fn absorb_stats(&self, s: &QueryStats) {
        let w = &self.work;
        w.shortest_path_computations
            .fetch_add(s.shortest_path_computations as u64, Ordering::Relaxed);
        w.lower_bound_computations
            .fetch_add(s.lower_bound_computations as u64, Ordering::Relaxed);
        w.testlb_calls
            .fetch_add(s.testlb_calls as u64, Ordering::Relaxed);
        w.nodes_settled
            .fetch_add(s.nodes_settled as u64, Ordering::Relaxed);
        w.edges_relaxed
            .fetch_add(s.edges_relaxed as u64, Ordering::Relaxed);
        w.subspaces_created
            .fetch_add(s.subspaces_created as u64, Ordering::Relaxed);
    }

    /// The latency histogram (e.g. for extra quantiles).
    pub fn latency(&self) -> &Histogram {
        &self.latency
    }

    /// Take a point-in-time snapshot. Counters are read individually with
    /// relaxed ordering; totals may be off by in-flight updates, which is
    /// fine for monitoring.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_shared: self.cache_shared.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            paths_returned: self.paths_returned.load(Ordering::Relaxed),
            latency_count: self.latency.count(),
            latency_mean_us: self.latency.mean_us(),
            latency_p50_us: self.latency.quantile_us(0.50).unwrap_or(0),
            latency_p99_us: self.latency.quantile_us(0.99).unwrap_or(0),
            latency_max_us: self.latency.max_us(),
            shortest_path_computations: self
                .work
                .shortest_path_computations
                .load(Ordering::Relaxed),
            lower_bound_computations: self.work.lower_bound_computations.load(Ordering::Relaxed),
            testlb_calls: self.work.testlb_calls.load(Ordering::Relaxed),
            nodes_settled: self.work.nodes_settled.load(Ordering::Relaxed),
            edges_relaxed: self.work.edges_relaxed.load(Ordering::Relaxed),
            subspaces_created: self.work.subspaces_created.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of every served metric.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Queries that ran to completion (including engine failures).
    pub queries: u64,
    /// Completed queries that returned an error.
    pub failures: u64,
    /// Requests rejected by admission control.
    pub rejected: u64,
    /// Queries that exceeded their deadline.
    pub deadline_exceeded: u64,
    /// Cache hits on completed entries.
    pub cache_hits: u64,
    /// Requests that joined an in-flight identical query.
    pub cache_shared: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Total paths returned to clients.
    pub paths_returned: u64,
    /// Latency observations recorded.
    pub latency_count: u64,
    /// Mean end-to-end latency, µs.
    pub latency_mean_us: u64,
    /// Approximate median latency, µs.
    pub latency_p50_us: u64,
    /// Approximate 99th-percentile latency, µs.
    pub latency_p99_us: u64,
    /// Worst observed latency, µs.
    pub latency_max_us: u64,
    /// Summed engine stat: shortest-path computations.
    pub shortest_path_computations: u64,
    /// Summed engine stat: lower-bound computations.
    pub lower_bound_computations: u64,
    /// Summed engine stat: `TestLB` invocations.
    pub testlb_calls: u64,
    /// Summed engine stat: nodes settled.
    pub nodes_settled: u64,
    /// Summed engine stat: edges relaxed.
    pub edges_relaxed: u64,
    /// Summed engine stat: subspaces created.
    pub subspaces_created: u64,
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "queries={} failures={} rejected={} deadline_exceeded={}",
            self.queries, self.failures, self.rejected, self.deadline_exceeded
        )?;
        writeln!(
            f,
            "cache: hits={} shared={} misses={}",
            self.cache_hits, self.cache_shared, self.cache_misses
        )?;
        writeln!(
            f,
            "latency_us: mean={} p50={} p99={} max={} (n={})",
            self.latency_mean_us,
            self.latency_p50_us,
            self.latency_p99_us,
            self.latency_max_us,
            self.latency_count
        )?;
        write!(
            f,
            "engine: sp={} lb={} testlb={} settled={} relaxed={} subspaces={}",
            self.shortest_path_computations,
            self.lower_bound_computations,
            self.testlb_calls,
            self.nodes_settled,
            self.edges_relaxed,
            self.subspaces_created
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for us in 0..100_000u64 {
            let idx = Histogram::index_of(us);
            assert!(idx < BUCKETS);
            assert!(idx >= last, "index went backwards at {us}");
            last = idx;
            assert!(
                Histogram::upper_edge(idx) >= us.max(1),
                "upper edge below sample at {us}"
            );
        }
        // Astronomically large values stay in range.
        assert!(Histogram::index_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_are_close() {
        let h = Histogram::default();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.50).unwrap();
        let p99 = h.quantile_us(0.99).unwrap();
        // ~6% worst-case relative error from the minor-bucket width.
        assert!((468..=532).contains(&p50), "p50 = {p50}");
        assert!((930..=1058).contains(&p99), "p99 = {p99}");
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_us(), 1000);
        assert!(h.mean_us() >= 495 && h.mean_us() <= 505);
    }

    #[test]
    fn snapshot_reflects_recorded_events() {
        let m = Metrics::new();
        m.record_query(Duration::from_micros(10), true, 20);
        m.record_query(Duration::from_millis(2), false, 0);
        m.record_rejected();
        m.record_deadline_exceeded();
        m.record_cache_hit();
        m.record_cache_shared();
        m.record_cache_miss();
        let stats = QueryStats {
            nodes_settled: 7,
            shortest_path_computations: 3,
            ..Default::default()
        };
        m.absorb_stats(&stats);
        m.absorb_stats(&stats);
        let s = m.snapshot();
        assert_eq!(s.queries, 2);
        assert_eq!(s.failures, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.deadline_exceeded, 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_shared, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.paths_returned, 20);
        assert_eq!(s.latency_count, 2);
        assert_eq!(s.nodes_settled, 14);
        assert_eq!(s.shortest_path_computations, 6);
        assert!(s.latency_p99_us >= 2000);
        let text = s.to_string();
        assert!(text.contains("queries=2"));
        assert!(text.contains("p99="));
    }
}
