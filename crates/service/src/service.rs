//! [`KpjService`]: the query-serving facade combining the engine pool,
//! the single-flight result cache, per-query deadlines and the metrics
//! registry. The TCP server and the in-process batch API are both thin
//! wrappers over [`KpjService::execute`].

use std::fmt::Write as _;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use kpj_core::{KpjResult, QueryError};
use kpj_graph::{Graph, IdTranslation, NodeRemap, Reduction, TranslateError, WeightUpdate};
use kpj_landmark::LandmarkIndex;
use kpj_obs::Stage;

use crate::cache::{CacheKey, Lookup, ResultCache};
use crate::epoch::GraphEpoch;
use crate::flight::FlightRecorder;
use crate::metrics::{algorithm_index, event, gauge, Metrics, MetricsSnapshot};
use crate::pool::{EnginePool, PoolConfig, PoolHooks, QueryRequest};
use crate::ServiceError;

/// A completed query answer, shared (via `Arc`) between the result cache
/// and every caller that hit it.
///
/// Besides the [`KpjResult`] itself (reachable through `Deref`), the
/// answer memoizes its JSON wire encoding: the first front-end that needs
/// the response body renders it once, straight off the flat
/// [`PathSet`](kpj_graph::PathSet) — and every later cache hit serves the
/// very same bytes. A cache hit therefore copies no paths at all: not into
/// a result clone (the `Arc` is shared) and not into an encoder (the body
/// string is shared too).
pub struct Answer {
    result: KpjResult,
    /// When the graph was locality-reordered at rest (v2 storage), path
    /// nodes are internal ids; the wire body translates them back to the
    /// external (original) ids the client speaks. `None` = identity.
    remap: Option<Arc<NodeRemap>>,
    /// Lazily rendered body fields, `[without paths, with paths]`.
    body: [OnceLock<String>; 2],
}

impl Answer {
    /// Wrap a freshly computed result.
    pub fn new(result: KpjResult) -> Answer {
        Answer::with_remap(result, None)
    }

    /// Wrap a result computed on a reordered graph; `remap` translates
    /// its internal path nodes back to external ids on the wire.
    pub fn with_remap(result: KpjResult, remap: Option<Arc<NodeRemap>>) -> Answer {
        Answer {
            result,
            remap,
            body: [OnceLock::new(), OnceLock::new()],
        }
    }

    /// The underlying result (also available through `Deref`).
    pub fn result(&self) -> &KpjResult {
        &self.result
    }

    /// The JSON response fields that follow `"ok":true` — everything but
    /// the per-request `id` envelope: `count`, `lengths`, optionally
    /// `paths`, and `stats`. Rendered at most once per variant; repeat
    /// calls (cache hits) return the same interned string.
    pub fn wire_body(&self, want_paths: bool) -> &str {
        self.body[usize::from(want_paths)].get_or_init(|| self.render_body(want_paths))
    }

    /// Serialize by walking the flat path storage directly — no
    /// intermediate owned paths, no JSON value tree.
    fn render_body(&self, want_paths: bool) -> String {
        let paths = &self.result.paths;
        let mut out = String::with_capacity(64 + paths.total_nodes() * 4);
        write!(out, "\"count\":{}", paths.len()).unwrap();
        out.push_str(",\"lengths\":[");
        for (i, p) in paths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{}", p.length).unwrap();
        }
        out.push(']');
        if want_paths {
            out.push_str(",\"paths\":[");
            for (i, p) in paths.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, &n) in p.nodes.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let n = self.remap.as_ref().map_or(n, |r| r.to_external(n));
                    write!(out, "{n}").unwrap();
                }
                out.push(']');
            }
            out.push(']');
        }
        // One serializer for every QueryStats field — the wire `stats`
        // block and the metrics registry can never drift apart again.
        out.push_str(",\"stats\":");
        self.result.stats.write_json(&mut out);
        out
    }
}

impl std::ops::Deref for Answer {
    type Target = KpjResult;

    fn deref(&self) -> &KpjResult {
        &self.result
    }
}

impl std::fmt::Debug for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Answer")
            .field("result", &self.result)
            .finish_non_exhaustive()
    }
}

/// Service-level configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Engine-pool sizing.
    pub pool: PoolConfig,
    /// Result-cache capacity in completed entries; `0` disables caching
    /// (every request goes to the pool).
    pub cache_capacity: usize,
    /// Trace 1-in-N queries through the engine span tracer (`0` turns
    /// span recording off; work counters and queue-wait are always on).
    pub trace_sample: u32,
    /// Latency threshold for the slow-query flight recorder; `None`
    /// disables recording.
    pub slow_query_ms: Option<u64>,
    /// Directory the flight recorder writes `.kpjcase` files into.
    /// `None` means `kpj-flight-records` under the working directory.
    pub flight_dir: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool: PoolConfig::default(),
            cache_capacity: 1024,
            trace_sample: 1,
            slow_query_ms: None,
            flight_dir: None,
        }
    }
}

/// How many times `execute` re-tries after a *shared* flight it was
/// waiting on fails. The owner's failure (deadline, overload) is not
/// necessarily ours — we get a fresh attempt, but a bounded one.
const SHARED_RETRIES: usize = 2;

/// A thread-safe KPJ query service over one graph.
pub struct KpjService {
    pool: EnginePool,
    cache: Option<ResultCache>,
    metrics: Arc<Metrics>,
    flight: Option<Arc<FlightRecorder>>,
    /// The id-space boundary: how external (client-visible) node ids map
    /// to the engine's ids — identity, a locality-reorder permutation, or
    /// a graph reduction (DESIGN.md §15).
    translation: IdTranslation,
    /// Serializes weight-update batches: builds are expensive (graph
    /// copy + landmark repair) and must see each other's epochs in order.
    /// Queries never take this lock.
    updater: Mutex<()>,
}

/// What a published weight-update batch did, as reported to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The epoch now serving (unchanged if the batch was a no-op).
    pub epoch: u64,
    /// Distinct edges whose weight actually changed.
    pub changed: usize,
    /// Landmark repair wall time, µs (0 without landmarks or no-op).
    pub repair_us: u64,
    /// Nodes whose landmark distance was recomputed, summed over rows.
    pub affected_nodes: u64,
    /// Completed cache entries from older epochs reaped at publish.
    pub cache_purged: usize,
}

impl KpjService {
    /// Build a service over `graph` (and an optional landmark index —
    /// without one every algorithm runs in its `-NL` variant).
    pub fn new(
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        config: ServiceConfig,
    ) -> KpjService {
        KpjService::new_reduced(graph, landmarks, None, config)
    }

    /// [`new`](KpjService::new) over a *reduced* graph (v2 `--reduce`
    /// storage): clients keep speaking original node ids — endpoints map
    /// through the reduction at admission, answers come back re-expanded
    /// to original ids by the worker engines, and weight updates on
    /// contracted chain interiors are translated to shortcut updates
    /// (with the prefix sums repaired) before the epoch publish.
    pub fn new_reduced(
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        reduction: Option<Arc<Reduction>>,
        config: ServiceConfig,
    ) -> KpjService {
        let metrics = Arc::new(Metrics::new());
        let flight = config.slow_query_ms.and_then(|ms| {
            let dir = config.flight_dir.as_deref().unwrap_or("kpj-flight-records");
            match FlightRecorder::new(dir, Duration::from_millis(ms)) {
                Ok(rec) => Some(Arc::new(rec)),
                Err(e) => {
                    // A broken record directory must not stop serving.
                    eprintln!("flight recorder disabled: cannot create {dir}: {e}");
                    None
                }
            }
        });
        let hooks = PoolHooks {
            metrics: Some(Arc::clone(&metrics)),
            flight: flight.clone(),
            trace_sample: config.trace_sample,
            ..Default::default()
        };
        let translation = match &reduction {
            Some(red) => IdTranslation::Reduce(Arc::clone(red)),
            None => IdTranslation::Identity,
        };
        KpjService {
            pool: EnginePool::with_hooks_reduced(graph, landmarks, reduction, config.pool, hooks),
            cache: (config.cache_capacity > 0).then(|| {
                ResultCache::with_metrics(config.cache_capacity, Some(Arc::clone(&metrics)))
            }),
            metrics,
            flight,
            translation,
            updater: Mutex::new(()),
        }
    }

    /// Install the node-id permutation of a locality-reordered graph
    /// (v2 storage). Clients keep speaking *original* ids: requests are
    /// translated to internal ids before cache/engine, and path nodes are
    /// translated back in the wire body. Call before sharing the service;
    /// an identity permutation is dropped (no per-query work). Mutually
    /// exclusive with a reduction (the storage format enforces this: a
    /// reorder of a reduced graph is folded into the reduction offline).
    pub fn set_remap(&mut self, remap: Arc<NodeRemap>) {
        assert!(
            self.translation.reduction().is_none(),
            "a reduced service folds reorders into its reduction"
        );
        self.translation = if remap.is_identity() {
            IdTranslation::Identity
        } else {
            IdTranslation::Remap(remap)
        };
    }

    /// The id-space boundary this service translates across.
    pub fn translation(&self) -> &IdTranslation {
        &self.translation
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The flight recorder, when slow-query recording is enabled.
    pub fn flight_recorder(&self) -> Option<&Arc<FlightRecorder>> {
        self.flight.as_ref()
    }

    /// Convenience snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The engine pool (exposed for tests and capacity introspection).
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// Pin and return the currently serving epoch.
    pub fn current_epoch(&self) -> Arc<GraphEpoch> {
        self.pool.epochs().pin()
    }

    /// Apply a batch of edge-weight updates and publish the result as a
    /// new graph epoch. In-flight and already-admitted queries finish on
    /// the epoch they pinned; queries admitted after this returns see the
    /// new weights. The whole batch is validated before anything is
    /// built, so a rejected batch changes nothing. Node ids are external
    /// (client-visible) ids when a remap is installed.
    ///
    /// A batch whose updates all match the current weights is a no-op:
    /// no epoch is published and the cache keeps its entries.
    pub fn apply_update(&self, updates: &[WeightUpdate]) -> Result<UpdateOutcome, ServiceError> {
        // The repair-queue gauge counts batches waiting on or holding the
        // updater lock; the guard keeps it balanced across every exit.
        self.metrics.gauges().add(gauge::REPAIR_QUEUE, 1);
        let _depth = RepairQueueGuard(&self.metrics);
        let _serial = self.updater.lock().unwrap();
        let base = self.pool.epochs().pin();
        let translate_started = Instant::now();
        let translated: Vec<WeightUpdate>;
        // A reduced graph may need its expansion prefix sums replaced
        // (an update hit a contracted chain's interior).
        let mut next_reduction: Option<Arc<Reduction>> = None;
        let updates: &[WeightUpdate] = match &self.translation {
            IdTranslation::Identity => updates,
            IdTranslation::Remap(remap) => {
                translated = updates
                    .iter()
                    .map(|u| {
                        let internal = |node| {
                            remap.to_internal(node).ok_or_else(|| {
                                ServiceError::Update(format!("node {node} out of range"))
                            })
                        };
                        Ok(WeightUpdate {
                            from: internal(u.from)?,
                            to: internal(u.to)?,
                            weight: u.weight,
                        })
                    })
                    .collect::<Result<_, ServiceError>>()?;
                &translated
            }
            IdTranslation::Reduce(_) => {
                // Updates arrive in *original* ids. Edges surviving in the
                // reduced graph pass through; edges interior to a
                // contracted chain become an update of the covering
                // shortcut's total weight plus repaired prefix sums —
                // no full re-reduction. Updates on pruned edges are
                // dropped (they cannot influence any V_S/V_T answer).
                //
                // Translate against the *epoch's* reduction, not the
                // construction-time one: an earlier interior update may
                // have replaced the prefix sums, and hop weights are
                // derived from them. (The node mapping itself never
                // changes, so query translation can stay epoch-free.)
                let red = base
                    .reduction()
                    .expect("epochs of a reduced service carry its reduction");
                let t = red
                    .translate_updates(base.graph(), updates)
                    .map_err(|e| ServiceError::Update(e.to_string()))?;
                next_reduction = t.reduction.map(Arc::new);
                translated = t.updates;
                &translated
            }
        };
        let translate_us = translate_started.elapsed().as_micros() as u64;
        let (graph, deltas) = base
            .graph()
            .with_updated_weights(updates)
            .map_err(|e| ServiceError::Update(e.to_string()))?;
        if deltas.is_empty() && next_reduction.is_none() {
            return Ok(UpdateOutcome {
                epoch: base.id(),
                changed: 0,
                repair_us: 0,
                affected_nodes: 0,
                cache_purged: 0,
            });
        }
        let repair_started = Instant::now();
        let (landmarks, affected_nodes) = match base.landmarks() {
            Some(index) => {
                let (repaired, stats) = index.repaired(&graph, &deltas);
                (Some(Arc::new(repaired)), stats.affected_nodes)
            }
            None => (None, 0),
        };
        let repair = repair_started.elapsed();
        let epoch = match next_reduction {
            Some(red) => {
                self.pool
                    .publish_reduced(Arc::new(graph), landmarks, Some(red), deltas.len())
            }
            None => self.pool.publish(Arc::new(graph), landmarks, deltas.len()),
        };
        // Entries keyed to older epochs are already unreachable (the
        // epoch id is part of the cache key); reap them eagerly.
        let purge_started = Instant::now();
        let cache_purged = self
            .cache
            .as_ref()
            .map_or(0, |cache| cache.purge_stale(epoch.id()));
        let purge_us = purge_started.elapsed().as_micros() as u64;
        self.metrics.record_update(deltas.len() as u64, repair);
        self.metrics.record_event(
            event::EPOCH_PUBLISHED,
            [
                epoch.id(),
                deltas.len() as u64,
                affected_nodes,
                cache_purged as u64,
            ],
        );
        self.metrics.record_event(
            event::UPDATE_APPLIED,
            [
                epoch.id(),
                translate_us,
                repair.as_micros() as u64,
                purge_us,
            ],
        );
        Ok(UpdateOutcome {
            epoch: epoch.id(),
            changed: deltas.len(),
            repair_us: repair.as_micros() as u64,
            affected_nodes,
            cache_purged,
        })
    }

    /// Execute one query end-to-end: cache lookup (with single-flight
    /// dedup), pool admission, deadline enforcement, metrics.
    pub fn execute(&self, request: &QueryRequest) -> Result<Arc<Answer>, ServiceError> {
        let started = Instant::now();
        let out = match self.translate(request) {
            Ok(Some(internal)) => self.execute_inner(&internal, started),
            Ok(None) => self.execute_inner(request, started),
            Err(e) => Err(e),
        };
        // End-to-end service latency, successful or not, per algorithm.
        self.metrics
            .record_stage(request.algorithm, Stage::Total, started.elapsed());
        out
    }

    /// Rewrite a request's external node ids to engine (reordered or
    /// reduced) ids. `Ok(None)` means the translation is the identity —
    /// serve the request as-is. A node that was contracted or pruned away
    /// by reduction surfaces as the same out-of-range error an unknown id
    /// would: either way no engine node answers to it.
    fn translate(&self, request: &QueryRequest) -> Result<Option<QueryRequest>, ServiceError> {
        if self.translation.is_identity() {
            return Ok(None);
        }
        let to_engine = |node, err: fn(u32) -> QueryError| {
            self.translation.to_engine(node).map_err(|e| match e {
                TranslateError::OutOfRange { .. } | TranslateError::Contracted { .. } => {
                    ServiceError::Query(err(node))
                }
            })
        };
        let mut internal = request.clone();
        for s in &mut internal.sources {
            *s = to_engine(*s, QueryError::SourceOutOfRange)?;
        }
        for t in &mut internal.targets {
            *t = to_engine(*t, QueryError::TargetOutOfRange)?;
        }
        Ok(Some(internal))
    }

    fn execute_inner(
        &self,
        request: &QueryRequest,
        started: Instant,
    ) -> Result<Arc<Answer>, ServiceError> {
        let Some(cache) = &self.cache else {
            return self.compute_recorded(request, started, self.pool.epochs().pin());
        };
        for _ in 0..=SHARED_RETRIES {
            // Pin the epoch per attempt (a retry after a failed shared
            // flight should run on the *current* graph) and scope the
            // cache key to it: the answer served can only ever come from
            // the graph version this request was admitted on.
            let epoch = self.pool.epochs().pin();
            let key = CacheKey::new(
                epoch.id(),
                request.algorithm,
                &request.sources,
                &request.targets,
                request.k,
            );
            let probe = Instant::now();
            let looked = cache.lookup(&key);
            self.metrics
                .record_stage(request.algorithm, Stage::CacheLookup, probe.elapsed());
            match looked {
                Lookup::Hit(value) => {
                    self.metrics.record_cache_hit();
                    self.metrics
                        .record_query(started.elapsed(), true, value.paths.len() as u64);
                    return Ok(value);
                }
                Lookup::Shared(flight) => {
                    self.metrics.record_cache_shared();
                    match flight.wait() {
                        Ok(value) => {
                            self.metrics.record_query(
                                started.elapsed(),
                                true,
                                value.paths.len() as u64,
                            );
                            return Ok(value);
                        }
                        // The owner failed; loop for a fresh attempt.
                        Err(_) => continue,
                    }
                }
                Lookup::Miss(token) => {
                    self.metrics.record_cache_miss();
                    return match self.compute_recorded(request, started, epoch) {
                        Ok(value) => {
                            token.complete(Arc::clone(&value));
                            Ok(value)
                        }
                        Err(e) => {
                            token.fail(e.clone());
                            Err(e)
                        }
                    };
                }
            }
        }
        // Every attempt rode a flight whose owner failed.
        Err(ServiceError::Internal(
            "shared flight kept failing".to_string(),
        ))
    }

    /// Run on the pool (pinned to `epoch`, the same one the cache key was
    /// scoped to) and fold the outcome into the metrics.
    fn compute_recorded(
        &self,
        request: &QueryRequest,
        started: Instant,
        epoch: Arc<GraphEpoch>,
    ) -> Result<Arc<Answer>, ServiceError> {
        let handle = match self.pool.submit_pinned(request.clone(), epoch) {
            Ok(handle) => handle,
            Err(e) => {
                if matches!(e, ServiceError::Overloaded) {
                    self.metrics.record_rejected();
                }
                return Err(e);
            }
        };
        match handle.wait() {
            Ok(result) => {
                // Work counters were already absorbed by the worker that
                // ran the query (it knows the span trace too).
                self.metrics
                    .record_query(started.elapsed(), true, result.paths.len() as u64);
                Ok(Arc::new(Answer::with_remap(
                    result,
                    self.translation.output_remap().cloned(),
                )))
            }
            Err(e) => {
                if matches!(e, ServiceError::Query(QueryError::DeadlineExceeded)) {
                    self.metrics.record_deadline_exceeded();
                    self.metrics.record_event(
                        event::DEADLINE_EXPIRED,
                        [
                            algorithm_index(request.algorithm) as u64,
                            request.k as u64,
                            request.timeout_ms.unwrap_or(0),
                            0,
                        ],
                    );
                }
                self.metrics.record_query(started.elapsed(), false, 0);
                Err(e)
            }
        }
    }

    /// Sample the gauges that are cheaper to read than to maintain —
    /// epoch lifecycle and cache occupancy. The wire layer calls this
    /// before rendering a status snapshot or Prometheus exposition, so
    /// pull-style scrapes always see fresh values without the query path
    /// paying to keep them fresh.
    pub fn refresh_gauges(&self) {
        let gauges = self.metrics.gauges();
        let epochs = self.pool.epochs();
        gauges.set(gauge::LIVE_EPOCHS, epochs.live_epochs() as i64);
        let pin = epochs.pin();
        gauges.set(gauge::EPOCH_ID, pin.id() as i64);
        // Everything holding the current epoch beyond the cell's own Arc
        // and our probe pin is an admitted query or a worker engine.
        let pins = Arc::strong_count(&pin).saturating_sub(2);
        gauges.set(gauge::EPOCH_PINS, pins as i64);
        drop(pin);
        if let Some(cache) = &self.cache {
            let occupancy = cache.occupancy();
            let ready: usize = occupancy.iter().map(|&(r, _)| r).sum();
            let pending: usize = occupancy.iter().map(|&(_, p)| p).sum();
            gauges.set(gauge::CACHE_ENTRIES, ready as i64);
            gauges.set(gauge::CACHE_WAITERS, pending as i64);
        }
        gauges.set(gauge::QUEUE_DEPTH, self.pool.queue_depth() as i64);
    }

    /// The result cache, when caching is enabled (exposed for the status
    /// verb's per-shard occupancy detail).
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }
}

/// Balances the `repair_queue` gauge on every exit from `apply_update`.
struct RepairQueueGuard<'a>(&'a Metrics);

impl Drop for RepairQueueGuard<'_> {
    fn drop(&mut self) {
        self.0.gauges().add(gauge::REPAIR_QUEUE, -1);
    }
}
