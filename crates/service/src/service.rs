//! [`KpjService`]: the query-serving facade combining the engine pool,
//! the single-flight result cache, per-query deadlines and the metrics
//! registry. The TCP server and the in-process batch API are both thin
//! wrappers over [`KpjService::execute`].

use std::sync::Arc;
use std::time::Instant;

use kpj_core::{KpjResult, QueryError};
use kpj_graph::Graph;
use kpj_landmark::LandmarkIndex;

use crate::cache::{CacheKey, Lookup, ResultCache};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::pool::{EnginePool, PoolConfig, QueryRequest};
use crate::ServiceError;

/// Service-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Engine-pool sizing.
    pub pool: PoolConfig,
    /// Result-cache capacity in completed entries; `0` disables caching
    /// (every request goes to the pool).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool: PoolConfig::default(),
            cache_capacity: 1024,
        }
    }
}

/// How many times `execute` re-tries after a *shared* flight it was
/// waiting on fails. The owner's failure (deadline, overload) is not
/// necessarily ours — we get a fresh attempt, but a bounded one.
const SHARED_RETRIES: usize = 2;

/// A thread-safe KPJ query service over one graph.
pub struct KpjService {
    pool: EnginePool,
    cache: Option<ResultCache>,
    metrics: Arc<Metrics>,
}

impl KpjService {
    /// Build a service over `graph` (and an optional landmark index —
    /// without one every algorithm runs in its `-NL` variant).
    pub fn new(
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        config: ServiceConfig,
    ) -> KpjService {
        KpjService {
            pool: EnginePool::new(graph, landmarks, config.pool),
            cache: (config.cache_capacity > 0).then(|| ResultCache::new(config.cache_capacity)),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Convenience snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The engine pool (exposed for tests and capacity introspection).
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// Execute one query end-to-end: cache lookup (with single-flight
    /// dedup), pool admission, deadline enforcement, metrics.
    pub fn execute(&self, request: &QueryRequest) -> Result<Arc<KpjResult>, ServiceError> {
        let started = Instant::now();
        let Some(cache) = &self.cache else {
            return self.compute_recorded(request, started);
        };
        let key = CacheKey::new(
            request.algorithm,
            &request.sources,
            &request.targets,
            request.k,
        );
        for _ in 0..=SHARED_RETRIES {
            match cache.lookup(&key) {
                Lookup::Hit(value) => {
                    self.metrics.record_cache_hit();
                    self.metrics
                        .record_query(started.elapsed(), true, value.paths.len() as u64);
                    return Ok(value);
                }
                Lookup::Shared(flight) => {
                    self.metrics.record_cache_shared();
                    match flight.wait() {
                        Ok(value) => {
                            self.metrics.record_query(
                                started.elapsed(),
                                true,
                                value.paths.len() as u64,
                            );
                            return Ok(value);
                        }
                        // The owner failed; loop for a fresh attempt.
                        Err(_) => continue,
                    }
                }
                Lookup::Miss(token) => {
                    self.metrics.record_cache_miss();
                    return match self.compute_recorded(request, started) {
                        Ok(value) => {
                            token.complete(Arc::clone(&value));
                            Ok(value)
                        }
                        Err(e) => {
                            token.fail(e.clone());
                            Err(e)
                        }
                    };
                }
            }
        }
        // Every attempt rode a flight whose owner failed.
        Err(ServiceError::Internal(
            "shared flight kept failing".to_string(),
        ))
    }

    /// Run on the pool and fold the outcome into the metrics.
    fn compute_recorded(
        &self,
        request: &QueryRequest,
        started: Instant,
    ) -> Result<Arc<KpjResult>, ServiceError> {
        let handle = match self.pool.submit(request.clone()) {
            Ok(handle) => handle,
            Err(e) => {
                if matches!(e, ServiceError::Overloaded) {
                    self.metrics.record_rejected();
                }
                return Err(e);
            }
        };
        match handle.wait() {
            Ok(result) => {
                self.metrics.absorb_stats(&result.stats);
                self.metrics
                    .record_query(started.elapsed(), true, result.paths.len() as u64);
                Ok(Arc::new(result))
            }
            Err(e) => {
                if matches!(e, ServiceError::Query(QueryError::DeadlineExceeded)) {
                    self.metrics.record_deadline_exceeded();
                }
                self.metrics.record_query(started.elapsed(), false, 0);
                Err(e)
            }
        }
    }
}
