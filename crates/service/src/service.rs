//! [`KpjService`]: the query-serving facade combining the engine pool,
//! the single-flight result cache, per-query deadlines and the metrics
//! registry. The TCP server and the in-process batch API are both thin
//! wrappers over [`KpjService::execute`].

use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use kpj_core::{KpjResult, QueryError};
use kpj_graph::Graph;
use kpj_landmark::LandmarkIndex;

use crate::cache::{CacheKey, Lookup, ResultCache};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::pool::{EnginePool, PoolConfig, QueryRequest};
use crate::ServiceError;

/// A completed query answer, shared (via `Arc`) between the result cache
/// and every caller that hit it.
///
/// Besides the [`KpjResult`] itself (reachable through `Deref`), the
/// answer memoizes its JSON wire encoding: the first front-end that needs
/// the response body renders it once, straight off the flat
/// [`PathSet`](kpj_graph::PathSet) — and every later cache hit serves the
/// very same bytes. A cache hit therefore copies no paths at all: not into
/// a result clone (the `Arc` is shared) and not into an encoder (the body
/// string is shared too).
pub struct Answer {
    result: KpjResult,
    /// Lazily rendered body fields, `[without paths, with paths]`.
    body: [OnceLock<String>; 2],
}

impl Answer {
    /// Wrap a freshly computed result.
    pub fn new(result: KpjResult) -> Answer {
        Answer {
            result,
            body: [OnceLock::new(), OnceLock::new()],
        }
    }

    /// The underlying result (also available through `Deref`).
    pub fn result(&self) -> &KpjResult {
        &self.result
    }

    /// The JSON response fields that follow `"ok":true` — everything but
    /// the per-request `id` envelope: `count`, `lengths`, optionally
    /// `paths`, and `stats`. Rendered at most once per variant; repeat
    /// calls (cache hits) return the same interned string.
    pub fn wire_body(&self, want_paths: bool) -> &str {
        self.body[usize::from(want_paths)].get_or_init(|| self.render_body(want_paths))
    }

    /// Serialize by walking the flat path storage directly — no
    /// intermediate owned paths, no JSON value tree.
    fn render_body(&self, want_paths: bool) -> String {
        let paths = &self.result.paths;
        let mut out = String::with_capacity(64 + paths.total_nodes() * 4);
        write!(out, "\"count\":{}", paths.len()).unwrap();
        out.push_str(",\"lengths\":[");
        for (i, p) in paths.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(out, "{}", p.length).unwrap();
        }
        out.push(']');
        if want_paths {
            out.push_str(",\"paths\":[");
            for (i, p) in paths.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, &n) in p.nodes.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    write!(out, "{n}").unwrap();
                }
                out.push(']');
            }
            out.push(']');
        }
        let s = &self.result.stats;
        write!(
            out,
            ",\"stats\":{{\"sp\":{},\"lb\":{},\"settled\":{},\"relaxed\":{},\"subspaces\":{},\"tau\":{}}}",
            s.shortest_path_computations,
            s.lower_bound_computations,
            s.nodes_settled,
            s.edges_relaxed,
            s.subspaces_created,
            s.final_tau,
        )
        .unwrap();
        out
    }
}

impl std::ops::Deref for Answer {
    type Target = KpjResult;

    fn deref(&self) -> &KpjResult {
        &self.result
    }
}

impl std::fmt::Debug for Answer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Answer")
            .field("result", &self.result)
            .finish_non_exhaustive()
    }
}

/// Service-level configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Engine-pool sizing.
    pub pool: PoolConfig,
    /// Result-cache capacity in completed entries; `0` disables caching
    /// (every request goes to the pool).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            pool: PoolConfig::default(),
            cache_capacity: 1024,
        }
    }
}

/// How many times `execute` re-tries after a *shared* flight it was
/// waiting on fails. The owner's failure (deadline, overload) is not
/// necessarily ours — we get a fresh attempt, but a bounded one.
const SHARED_RETRIES: usize = 2;

/// A thread-safe KPJ query service over one graph.
pub struct KpjService {
    pool: EnginePool,
    cache: Option<ResultCache>,
    metrics: Arc<Metrics>,
}

impl KpjService {
    /// Build a service over `graph` (and an optional landmark index —
    /// without one every algorithm runs in its `-NL` variant).
    pub fn new(
        graph: Arc<Graph>,
        landmarks: Option<Arc<LandmarkIndex>>,
        config: ServiceConfig,
    ) -> KpjService {
        KpjService {
            pool: EnginePool::new(graph, landmarks, config.pool),
            cache: (config.cache_capacity > 0).then(|| ResultCache::new(config.cache_capacity)),
            metrics: Arc::new(Metrics::new()),
        }
    }

    /// The shared metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Convenience snapshot of all counters.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The engine pool (exposed for tests and capacity introspection).
    pub fn pool(&self) -> &EnginePool {
        &self.pool
    }

    /// Execute one query end-to-end: cache lookup (with single-flight
    /// dedup), pool admission, deadline enforcement, metrics.
    pub fn execute(&self, request: &QueryRequest) -> Result<Arc<Answer>, ServiceError> {
        let started = Instant::now();
        let Some(cache) = &self.cache else {
            return self.compute_recorded(request, started);
        };
        let key = CacheKey::new(
            request.algorithm,
            &request.sources,
            &request.targets,
            request.k,
        );
        for _ in 0..=SHARED_RETRIES {
            match cache.lookup(&key) {
                Lookup::Hit(value) => {
                    self.metrics.record_cache_hit();
                    self.metrics
                        .record_query(started.elapsed(), true, value.paths.len() as u64);
                    return Ok(value);
                }
                Lookup::Shared(flight) => {
                    self.metrics.record_cache_shared();
                    match flight.wait() {
                        Ok(value) => {
                            self.metrics.record_query(
                                started.elapsed(),
                                true,
                                value.paths.len() as u64,
                            );
                            return Ok(value);
                        }
                        // The owner failed; loop for a fresh attempt.
                        Err(_) => continue,
                    }
                }
                Lookup::Miss(token) => {
                    self.metrics.record_cache_miss();
                    return match self.compute_recorded(request, started) {
                        Ok(value) => {
                            token.complete(Arc::clone(&value));
                            Ok(value)
                        }
                        Err(e) => {
                            token.fail(e.clone());
                            Err(e)
                        }
                    };
                }
            }
        }
        // Every attempt rode a flight whose owner failed.
        Err(ServiceError::Internal(
            "shared flight kept failing".to_string(),
        ))
    }

    /// Run on the pool and fold the outcome into the metrics.
    fn compute_recorded(
        &self,
        request: &QueryRequest,
        started: Instant,
    ) -> Result<Arc<Answer>, ServiceError> {
        let handle = match self.pool.submit(request.clone()) {
            Ok(handle) => handle,
            Err(e) => {
                if matches!(e, ServiceError::Overloaded) {
                    self.metrics.record_rejected();
                }
                return Err(e);
            }
        };
        match handle.wait() {
            Ok(result) => {
                self.metrics.absorb_stats(&result.stats);
                self.metrics
                    .record_query(started.elapsed(), true, result.paths.len() as u64);
                Ok(Arc::new(Answer::new(result)))
            }
            Err(e) => {
                if matches!(e, ServiceError::Query(QueryError::DeadlineExceeded)) {
                    self.metrics.record_deadline_exceeded();
                }
                self.metrics.record_query(started.elapsed(), false, 0);
                Err(e)
            }
        }
    }
}
