//! Slow-query flight recorder.
//!
//! When a query's engine execution exceeds a configured latency
//! threshold, the pool worker dumps the query *and the graph it ran on*
//! as a replayable `.kpjcase` file (the differential-testing format of
//! `kpj-oracle`), prefixed with `#`-comment lines carrying the span trace
//! and the answer it produced. The file replays offline through
//! `kpj-fuzz --replay` — turning "that query was slow in production" into
//! a self-contained, reproducible artifact.
//!
//! Dumping is rate-limited by a total-record cap: a latency regression
//! that makes *every* query slow produces a bounded number of files, not
//! a full disk.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use kpj_core::KpjResult;
use kpj_graph::Graph;
use kpj_obs::SpanRecord;

use crate::pool::QueryRequest;

/// Default cap on `.kpjcase` files one recorder writes over its lifetime.
pub const DEFAULT_MAX_RECORDS: u64 = 32;

/// Writes slow queries as replayable `.kpjcase` files. Shared by every
/// pool worker through an `Arc`; all state is atomic.
pub struct FlightRecorder {
    dir: PathBuf,
    threshold: Duration,
    max_records: u64,
    written: AtomicU64,
}

impl FlightRecorder {
    /// Create a recorder writing into `dir` (created if absent) for
    /// queries slower than `threshold`.
    pub fn new(dir: impl Into<PathBuf>, threshold: Duration) -> std::io::Result<FlightRecorder> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FlightRecorder {
            dir,
            threshold,
            max_records: DEFAULT_MAX_RECORDS,
            written: AtomicU64::new(0),
        })
    }

    /// Override the lifetime record cap.
    pub fn with_max_records(mut self, max: u64) -> FlightRecorder {
        self.max_records = max;
        self
    }

    /// The slow-query latency threshold.
    pub fn threshold(&self) -> Duration {
        self.threshold
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written.load(Ordering::Relaxed)
    }

    /// Dump one slow query if `latency` crosses the threshold and the
    /// record cap allows. Returns the path written, if any. I/O failures
    /// are swallowed (the recorder must never take down the serving
    /// path); the reserved slot is not returned on failure, keeping the
    /// cap a true upper bound.
    pub fn maybe_record(
        &self,
        graph: &Graph,
        request: &QueryRequest,
        latency: Duration,
        spans: (&[SpanRecord], &[SpanRecord]),
        result: &KpjResult,
    ) -> Option<PathBuf> {
        if latency < self.threshold {
            return None;
        }
        let seq = self.written.fetch_add(1, Ordering::Relaxed);
        if seq >= self.max_records {
            return None;
        }
        let path = self.dir.join(format!(
            "slow-{seq:04}-{}.kpjcase",
            request.algorithm.name().to_ascii_lowercase()
        ));
        let body = render_case(graph, request, latency, spans, result);
        match std::fs::write(&path, body) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("flight recorder: cannot write {}: {e}", path.display());
                None
            }
        }
    }
}

/// Render the `.kpjcase v1` text: `#` comments (ignored by the parser)
/// carrying the trace, then the replayable case. The graph's full arc
/// list is embedded — the edge list is authoritative for replay, so the
/// file needs nothing but `kpj-fuzz --replay` to reproduce the query.
/// `timeout_ms` is deliberately omitted: replay should be deterministic,
/// not racing the original deadline.
fn render_case(
    graph: &Graph,
    request: &QueryRequest,
    latency: Duration,
    (older, newer): (&[SpanRecord], &[SpanRecord]),
    result: &KpjResult,
) -> String {
    let mut out = String::with_capacity(64 * graph.edge_count().max(16));
    let _ = writeln!(out, "# kpj slow-query flight record");
    let _ = writeln!(out, "# algorithm {}", request.algorithm.name());
    let _ = writeln!(out, "# latency_us {}", latency.as_micros());
    let _ = writeln!(
        out,
        "# lengths {}",
        result
            .paths
            .iter()
            .map(|p| p.length.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    for s in older.iter().chain(newer) {
        let _ = writeln!(
            out,
            "# span {} start_ns {} dur_ns {}",
            s.stage.name(),
            s.start_ns,
            s.dur_ns
        );
    }
    out.push_str("kpjcase v1\nseed 0\ncategory degenerate\n");
    let _ = writeln!(out, "nodes {}", graph.node_count());
    for u in graph.nodes() {
        for e in graph.out_edges(u) {
            let _ = writeln!(out, "edge {u} {} {}", e.to, e.weight);
        }
    }
    let ids = |ids: &[u32]| {
        ids.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    let _ = writeln!(out, "sources {}", ids(&request.sources));
    let _ = writeln!(out, "targets {}", ids(&request.targets));
    let _ = writeln!(out, "k {}", request.k);
    out
}

/// List the `.kpjcase` files a recorder directory holds (test helper and
/// ops convenience), sorted by name.
pub fn list_records(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "kpjcase"))
        .collect();
    out.sort();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_core::{Algorithm, QueryEngine};
    use kpj_graph::GraphBuilder;

    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(1, 2, 1).unwrap();
        b.add_bidirectional(0, 3, 2).unwrap();
        b.add_bidirectional(3, 2, 2).unwrap();
        b.build()
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kpj-flight-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn records_slow_queries_and_respects_the_cap() {
        let g = diamond();
        let dir = temp_dir("cap");
        let rec = FlightRecorder::new(&dir, Duration::ZERO)
            .unwrap()
            .with_max_records(2);
        let req = QueryRequest {
            algorithm: Algorithm::Da,
            sources: vec![0],
            targets: vec![2],
            k: 2,
            timeout_ms: Some(5_000),
        };
        let mut engine = QueryEngine::new(&g);
        let result = engine.query_multi(Algorithm::Da, &[0], &[2], 2).unwrap();
        for i in 0..4 {
            let wrote = rec
                .maybe_record(&g, &req, Duration::from_millis(9), (&[], &[]), &result)
                .is_some();
            assert_eq!(wrote, i < 2, "record {i}");
        }
        let files = list_records(&dir).unwrap();
        assert_eq!(files.len(), 2);
        let text = std::fs::read_to_string(&files[0]).unwrap();
        assert!(text.contains("# algorithm DA"));
        assert!(text.contains("# lengths 2,4"));
        assert!(text.contains("kpjcase v1"));
        assert!(text.contains("sources 0"));
        assert!(text.contains("targets 2"));
        assert!(text.contains("k 2"));
        // timeout_ms must not leak into the replay file.
        assert!(!text.contains("timeout_ms"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fast_queries_are_not_recorded() {
        let g = diamond();
        let dir = temp_dir("fast");
        let rec = FlightRecorder::new(&dir, Duration::from_secs(10)).unwrap();
        let req = QueryRequest {
            algorithm: Algorithm::BestFirst,
            sources: vec![0],
            targets: vec![2],
            k: 1,
            timeout_ms: None,
        };
        let mut engine = QueryEngine::new(&g);
        let result = engine
            .query_multi(Algorithm::BestFirst, &[0], &[2], 1)
            .unwrap();
        assert!(rec
            .maybe_record(&g, &req, Duration::from_millis(1), (&[], &[]), &result)
            .is_none());
        assert_eq!(list_records(&dir).unwrap().len(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
