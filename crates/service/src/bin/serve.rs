//! `kpj-serve` — serve KPJ queries over newline-delimited JSON on TCP.
//!
//! Two graph sources:
//!
//! * `--graph-bin FILE` — a binary graph file. A v2 file is mmapped and
//!   served **zero-copy**: the CSR sections (forward *and* reverse), the
//!   landmark tables and the reorder permutation stay in the page cache,
//!   so cold start is `O(1)` parse work regardless of graph size. A v1
//!   file is loaded onto the heap. If the file records a locality
//!   reorder, clients keep speaking original node ids — the service
//!   translates at the wire boundary.
//! * otherwise a deterministic synthetic road network (`kpj-workload`),
//!   so a client that knows `(nodes, arcs, seed)` can regenerate it and
//!   pick meaningful endpoints — `kpj-loadgen` does exactly that.
//!
//! ```text
//! kpj-serve --nodes 5000 --arcs 12000 --seed 7 --addr 127.0.0.1:7878 \
//!           --workers 4 --queue-cap 256 --cache-cap 4096 --landmarks 8
//! kpj-serve --graph-bin usa.kpj2 --landmarks 0 --addr 127.0.0.1:7878
//! ```

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use kpj_graph::{Graph, NodeRemap, Reduction};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_service::{serve, KpjService, PoolConfig, ServiceConfig};
use kpj_workload::road::RoadConfig;

const USAGE: &str = "kpj-serve: serve top-k shortest path join queries over TCP (NDJSON)

USAGE:
    kpj-serve [OPTIONS]

OPTIONS:
    --addr <ADDR>        listen address          [default: 127.0.0.1:7878]
    --graph-bin <FILE>   serve this graph file (v2 = zero-copy mmap,
                         embedded landmarks/reorder are used; v1 = heap)
    --nodes <N>          road-network nodes      [default: 5000]
    --arcs <M>           road-network arcs       [default: 12000]
    --seed <S>           road-network seed       [default: 7]
    --workers <W>        engine workers, 0=auto  [default: 0]
    --par-max <P>        intra-query threads per worker, 0=off [default: 0]
    --queue-cap <Q>      admission queue bound   [default: 256]
    --cache-cap <C>      result-cache entries    [default: 4096]
    --no-cache           disable the result cache
    --landmarks <L>      landmark count, 0=none  [default: 8]
    --trace-sample <N>   trace 1-in-N queries, 0=off [default: 1]
    --slow-ms <MS>       flight-record queries slower than MS (off by default)
    --flight-dir <DIR>   where slow-query .kpjcase files go
                         [default: kpj-flight-records]

PROTOCOL (one JSON object per line, `id` echoed back, `cmd` = `op`):
    {\"id\":1,\"op\":\"ping\"}
    {\"id\":2,\"op\":\"query\",\"algorithm\":\"iterboundi\",\"sources\":[17],
     \"targets\":[100,2500],\"k\":20,\"timeout_ms\":250,\"paths\":false}
    {\"cmd\":\"metrics\"}    (JSON counters + a `prometheus` text block)
    {\"id\":5,\"op\":\"status\"}   (live gauges + event-journal tail; `kpj-cli top` renders it)
";

struct Opts {
    addr: String,
    graph_bin: Option<String>,
    nodes: usize,
    arcs: usize,
    seed: u64,
    workers: usize,
    par_max: usize,
    queue_cap: usize,
    cache_cap: usize,
    landmarks: usize,
    trace_sample: u32,
    slow_ms: Option<u64>,
    flight_dir: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: "127.0.0.1:7878".to_string(),
        graph_bin: None,
        nodes: 5_000,
        arcs: 12_000,
        seed: 7,
        workers: 0,
        par_max: 0,
        queue_cap: 256,
        cache_cap: 4_096,
        landmarks: 8,
        trace_sample: 1,
        slow_ms: None,
        flight_dir: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {what}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--graph-bin" => opts.graph_bin = Some(value("--graph-bin")?),
            "--nodes" => opts.nodes = num(&value("--nodes")?, "--nodes")?,
            "--arcs" => opts.arcs = num(&value("--arcs")?, "--arcs")?,
            "--seed" => opts.seed = num(&value("--seed")?, "--seed")? as u64,
            "--workers" => opts.workers = num(&value("--workers")?, "--workers")?,
            "--par-max" => opts.par_max = num(&value("--par-max")?, "--par-max")?,
            "--queue-cap" => opts.queue_cap = num(&value("--queue-cap")?, "--queue-cap")?,
            "--cache-cap" => opts.cache_cap = num(&value("--cache-cap")?, "--cache-cap")?,
            "--no-cache" => opts.cache_cap = 0,
            "--landmarks" => opts.landmarks = num(&value("--landmarks")?, "--landmarks")?,
            "--trace-sample" => {
                opts.trace_sample = num(&value("--trace-sample")?, "--trace-sample")? as u32
            }
            "--slow-ms" => opts.slow_ms = Some(num(&value("--slow-ms")?, "--slow-ms")? as u64),
            "--flight-dir" => opts.flight_dir = Some(value("--flight-dir")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn num(s: &str, what: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{what}: `{s}` is not a number"))
}

type GraphParts = (
    Arc<Graph>,
    Option<Arc<LandmarkIndex>>,
    Option<NodeRemap>,
    Option<Reduction>,
    // Bytes of the graph file held by mmap (0 when heap-loaded) — feeds
    // the `mmap_bytes` gauge.
    u64,
);

/// Open `--graph-bin` (v2 = zero-copy mmap with embedded sidecars, v1 =
/// heap) or fall back to generating the synthetic road network.
fn load_graph(opts: &Opts) -> Result<GraphParts, String> {
    let Some(path) = &opts.graph_bin else {
        eprintln!(
            "generating road network: nodes={} arcs={} seed={}",
            opts.nodes, opts.arcs, opts.seed
        );
        let graph = Arc::new(RoadConfig::new(opts.nodes, opts.arcs, opts.seed).generate());
        return Ok((graph, None, None, None, 0));
    };
    let started = Instant::now();
    let bundle = kpj_store::open_any(std::path::Path::new(path))
        .map_err(|e| format!("cannot open {path}: {e}"))?;
    eprintln!(
        "loaded {path}: {} nodes, {} arcs in {:.2} ms ({}{}{}{})",
        bundle.graph.node_count(),
        bundle.graph.edge_count(),
        started.elapsed().as_secs_f64() * 1e3,
        if bundle.is_mapped() {
            "zero-copy mmap"
        } else {
            "heap"
        },
        if bundle.landmarks.is_some() {
            ", embedded landmarks"
        } else {
            ""
        },
        if bundle.remap.is_some() {
            ", reordered"
        } else {
            ""
        },
        if bundle.reduction.is_some() {
            ", reduced"
        } else {
            ""
        },
    );
    let mmap_bytes = if bundle.is_mapped() {
        std::fs::metadata(path).map_or(0, |m| m.len())
    } else {
        0
    };
    Ok((
        Arc::new(bundle.graph),
        bundle.landmarks.map(Arc::new),
        bundle.remap,
        bundle.reduction,
        mmap_bytes,
    ))
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let (graph, mut landmarks, remap, reduction, mmap_bytes) = match load_graph(&opts) {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if landmarks.is_none() && opts.landmarks > 0 {
        eprintln!("building {} landmarks (farthest selection)", opts.landmarks);
        landmarks = Some(Arc::new(kpj_core::offline::build_landmarks_parallel(
            &graph,
            opts.landmarks,
            SelectionStrategy::Farthest,
            opts.seed,
            0,
        )));
    }

    let config = ServiceConfig {
        pool: PoolConfig {
            workers: opts.workers,
            queue_capacity: opts.queue_cap,
            par_threads_max: opts.par_max,
        },
        cache_capacity: opts.cache_cap,
        trace_sample: opts.trace_sample,
        slow_query_ms: opts.slow_ms,
        flight_dir: opts.flight_dir.clone(),
    };
    let reduction = reduction.map(Arc::new);
    if let Some(red) = &reduction {
        eprintln!(
            "graph is reduced ({} original -> {} nodes); answers re-expand to original ids",
            red.original_node_count(),
            red.reduced_node_count(),
        );
    }
    let mut service = KpjService::new_reduced(graph, landmarks, reduction, config);
    if let Some(remap) = remap {
        eprintln!("graph is locality-reordered; translating node ids at the wire");
        service.set_remap(Arc::new(remap));
    }
    service
        .metrics()
        .gauges()
        .set(kpj_service::gauge::MMAP_BYTES, mmap_bytes as i64);
    let service = Arc::new(service);
    if let Some(ms) = opts.slow_ms {
        eprintln!(
            "flight recorder: queries over {ms} ms dump to {}",
            opts.flight_dir.as_deref().unwrap_or("kpj-flight-records")
        );
    }

    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "kpj-serve listening on {} ({} workers, queue {}, cache {})",
        opts.addr,
        service.pool().worker_count(),
        opts.queue_cap,
        opts.cache_cap,
    );
    if let Err(e) = serve(listener, service) {
        eprintln!("error: accept loop failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
