//! `kpj-loadgen` — replay a deterministic KPJ query workload against a
//! running `kpj-serve` and report throughput and latency.
//!
//! The client regenerates the server's road network from the same
//! `(nodes, arcs, seed)` triple, derives the paper's distance-stratified
//! query sets (`kpj-workload`), and fires them over `--connections`
//! parallel TCP connections. By default sources are drawn round-robin
//! from a small pool (cache-friendly); `--unique` widens the pool to the
//! whole query group (cache-hostile).
//!
//! ```text
//! kpj-loadgen --addr 127.0.0.1:7878 --nodes 5000 --arcs 12000 --seed 7 \
//!             --connections 8 --requests 2000 --k 20
//! ```

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use kpj_graph::NodeId;
use kpj_service::json::Json;
use kpj_workload::queries::QuerySets;
use kpj_workload::road::RoadConfig;

const USAGE: &str = "kpj-loadgen: drive a kpj-serve instance and measure it

USAGE:
    kpj-loadgen [OPTIONS]

OPTIONS:
    --addr <ADDR>        server address             [default: 127.0.0.1:7878]
    --nodes <N>          road-network nodes (must match the server)  [default: 5000]
    --arcs <M>           road-network arcs  (must match the server)  [default: 12000]
    --seed <S>           road-network seed  (must match the server)  [default: 7]
    --node-count <N>     don't regenerate the graph; the server holds an
                         arbitrary N-node graph (e.g. kpj-serve --graph-bin)
                         and endpoints are drawn deterministically from 0..N
    --connections <C>    parallel TCP connections   [default: 8]
    --requests <R>       total requests             [default: 2000]
    --k <K>              paths per query            [default: 20]
    --algorithm <ALG>    da|daspt|bestfirst|iterbound|iterboundp|iterboundi
                                                    [default: iterboundi]
    --targets <T>        target-category size       [default: 3]
    --timeout-ms <MS>    per-query deadline         [default: none]
    --unique             draw sources from the whole query group
                         (defeats the result cache)
    --update-rate <P>    make P percent of the request stream weight-update
                         batches (edges drawn from the regenerated graph),
                         interleaved with the queries   [default: 0]
                         (needs the regenerated graph: not valid with
                         --node-count)
    --out <FILE>         also write the run summary as JSON to FILE
                         (machine-readable: counts, status table,
                         throughput, client/server latency quantiles)

Reports client-side (round-trip) and server-side (`server_us`) latency
side by side (update responses carry no `server_us`; they are counted
under the `update` status instead). Exits non-zero if any response line
is malformed.
";

struct Opts {
    addr: String,
    nodes: usize,
    arcs: usize,
    seed: u64,
    node_count: Option<usize>,
    connections: usize,
    requests: usize,
    k: usize,
    algorithm: String,
    targets: usize,
    timeout_ms: Option<u64>,
    unique: bool,
    update_rate: usize,
    out: Option<String>,
}

fn parse_opts() -> Result<Opts, String> {
    let mut opts = Opts {
        addr: "127.0.0.1:7878".to_string(),
        nodes: 5_000,
        arcs: 12_000,
        seed: 7,
        node_count: None,
        connections: 8,
        requests: 2_000,
        k: 20,
        algorithm: "iterboundi".to_string(),
        targets: 3,
        timeout_ms: None,
        unique: false,
        update_rate: 0,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .ok_or_else(|| format!("missing value for {what}"))
        };
        match flag.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--nodes" => opts.nodes = num(&value("--nodes")?, "--nodes")?,
            "--arcs" => opts.arcs = num(&value("--arcs")?, "--arcs")?,
            "--seed" => opts.seed = num(&value("--seed")?, "--seed")? as u64,
            "--node-count" => opts.node_count = Some(num(&value("--node-count")?, "--node-count")?),
            "--connections" => {
                opts.connections = num(&value("--connections")?, "--connections")?.max(1)
            }
            "--requests" => opts.requests = num(&value("--requests")?, "--requests")?,
            "--k" => opts.k = num(&value("--k")?, "--k")?,
            "--algorithm" => opts.algorithm = value("--algorithm")?,
            "--targets" => opts.targets = num(&value("--targets")?, "--targets")?.max(1),
            "--timeout-ms" => {
                opts.timeout_ms = Some(num(&value("--timeout-ms")?, "--timeout-ms")? as u64)
            }
            "--unique" => opts.unique = true,
            "--update-rate" => {
                opts.update_rate = num(&value("--update-rate")?, "--update-rate")?;
                if opts.update_rate > 100 {
                    return Err("--update-rate: percentage must be 0..=100".into());
                }
            }
            "--out" => opts.out = Some(value("--out")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn num(s: &str, what: &str) -> Result<usize, String> {
    s.parse()
        .map_err(|_| format!("{what}: `{s}` is not a number"))
}

/// One request's outcome as seen by the client.
struct Sample {
    /// Round-trip latency measured by this client (includes the socket).
    latency_us: u64,
    /// The server's own `server_us` measurement (queue + engine + encode,
    /// no network); `None` on errors or protocol violations.
    server_us: Option<u64>,
    /// `"ok"`, the server's error code, or a protocol-violation marker.
    status: String,
}

impl Sample {
    /// A response line that violates the wire protocol (as opposed to a
    /// well-formed error) — any of these fails the whole run.
    fn is_malformed(&self) -> bool {
        matches!(
            self.status.as_str(),
            "unparseable_response" | "unparseable_error" | "missing_server_us"
        )
    }
}

fn run_connection(addr: &str, requests: &[String]) -> Result<Vec<Sample>, std::io::Error> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut samples = Vec::with_capacity(requests.len());
    let mut line = String::new();
    for request in requests {
        let started = Instant::now();
        writer.write_all(request.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        let latency_us = started.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let (status, server_us) = match Json::parse(line.trim()) {
            Ok(v) if v.get("ok").and_then(Json::as_bool) == Some(true) => {
                if v.get("epoch").is_some() {
                    // A weight-update acknowledgement: it reports repair
                    // time, not `server_us`, and is tallied separately so
                    // the latency table stays a pure query measurement.
                    ("update".to_string(), None)
                } else {
                    // Every successful query response must carry the
                    // server's own latency; its absence is a protocol
                    // violation.
                    match v.get("server_us").and_then(Json::as_u64) {
                        Some(us) => ("ok".to_string(), Some(us)),
                        None => ("missing_server_us".to_string(), None),
                    }
                }
            }
            Ok(v) => (
                v.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unparseable_error")
                    .to_string(),
                None,
            ),
            Err(_) => ("unparseable_response".to_string(), None),
        };
        samples.push(Sample {
            latency_us,
            server_us,
            status,
        });
    }
    Ok(samples)
}

fn quantile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn fetch_server_metrics(addr: &str) -> Option<String> {
    let stream = TcpStream::connect(addr).ok()?;
    let mut reader = BufReader::new(stream.try_clone().ok()?);
    let mut writer = BufWriter::new(stream);
    writer.write_all(b"{\"id\":0,\"op\":\"metrics\"}\n").ok()?;
    writer.flush().ok()?;
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    Some(line.trim().to_string())
}

fn main() -> ExitCode {
    let opts = match parse_opts() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    // Endpoints: either recreate the server's world and the paper's
    // distance-stratified workload on it, or — when the server holds an
    // arbitrary graph (`--node-count`, e.g. served from a v2 file) — draw
    // a deterministic well-spread sample of 0..N without materialising
    // anything.
    let mut edge_pool: Vec<(NodeId, NodeId)> = Vec::new();
    let (sources, targets) = if let Some(n) = opts.node_count {
        if n == 0 {
            eprintln!("error: --node-count 0");
            return ExitCode::FAILURE;
        }
        if opts.update_rate > 0 {
            // Updates must name real edges; with --node-count the client
            // never materialises the server's graph, so it cannot.
            eprintln!("error: --update-rate requires the regenerated graph (drop --node-count)");
            return ExitCode::FAILURE;
        }
        eprintln!("sampling endpoints from {n} nodes (no graph regeneration)");
        let targets: Vec<NodeId> = (1..=opts.targets)
            .map(|i| (i * n / (opts.targets + 1)) as NodeId)
            .collect();
        let pool_size = if opts.unique { n.min(1_024) } else { n.min(16) };
        // Fibonacci-hash stride: deterministic, well spread over the id
        // space for any n.
        let sources: Vec<NodeId> = (0..pool_size as u64)
            .map(|i| {
                ((i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(opts.seed))
                    % n as u64) as NodeId
            })
            .collect();
        (sources, targets)
    } else {
        eprintln!(
            "regenerating workload: nodes={} arcs={} seed={}",
            opts.nodes, opts.arcs, opts.seed
        );
        let graph = RoadConfig::new(opts.nodes, opts.arcs, opts.seed).generate();
        if opts.update_rate > 0 {
            // A well-spread sample of real edges for the update stream.
            let every = (graph.edge_count() / 1_024).max(1);
            let mut i = 0usize;
            'sample: for u in graph.nodes() {
                for e in graph.out_edges(u) {
                    if i.is_multiple_of(every) {
                        edge_pool.push((u, e.to));
                        if edge_pool.len() >= 1_024 {
                            break 'sample;
                        }
                    }
                    i += 1;
                }
            }
            if edge_pool.is_empty() {
                eprintln!("error: graph has no edges to update");
                return ExitCode::FAILURE;
            }
        }
        let targets: Vec<NodeId> = (1..=opts.targets)
            .map(|i| (i * opts.nodes / (opts.targets + 1)) as NodeId)
            .collect();
        let sets = QuerySets::generate(&graph, &targets, 5, 100, opts.seed);
        let group = sets.default_group();
        if group.is_empty() {
            eprintln!("error: empty query group (graph too small?)");
            return ExitCode::FAILURE;
        }
        // Source pool size controls the cache hit rate of the run.
        let pool_size = if opts.unique {
            group.len()
        } else {
            group.len().min(16)
        };
        (group[..pool_size].to_vec(), targets)
    };
    let target_list = targets
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(",");

    // Pre-render every request line, round-robin over the source pool.
    // With --update-rate P, a Bresenham spread turns P percent of the
    // stream into single-edge weight updates drawn from the edge pool,
    // with deterministic weights — the live-update smoke: queries keep
    // completing (on their pinned epoch) while the graph churns.
    let is_update = |i: usize| (i + 1) * opts.update_rate / 100 > i * opts.update_rate / 100;
    let requests: Vec<String> = (0..opts.requests)
        .map(|i| {
            if opts.update_rate > 0 && is_update(i) {
                let h = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let (u, v) = edge_pool[(h % edge_pool.len() as u64) as usize];
                let w = 1 + (h >> 32) % 2_000;
                return format!("{{\"id\":{i},\"op\":\"update\",\"edges\":[[{u},{v},{w}]]}}");
            }
            let timeout = match opts.timeout_ms {
                Some(ms) => format!(",\"timeout_ms\":{ms}"),
                None => String::new(),
            };
            format!(
                "{{\"id\":{i},\"op\":\"query\",\"algorithm\":\"{}\",\"sources\":[{}],\"targets\":[{}],\"k\":{}{timeout}}}",
                opts.algorithm,
                sources[i % sources.len()],
                target_list,
                opts.k,
            )
        })
        .collect();

    // Shard the requests over the connections and fire.
    let requests = Arc::new(requests);
    let started = Instant::now();
    let handles: Vec<_> = (0..opts.connections)
        .map(|c| {
            let requests = Arc::clone(&requests);
            let addr = opts.addr.clone();
            let connections = opts.connections;
            std::thread::spawn(move || {
                let mine: Vec<String> = requests
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % connections == c)
                    .map(|(_, r)| r.clone())
                    .collect();
                run_connection(&addr, &mine)
            })
        })
        .collect();

    let mut samples = Vec::with_capacity(opts.requests);
    let mut io_errors = 0usize;
    for handle in handles {
        match handle.join().expect("connection thread panicked") {
            Ok(mut s) => samples.append(&mut s),
            Err(e) => {
                eprintln!("connection failed: {e}");
                io_errors += 1;
            }
        }
    }
    let wall = started.elapsed();

    // Aggregate.
    let mut by_status: BTreeMap<String, usize> = BTreeMap::new();
    for s in &samples {
        *by_status.entry(s.status.clone()).or_insert(0) += 1;
    }
    let ok = by_status.get("ok").copied().unwrap_or(0);
    let malformed = samples.iter().filter(|s| s.is_malformed()).count();
    // Updates (epoch swap + landmark repair) are a different operation;
    // keep the latency table a pure query measurement.
    let mut latencies: Vec<u64> = samples
        .iter()
        .filter(|s| s.status != "update")
        .map(|s| s.latency_us)
        .collect();
    latencies.sort_unstable();
    let mut server_latencies: Vec<u64> = samples.iter().filter_map(|s| s.server_us).collect();
    server_latencies.sort_unstable();

    println!(
        "sent={} completed={} ok={} failed_connections={}",
        opts.requests,
        samples.len(),
        ok,
        io_errors
    );
    let statuses = by_status
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("status: {statuses}");
    let secs = wall.as_secs_f64();
    println!(
        "wall={:.3}s throughput={:.0} req/s ({} connections)",
        secs,
        if secs > 0.0 {
            samples.len() as f64 / secs
        } else {
            0.0
        },
        opts.connections
    );
    // Client (round-trip, includes network) and server (`server_us` from
    // each response: queue + engine + encode) latency, side by side — the
    // gap between the two rows is the socket + loadgen overhead.
    println!("latency_us        p50        p90        p99        max");
    for (label, l) in [("client", &latencies), ("server", &server_latencies)] {
        println!(
            "  {label:<8} {:>10} {:>10} {:>10} {:>10}",
            quantile(l, 0.50),
            quantile(l, 0.90),
            quantile(l, 0.99),
            l.last().copied().unwrap_or(0)
        );
    }
    if let Some(metrics) = fetch_server_metrics(&opts.addr) {
        println!("server: {metrics}");
    }

    // --out: the same summary, machine-readable. CI greps this instead of
    // scraping the human table; the exit code is unaffected by the write
    // target existing or not — only by the run itself (below).
    if let Some(path) = &opts.out {
        let quantiles = |l: &[u64]| {
            Json::Obj(vec![
                ("p50".to_string(), Json::from(quantile(l, 0.50))),
                ("p90".to_string(), Json::from(quantile(l, 0.90))),
                ("p99".to_string(), Json::from(quantile(l, 0.99))),
                (
                    "max".to_string(),
                    Json::from(l.last().copied().unwrap_or(0)),
                ),
            ])
        };
        let status = Json::Obj(
            by_status
                .iter()
                .map(|(k, v)| (k.clone(), Json::from(*v)))
                .collect(),
        );
        let report = Json::Obj(vec![
            ("sent".to_string(), Json::from(opts.requests)),
            ("completed".to_string(), Json::from(samples.len())),
            ("ok".to_string(), Json::from(ok)),
            ("failed_connections".to_string(), Json::from(io_errors)),
            ("malformed".to_string(), Json::from(malformed)),
            ("wall_s".to_string(), Json::from(secs)),
            (
                "throughput_rps".to_string(),
                Json::from(if secs > 0.0 {
                    samples.len() as f64 / secs
                } else {
                    0.0
                }),
            ),
            ("status".to_string(), status),
            ("client_us".to_string(), quantiles(&latencies)),
            ("server_us".to_string(), quantiles(&server_latencies)),
        ]);
        match std::fs::write(path, format!("{report}\n")) {
            Ok(()) => eprintln!("report written to {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    if malformed > 0 {
        eprintln!("error: {malformed} malformed response line(s)");
        return ExitCode::FAILURE;
    }
    if samples.is_empty() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
