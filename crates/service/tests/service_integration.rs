//! Integration tests for the serving subsystem: single-flight dedup,
//! pool-vs-sequential equivalence on a seeded road network, admission
//! control under a full queue, and deadline expiry hygiene.

use std::sync::{Arc, Barrier};

use kpj_core::{Algorithm, QueryEngine, QueryError};
use kpj_graph::{Graph, NodeId};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_service::{EnginePool, KpjService, PoolConfig, QueryRequest, ServiceConfig, ServiceError};
use kpj_workload::queries::QuerySets;
use kpj_workload::road::RoadConfig;

fn road(nodes: usize, arcs: usize, seed: u64) -> Arc<Graph> {
    Arc::new(RoadConfig::new(nodes, arcs, seed).generate())
}

fn request(sources: Vec<NodeId>, targets: Vec<NodeId>, k: usize) -> QueryRequest {
    QueryRequest {
        algorithm: Algorithm::IterBoundI,
        sources,
        targets,
        k,
        timeout_ms: None,
    }
}

/// Concurrent identical queries must reach the pool exactly once: one
/// cache miss claims the flight, everyone else either shares it or hits
/// the completed entry.
#[test]
fn single_flight_computes_identical_queries_once() {
    let graph = road(1_000, 2_400, 5);
    let service = Arc::new(KpjService::new(
        Arc::clone(&graph),
        None,
        ServiceConfig {
            pool: PoolConfig {
                workers: 2,
                queue_capacity: 64,
                ..Default::default()
            },
            cache_capacity: 64,
            ..ServiceConfig::default()
        },
    ));

    const CALLERS: usize = 8;
    let barrier = Arc::new(Barrier::new(CALLERS));
    let handles: Vec<_> = (0..CALLERS)
        .map(|_| {
            let service = Arc::clone(&service);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                service.execute(&request(vec![3], vec![700, 900], 10))
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    let lengths: Vec<Vec<u64>> = results
        .iter()
        .map(|r| r.as_ref().unwrap().paths.iter().map(|p| p.length).collect())
        .collect();
    assert!(
        lengths.windows(2).all(|w| w[0] == w[1]),
        "answers diverged: {lengths:?}"
    );

    // The load-bearing claim: however the threads interleaved, the
    // engine pool ran the query exactly once.
    assert_eq!(
        service.pool().executed(),
        1,
        "single-flight failed to dedup"
    );
    let snap = service.snapshot();
    assert_eq!(snap.cache_misses, 1);
    assert_eq!(
        snap.cache_hits + snap.cache_shared,
        (CALLERS - 1) as u64,
        "every other caller must ride the first computation: {snap:?}"
    );
}

/// Permuted and duplicated source/target sets are the same query: the
/// cache key normalizes them, so every variant after the first is a hit
/// with the identical answer and the pool runs the computation once.
#[test]
fn permuted_node_sets_hit_the_cache() {
    let graph = road(1_000, 2_400, 9);
    let service = KpjService::new(
        Arc::clone(&graph),
        None,
        ServiceConfig {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 16,
                ..Default::default()
            },
            cache_capacity: 16,
            ..ServiceConfig::default()
        },
    );

    let variants: [(Vec<NodeId>, Vec<NodeId>); 4] = [
        (vec![3, 40], vec![700, 900]),
        (vec![40, 3], vec![900, 700]),
        (vec![40, 3, 40], vec![700, 900, 700]),
        (vec![3, 3, 40], vec![900, 700, 900, 700]),
    ];
    let baseline = service
        .execute(&request(variants[0].0.clone(), variants[0].1.clone(), 8))
        .unwrap();
    for (sources, targets) in &variants[1..] {
        let got = service
            .execute(&request(sources.clone(), targets.clone(), 8))
            .unwrap();
        let got: Vec<u64> = got.paths.iter().map(|p| p.length).collect();
        let want: Vec<u64> = baseline.paths.iter().map(|p| p.length).collect();
        assert_eq!(got, want, "permuted sets diverged: {sources:?}/{targets:?}");
    }

    assert_eq!(service.pool().executed(), 1, "permutation missed the cache");
    let snap = service.snapshot();
    assert_eq!(snap.cache_misses, 1);
    assert_eq!(snap.cache_hits, (variants.len() - 1) as u64);
}

/// The pool (any worker count) must return exactly what a single
/// sequential engine returns, over a paper-style stratified workload on
/// a seeded road network, with landmarks on both sides.
#[test]
fn pool_matches_single_threaded_engine_on_road_network() {
    let graph = road(2_000, 4_800, 11);
    let landmarks = Arc::new(LandmarkIndex::build(
        &graph,
        4,
        SelectionStrategy::Farthest,
        11,
    ));
    let targets: Vec<NodeId> = vec![3, 700, 1_500];
    let sets = QuerySets::generate(&graph, &targets, 5, 8, 11);

    let pool = EnginePool::new(
        Arc::clone(&graph),
        Some(Arc::clone(&landmarks)),
        PoolConfig {
            workers: 4,
            queue_capacity: 256,
            ..Default::default()
        },
    );
    // Submit the whole workload before collecting so the workers truly
    // run concurrently.
    let mut jobs = Vec::new();
    for group in 1..=sets.group_count() {
        for &source in sets.group(group) {
            for alg in [Algorithm::Da, Algorithm::IterBoundP, Algorithm::IterBoundI] {
                let mut req = request(vec![source], targets.clone(), 10);
                req.algorithm = alg;
                jobs.push((req.clone(), pool.submit(req).unwrap()));
            }
        }
    }

    let mut engine = QueryEngine::new(&graph).with_landmarks(&landmarks);
    for (req, job) in jobs {
        let got = job.wait().unwrap();
        let want = engine
            .query_multi(req.algorithm, &req.sources, &req.targets, req.k)
            .unwrap();
        let got: Vec<u64> = got.paths.iter().map(|p| p.length).collect();
        let want: Vec<u64> = want.paths.iter().map(|p| p.length).collect();
        assert_eq!(got, want, "divergence for {req:?}");
    }
}

/// With the single worker pinned on a slow query and the depth-1 queue
/// already holding a request, the next submission must be rejected.
#[test]
fn full_queue_rejects_with_overloaded() {
    let graph = road(1_500, 3_600, 7);
    let pool = EnginePool::new(
        Arc::clone(&graph),
        None,
        PoolConfig {
            workers: 1,
            queue_capacity: 1,
            ..Default::default()
        },
    );

    // A deviation-paradigm query with a large k: hundreds of full
    // shortest-path computations, far slower than the submissions below.
    let mut slow = request(vec![0], vec![1_400], 200);
    slow.algorithm = Algorithm::Da;
    let slow_job = pool.submit(slow).unwrap();
    // Wait until the worker has *popped* the slow query (the queue is
    // empty again), so the next submit deterministically occupies the
    // only queue slot.
    while pool.executed() < 1 {
        std::thread::yield_now();
    }

    let queued_job = pool.submit(request(vec![1], vec![1_400], 5)).unwrap();
    match pool.submit(request(vec![2], vec![1_400], 5)) {
        Err(ServiceError::Overloaded) => {}
        Err(other) => panic!("expected Overloaded, got {other:?}"),
        Ok(_) => panic!("expected Overloaded, got an admitted job"),
    }

    // Both admitted queries still complete correctly.
    assert!(!slow_job.wait().unwrap().paths.is_empty());
    assert!(!queued_job.wait().unwrap().paths.is_empty());
}

/// An already-expired deadline fails with `DeadlineExceeded` and must
/// not poison the worker's scratch: the very same worker (workers = 1)
/// then answers the identical query correctly.
#[test]
fn deadline_expiry_does_not_poison_worker_scratch() {
    let graph = road(1_000, 2_400, 3);
    let service = KpjService::new(
        Arc::clone(&graph),
        None,
        ServiceConfig {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 16,
                ..Default::default()
            },
            cache_capacity: 16,
            ..ServiceConfig::default()
        },
    );

    for alg in [
        Algorithm::Da,
        Algorithm::DaSpt,
        Algorithm::BestFirst,
        Algorithm::IterBound,
        Algorithm::IterBoundP,
        Algorithm::IterBoundI,
    ] {
        let mut doomed = request(vec![5], vec![800, 950], 8);
        doomed.algorithm = alg;
        doomed.timeout_ms = Some(0);
        match service.execute(&doomed) {
            Err(ServiceError::Query(QueryError::DeadlineExceeded)) => {}
            other => panic!("{alg:?}: expected DeadlineExceeded, got {other:?}"),
        }

        let mut retry = doomed.clone();
        retry.timeout_ms = None;
        let result = service
            .execute(&retry)
            .unwrap_or_else(|e| panic!("{alg:?}: scratch poisoned? retry failed with {e:?}"));
        assert!(!result.paths.is_empty(), "{alg:?}: retry found no paths");
        let lengths: Vec<u64> = result.paths.iter().map(|p| p.length).collect();
        let mut sorted = lengths.clone();
        sorted.sort_unstable();
        assert_eq!(lengths, sorted, "{alg:?}: retry emitted unordered paths");
    }

    let snap = service.snapshot();
    assert_eq!(snap.deadline_exceeded, 6);
    assert_eq!(snap.failures, 6);
    // Failed flights are not cached: each retry was a fresh miss.
    assert_eq!(snap.cache_misses, 12);
}

/// A service over the locality-reordered graph (remap installed, as
/// `kpj-serve --graph-bin` does for reordered v2 files) must be
/// indistinguishable on the wire from one over the original graph:
/// clients send original ids and read back original ids.
#[test]
fn reordered_service_is_wire_equivalent_to_original() {
    let graph = road(800, 1_900, 9);
    let reordered = kpj_store::reorder(&graph);
    assert!(
        !reordered.remap.is_identity(),
        "reorder was a no-op; pick another seed"
    );
    let original = KpjService::new(Arc::clone(&graph), None, ServiceConfig::default());
    let mut remapped = KpjService::new(Arc::new(reordered.graph), None, ServiceConfig::default());
    remapped.set_remap(Arc::new(reordered.remap));

    for (s, ts) in [(3u32, vec![700u32, 420]), (17, vec![99, 500, 750])] {
        let req = request(vec![s], ts, 8);
        let a = original.execute(&req).unwrap();
        let b = remapped.execute(&req).unwrap();
        // Everything up to the stats block — count, lengths and the
        // external-id paths — must match byte for byte. (Stats may
        // differ: the reordered graph is explored in a different node
        // order.)
        let wire = |ans: &kpj_service::Answer| {
            ans.wire_body(true)
                .split(",\"stats\":")
                .next()
                .unwrap()
                .to_string()
        };
        assert_eq!(wire(&a), wire(&b));
    }

    // Out-of-range external ids fail identically to the plain service.
    let bad = remapped.execute(&request(vec![800], vec![3], 2));
    assert!(
        matches!(
            bad,
            Err(ServiceError::Query(QueryError::SourceOutOfRange(800)))
        ),
        "got {bad:?}"
    );
    let bad = remapped.execute(&request(vec![3], vec![801], 2));
    assert!(
        matches!(
            bad,
            Err(ServiceError::Query(QueryError::TargetOutOfRange(801)))
        ),
        "got {bad:?}"
    );
}

/// A service over a *reduced* graph (reduction installed, as `kpj-serve`
/// does for `--reduce` v2 files) must be wire-equivalent to one over the
/// original graph — including across live weight updates that land in
/// the interior of a contracted chain, which are translated to shortcut
/// updates with repaired prefix sums rather than a full re-reduction.
#[test]
fn reduced_service_is_wire_equivalent_across_interior_updates() {
    // Stretch a seeded road network: every undirected edge becomes a
    // 3-hop corridor whose two middle nodes are degree-2 contractible.
    let base = road(220, 520, 11);
    let n0 = base.node_count() as NodeId;
    let mut seen: Vec<(NodeId, NodeId)> = Vec::new();
    let undirected = base.edge_count() / 2;
    let mut b = kpj_graph::GraphBuilder::new(base.node_count() + 2 * undirected);
    let mut next = n0;
    for u in base.nodes() {
        for e in base.out_edges(u) {
            let key = (u.min(e.to), u.max(e.to));
            if u > e.to || seen.contains(&key) {
                continue;
            }
            seen.push(key);
            let (m1, m2) = (next, next + 1);
            next += 2;
            b.add_bidirectional(u, m1, 1).unwrap();
            b.add_bidirectional(m1, m2, e.weight).unwrap();
            b.add_bidirectional(m2, e.to, 1).unwrap();
        }
    }
    let original = Arc::new(b.build());

    let keep: Vec<NodeId> = vec![0, 7, 33, 150];
    let red = kpj_graph::reduce(&original, &keep, &keep);
    assert!(
        red.graph.node_count() < original.node_count(),
        "corridors should contract"
    );
    let reduction = Arc::new(red.reduction);

    let plain = KpjService::new(Arc::clone(&original), None, ServiceConfig::default());
    let reduced = KpjService::new_reduced(
        Arc::new(red.graph),
        None,
        Some(Arc::clone(&reduction)),
        ServiceConfig::default(),
    );

    let wire = |ans: &kpj_service::Answer| {
        ans.wire_body(true)
            .split(",\"stats\":")
            .next()
            .unwrap()
            .to_string()
    };
    let compare = |tag: &str| {
        for (s, ts) in [(0u32, vec![7u32, 33]), (150, vec![0, 7])] {
            let req = request(vec![s], ts, 8);
            let a = plain.execute(&req).unwrap();
            let b = reduced.execute(&req).unwrap();
            assert_eq!(wire(&a), wire(&b), "{tag}: s={s}");
        }
    };
    compare("before update");

    // Hit a chain interior: the corridor stretched from node 0's first
    // base edge starts at (0, n0), so (n0, n0+1) is its middle hop and
    // (0, n0) its first hop — one kept endpoint, one interior.
    assert!(base.out_degree(0) > 0, "node 0 must have a corridor");
    assert!(reduction.is_interior(n0), "corridor middles contract");
    let updates = [
        kpj_graph::WeightUpdate {
            from: n0,
            to: n0 + 1,
            weight: 77,
        },
        kpj_graph::WeightUpdate {
            from: n0 + 1,
            to: n0,
            weight: 91,
        },
        kpj_graph::WeightUpdate {
            from: 0,
            to: n0,
            weight: 5,
        },
    ];
    let a = plain.apply_update(&updates).unwrap();
    let b = reduced.apply_update(&updates).unwrap();
    assert_eq!(a.changed > 0, b.changed > 0, "both services saw a change");
    assert!(b.epoch > 0, "reduced service published a new epoch");
    compare("after interior update");

    // A second round on the same chain proves the replaced reduction's
    // prefix sums are the ones future translations repair against.
    let updates = [kpj_graph::WeightUpdate {
        from: n0,
        to: n0 + 1,
        weight: 3,
    }];
    plain.apply_update(&updates).unwrap();
    reduced.apply_update(&updates).unwrap();
    compare("after second interior update");

    // Contracted endpoints are rejected like unknown ids.
    let bad = reduced.execute(&request(vec![n0], vec![7], 2));
    assert!(
        matches!(
            bad,
            Err(ServiceError::Query(QueryError::SourceOutOfRange(v))) if v == n0
        ),
        "got {bad:?}"
    );
}
