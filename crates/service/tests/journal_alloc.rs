//! The zero-alloc gate for the introspection layer: recording structured
//! events into the [`kpj_obs::EventJournal`] ring and touching the
//! [`kpj_obs::GaugeSet`] must not allocate — both sit on the query and
//! update hot paths of a warmed engine, and the engine-side
//! zero-allocation steady state (see `kpj-core/tests/alloc_count.rs`)
//! must survive with observability enabled.
//!
//! This file is its own integration-test binary on purpose: it installs
//! a process-wide counting allocator, and a single `#[test]` keeps the
//! measured window free of sibling-test noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use kpj_service::metrics::{event, gauge};
use kpj_service::Metrics;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc may move and copy — it counts as an allocation.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Run `f` and return the number of allocations it made, retrying up to
/// three times and keeping the minimum (same one-shot-blip defense as
/// `epoch_pin_alloc.rs`: libtest's main thread lazily allocates a
/// channel context the first time it blocks, which is not ours). A
/// genuine per-event allocation fires on every attempt, so the minimum
/// still gates at zero.
fn min_alloc_delta(mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = alloc_calls();
        f();
        best = best.min(alloc_calls() - before);
    }
    best
}

#[test]
fn recording_events_and_gauges_never_allocates() {
    // Construction allocates (the ring is preallocated here, off the hot
    // path) — that is the point: record() afterwards must not.
    let metrics = Metrics::new();

    // Warm-up: wrap the ring at least once so record() exercises the
    // steady-state slot-reuse path, not first-touch.
    for i in 0..(kpj_service::JOURNAL_CAPACITY as u64 * 2) {
        metrics.record_event(event::EPOCH_PUBLISHED, [i, 1, 2, 3]);
    }
    metrics.gauges().set(gauge::QUEUE_DEPTH, 1);

    let allocated = min_alloc_delta(|| {
        for i in 0..10_000u64 {
            metrics.record_event(event::UPDATE_APPLIED, [i, 10, 20, 30]);
            metrics.gauges().set(gauge::QUEUE_DEPTH, (i % 7) as i64);
            metrics.gauges().add(gauge::BUSY_WORKERS, 1);
            metrics.gauges().add(gauge::BUSY_WORKERS, -1);
        }
    });
    assert_eq!(
        allocated, 0,
        "journal/gauge hot path allocated {allocated} times over 10k cycles"
    );

    // The ring wrapped many times over; nothing was dropped silently —
    // overwrite is the contract, the drop counter reports displacement.
    let journal = metrics.journal();
    assert!(journal.recorded() >= 10_000);
    assert_eq!(
        journal.dropped(),
        journal.recorded() - kpj_service::JOURNAL_CAPACITY as u64
    );

    // Draining the tail is allowed to allocate (it is an ops/debug path),
    // but it must still see the newest events after the hot loop.
    let tail = journal.tail(4);
    assert_eq!(tail.len(), 4);
    assert!(tail.iter().all(|e| e.kind == event::UPDATE_APPLIED));
}
