//! The zero-alloc gate for epoch pinning: admitting a query onto the
//! current graph epoch ([`EpochCell::pin`]) and releasing the pin must
//! not allocate — a pin is a read-lock plus an `Arc` refcount bump, so
//! the engine-side zero-allocation steady state (see
//! `kpj-core/tests/alloc_count.rs`) survives the versioning layer.
//!
//! This file is its own integration-test binary on purpose: it installs
//! a process-wide counting allocator, and a single `#[test]` keeps the
//! measured window free of sibling-test noise.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use kpj_graph::GraphBuilder;
use kpj_service::EpochCell;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc may move and copy — it counts as an allocation.
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_calls() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// Run `f` and return the number of allocations it made, retrying up to
/// three times and keeping the minimum. The counter is process-global and
/// libtest's own main thread lazily initializes a thread-local channel
/// context (two small allocations) the first time it *blocks* waiting for
/// a test event — a one-shot, timing-dependent blip that is not ours
/// (same defense as `kpj-core/tests/alloc_count.rs`). A genuine per-pin
/// allocation fires on every attempt, so the minimum still gates at zero.
fn min_alloc_delta(mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let before = alloc_calls();
        f();
        best = best.min(alloc_calls() - before);
    }
    best
}

#[test]
fn pinning_and_unpinning_an_epoch_never_allocates() {
    let mut b = GraphBuilder::new(3);
    b.add_bidirectional(0, 1, 1).unwrap();
    b.add_bidirectional(1, 2, 1).unwrap();
    let cell = EpochCell::new(Arc::new(b.build()), None);

    // Warm-up: let any lazy one-time state settle.
    for _ in 0..8 {
        let pin = cell.pin();
        assert_eq!(pin.id(), 0);
    }

    let allocated = min_alloc_delta(|| {
        for _ in 0..10_000 {
            let pin = cell.pin();
            std::hint::black_box(pin.id());
            drop(pin);
        }
    });
    assert_eq!(
        allocated, 0,
        "pin/unpin allocated {allocated} times over 10k cycles"
    );

    // Publishing MAY allocate (it builds a new epoch off the hot path),
    // but pins of the fresh epoch must again be allocation-free.
    let mut b = GraphBuilder::new(3);
    b.add_bidirectional(0, 1, 9).unwrap();
    b.add_bidirectional(1, 2, 9).unwrap();
    cell.publish(Arc::new(b.build()), None, 2);
    let allocated = min_alloc_delta(|| {
        for _ in 0..10_000 {
            let pin = cell.pin();
            std::hint::black_box(pin.id());
        }
    });
    assert_eq!(allocated, 0, "post-swap pins allocated");
}
