//! Ground-truth check for the `status` verb: drive a real service with
//! interleaved queries and weight updates, then assert the snapshot's
//! gauges agree with state read directly off the service — not merely
//! that the fields exist. Also proves admission rejections land in the
//! structured event journal.

use std::sync::Arc;

use kpj_core::Algorithm;
use kpj_graph::{Graph, NodeId, WeightUpdate};
use kpj_service::json::Json;
use kpj_service::wire::handle_line;
use kpj_service::{
    event, EnginePool, KpjService, PoolConfig, QueryRequest, ServiceConfig, ServiceError,
};
use kpj_workload::road::RoadConfig;

fn road(nodes: usize, arcs: usize, seed: u64) -> Arc<Graph> {
    Arc::new(RoadConfig::new(nodes, arcs, seed).generate())
}

fn request(sources: Vec<NodeId>, targets: Vec<NodeId>, k: usize) -> QueryRequest {
    QueryRequest {
        algorithm: Algorithm::IterBoundI,
        sources,
        targets,
        k,
        timeout_ms: None,
    }
}

fn status(service: &KpjService) -> Json {
    let reply = Json::parse(&handle_line(service, r#"{"id":1,"op":"status"}"#)).unwrap();
    assert_eq!(reply.get("ok").unwrap().as_bool(), Some(true));
    reply.get("status").unwrap().clone()
}

fn field(s: &Json, path: &[&str]) -> u64 {
    let mut cur = s;
    for key in path {
        cur = cur
            .get(key)
            .unwrap_or_else(|| panic!("status is missing {path:?}"));
    }
    cur.as_u64()
        .unwrap_or_else(|| panic!("{path:?} is not a u64"))
}

/// Interleave queries and updates from several threads, drain, and
/// compare every `status` gauge against the same state read directly:
/// the snapshot must be an honest picture of the service, not a cache
/// of stale numbers.
#[test]
fn status_gauges_agree_with_ground_truth_under_interleaved_load() {
    let graph = road(1_200, 3_000, 13);
    let service = Arc::new(KpjService::new(
        Arc::clone(&graph),
        None,
        ServiceConfig {
            pool: PoolConfig {
                workers: 2,
                queue_capacity: 64,
                ..Default::default()
            },
            cache_capacity: 64,
            ..ServiceConfig::default()
        },
    ));

    const THREADS: usize = 4;
    const ROUNDS: usize = 12;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    if t == 0 && i % 3 == 0 {
                        // A real edge of the seeded network, re-weighted
                        // deterministically: epoch churn under the queries.
                        let u = ((i * 37) % 1_200) as NodeId;
                        let epoch = service.current_epoch();
                        let Some(to) = epoch.graph().out_edges(u).iter().next().map(|e| e.to)
                        else {
                            continue;
                        };
                        drop(epoch);
                        service
                            .apply_update(&[WeightUpdate {
                                from: u,
                                to,
                                weight: 10 + i as u32,
                            }])
                            .unwrap();
                    } else {
                        let s = ((t * 131 + i * 17) % 1_200) as NodeId;
                        service
                            .execute(&request(vec![s], vec![300, 900], 5))
                            .unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let s = status(&service);
    let snap = service.snapshot();

    // Epoch block vs the epoch cell itself.
    assert_eq!(
        field(&s, &["epoch", "current"]),
        service.current_epoch().id(),
        "status epoch disagrees with the pinned epoch"
    );
    assert_eq!(field(&s, &["epoch", "swaps"]), snap.epoch_swaps);
    assert!(
        field(&s, &["epoch", "live"]) >= 1,
        "at least the current epoch is live"
    );

    // Pool block: everything drained, so depth and busy are exactly zero
    // and executed matches the pool's own counter.
    assert_eq!(field(&s, &["pool", "queue_depth"]), 0, "queue not drained");
    assert_eq!(field(&s, &["pool", "busy"]), 0, "workers still busy");
    assert_eq!(field(&s, &["pool", "executed"]), service.pool().executed());
    assert_eq!(field(&s, &["pool", "workers"]), 2);
    assert_eq!(field(&s, &["pool", "rejected"]), 0);

    // Cache block vs a direct shard walk at the same instant.
    let occupancy = service.cache().expect("cache is on").occupancy();
    let ready: usize = occupancy.iter().map(|&(r, _)| r).sum();
    assert_eq!(field(&s, &["cache", "entries"]), ready as u64);
    assert_eq!(
        field(&s, &["cache", "pending"]),
        0,
        "no flight outlives the drain"
    );
    assert_eq!(field(&s, &["cache", "hits"]), snap.cache_hits);
    assert_eq!(field(&s, &["cache", "misses"]), snap.cache_misses);

    // Throughput/updates blocks vs the counter snapshot.
    assert_eq!(field(&s, &["throughput", "queries"]), snap.queries);
    assert_eq!(field(&s, &["throughput", "failures"]), 0);
    assert_eq!(field(&s, &["updates", "epoch_swaps"]), snap.epoch_swaps);
    assert!(snap.epoch_swaps > 0, "the update thread published epochs");
    assert_eq!(field(&s, &["updates", "edges_updated"]), snap.edges_updated);

    // The journal saw every publish: at least one epoch_published + one
    // update_applied per swap (workers may add epoch_shed events when
    // they notice a superseded epoch — timing-dependent), and nothing
    // was dropped (the load fits the ring).
    assert!(
        field(&s, &["events", "recorded"]) >= 2 * snap.epoch_swaps,
        "journal out of step with the epoch swaps"
    );
    assert_eq!(field(&s, &["events", "dropped"]), 0);
    let tail = s.get("events").unwrap().get("tail").unwrap();
    let kinds: Vec<&str> = tail
        .as_arr()
        .unwrap()
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"epoch_published"), "tail: {kinds:?}");
    assert!(kinds.contains(&"update_applied"), "tail: {kinds:?}");

    // Consecutive snapshots advance the sequence number: staleness is
    // detectable.
    let seq1 = field(&s, &["snapshot_seq"]);
    let seq2 = field(&status(&service), &["snapshot_seq"]);
    assert!(
        seq2 > seq1,
        "snapshot_seq did not advance: {seq1} -> {seq2}"
    );
}

/// An admission rejection must increment the rejected counter *and* drop
/// a structured `admission_reject` event carrying the observed depth and
/// capacity, so an operator sees why load was turned away.
#[test]
fn admission_rejections_land_in_the_journal() {
    let graph = road(1_500, 3_600, 7);
    let metrics = Arc::new(kpj_service::Metrics::new());
    let pool = EnginePool::with_hooks(
        Arc::clone(&graph),
        None,
        PoolConfig {
            workers: 1,
            queue_capacity: 1,
            ..Default::default()
        },
        kpj_service::PoolHooks {
            metrics: Some(Arc::clone(&metrics)),
            ..Default::default()
        },
    );

    // Pin the single worker on a slow deviation-paradigm query, then fill
    // the depth-1 queue; the third submission must bounce.
    let mut slow = request(vec![0], vec![1_400], 200);
    slow.algorithm = Algorithm::Da;
    let slow_job = pool.submit(slow).unwrap();
    while pool.executed() < 1 {
        std::thread::yield_now();
    }
    let queued_job = pool.submit(request(vec![1], vec![1_400], 5)).unwrap();
    match pool.submit(request(vec![2], vec![1_400], 5)) {
        Err(ServiceError::Overloaded) => {}
        Err(other) => panic!("expected Overloaded, got {other:?}"),
        Ok(_) => panic!("expected Overloaded, got an admitted job"),
    }

    let tail = metrics.journal().tail(8);
    let reject = tail
        .iter()
        .find(|e| e.kind == event::ADMISSION_REJECT)
        .expect("rejection was journalled");
    assert_eq!(reject.args[0], 1, "observed queue depth at rejection");
    assert_eq!(reject.args[1], 1, "configured capacity");
    // The queue-depth gauge peaked at the full queue.
    assert_eq!(metrics.gauges().peak(kpj_service::gauge::QUEUE_DEPTH), 1);

    assert!(!slow_job.wait().unwrap().paths.is_empty());
    assert!(!queued_job.wait().unwrap().paths.is_empty());
}
