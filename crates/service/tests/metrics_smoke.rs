//! Metrics-exposition smoke test: a real TCP `kpj-serve`-shaped server,
//! a few queries across algorithms, then `{"cmd":"metrics"}` — the
//! response must carry a Prometheus text block with one histogram series
//! per (algorithm, stage) cell and one work-counter series per
//! (algorithm, QueryStats field), all with parseable values. This is the
//! check `ci.sh` runs against the protocol end to end.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use kpj_core::{Algorithm, QueryStats};
use kpj_obs::Stage;
use kpj_service::json::Json;
use kpj_service::{serve, KpjService, PoolConfig, ServiceConfig};
use kpj_workload::road::RoadConfig;

fn start_server() -> String {
    let graph = Arc::new(RoadConfig::new(500, 1_200, 3).generate());
    let service = Arc::new(KpjService::new(
        graph,
        None,
        ServiceConfig {
            pool: PoolConfig {
                workers: 2,
                queue_capacity: 32,
                ..Default::default()
            },
            cache_capacity: 32,
            ..ServiceConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = serve(listener, service);
    });
    addr
}

fn roundtrip(addr: &str, lines: &[String]) -> Vec<String> {
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = BufWriter::new(stream);
    let mut responses = Vec::new();
    for line in lines {
        writer.write_all(line.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).unwrap();
        responses.push(resp.trim().to_string());
    }
    responses
}

#[test]
fn metrics_exposition_covers_every_algorithm_and_stage() {
    let addr = start_server();

    // Exercise a few distinct algorithms so some cells are non-zero.
    let queries: Vec<String> = ["da", "bestfirst", "iterboundi"]
        .iter()
        .enumerate()
        .map(|(i, alg)| {
            format!(
                "{{\"id\":{i},\"op\":\"query\",\"algorithm\":\"{alg}\",\"sources\":[7],\"targets\":[200,400],\"k\":5}}"
            )
        })
        .collect();
    for resp in roundtrip(&addr, &queries) {
        let v = Json::parse(&resp).unwrap();
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{resp}");
        assert!(v.get("server_us").unwrap().as_u64().is_some(), "{resp}");
    }

    let resp = &roundtrip(&addr, &[r#"{"id":99,"cmd":"metrics"}"#.to_string()])[0];
    let v = Json::parse(resp).unwrap();
    assert_eq!(v.get("ok").unwrap().as_bool(), Some(true), "{resp}");
    let prom = v
        .get("prometheus")
        .expect("metrics response carries a prometheus block")
        .as_str()
        .unwrap()
        .to_string();

    // One _count series per (algorithm, stage) — even untouched cells.
    for alg in Algorithm::ALL {
        for stage in Stage::ALL {
            let series = format!(
                "kpj_stage_duration_seconds_count{{algorithm=\"{}\",stage=\"{}\"}}",
                alg.name(),
                stage.name()
            );
            assert!(prom.contains(&series), "missing series {series}");
        }
        for counter in QueryStats::FIELD_NAMES {
            let series = format!(
                "kpj_engine_work_total{{algorithm=\"{}\",counter=\"{counter}\"}}",
                alg.name()
            );
            assert!(prom.contains(&series), "missing series {series}");
        }
    }

    // Every sample line parses: `name{labels} value` with a numeric value.
    let mut samples = 0usize;
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        // Labelled series end in `}`; scalar families (uptime, snapshot
        // sequence) are bare metric names.
        assert!(
            series.ends_with('}')
                || series
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "malformed series: {line}"
        );
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable value in: {line}"
        );
        samples += 1;
    }
    // |Algorithm::ALL| × |Stage::ALL| × (buckets + sum + count) plus
    // counters and events — the exact number is large; just require real
    // coverage, with the floor derived from the authoritative lists so a
    // new algorithm or stage raises it automatically.
    assert!(
        samples > Algorithm::ALL.len() * Stage::ALL.len() * 3,
        "suspiciously few samples: {samples}"
    );

    // The queried algorithms actually recorded work.
    for alg in ["DA", "BestFirst", "IterBoundI"] {
        let needle = format!("kpj_engine_work_total{{algorithm=\"{alg}\",counter=\"settled\"}} ");
        let line = prom
            .lines()
            .find(|l| l.starts_with(&needle))
            .unwrap_or_else(|| panic!("no settled counter for {alg}"));
        let value: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(value > 0, "{alg} settled no nodes: {line}");
    }
}
