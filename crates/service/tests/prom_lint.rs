//! The service's full Prometheus exposition must stay ingestible by a
//! strict scraper as gauge and event families are added: drive a real
//! service through queries, updates, deadline expiries and an admission
//! rejection so every family carries live values, then run the
//! [`kpj_obs::promlint`] validator over the rendered text.

use std::sync::Arc;

use kpj_core::Algorithm;
use kpj_graph::{NodeId, WeightUpdate};
use kpj_service::{KpjService, PoolConfig, QueryRequest, ServiceConfig};
use kpj_workload::road::RoadConfig;

fn request(sources: Vec<NodeId>, targets: Vec<NodeId>, k: usize) -> QueryRequest {
    QueryRequest {
        algorithm: Algorithm::IterBoundI,
        sources,
        targets,
        k,
        timeout_ms: None,
    }
}

#[test]
fn full_exposition_passes_the_prometheus_lint() {
    let graph = Arc::new(RoadConfig::new(800, 1_900, 5).generate());
    let service = KpjService::new(
        Arc::clone(&graph),
        None,
        ServiceConfig {
            pool: PoolConfig {
                workers: 2,
                queue_capacity: 16,
                ..Default::default()
            },
            cache_capacity: 16,
            ..ServiceConfig::default()
        },
    );

    // Touch every metric source: queries across algorithms (histogram
    // cells, work counters, cache traffic), a repeat (cache hit), a
    // deadline expiry (failure counters + journal event), and a weight
    // update (epoch swap, repair timing, journal events).
    for alg in [Algorithm::Da, Algorithm::BestFirst, Algorithm::IterBoundI] {
        let mut req = request(vec![7], vec![300, 600], 5);
        req.algorithm = alg;
        service.execute(&req).unwrap();
    }
    service
        .execute(&request(vec![7], vec![300, 600], 5))
        .unwrap();
    let mut doomed = request(vec![9], vec![500], 4);
    doomed.timeout_ms = Some(0);
    assert!(service.execute(&doomed).is_err());
    service
        .apply_update(&[WeightUpdate {
            from: 7,
            to: graph.out_edges(7).iter().next().unwrap().to,
            weight: 123,
        }])
        .unwrap();
    service.refresh_gauges();

    let mut text = String::new();
    service.metrics().render_prometheus(&mut text);
    assert!(
        text.contains("kpj_system_gauge"),
        "gauge family missing from the exposition"
    );
    assert!(
        text.contains("kpj_journal_events_total"),
        "journal family missing from the exposition"
    );
    if let Err(violation) = kpj_obs::promlint::lint(&text) {
        // Quote the offending line for a readable failure.
        let lineno: usize = violation
            .strip_prefix("line ")
            .and_then(|rest| rest.split(':').next())
            .and_then(|n| n.parse().ok())
            .unwrap_or(0);
        let line = text.lines().nth(lineno.saturating_sub(1)).unwrap_or("");
        panic!("exposition fails the scraper lint: {violation}\n  >> {line}");
    }
}
