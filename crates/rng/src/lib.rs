//! A self-contained pseudo-random number generator, API-compatible with
//! the subset of `rand` 0.8 this workspace uses.
//!
//! The build environment is fully offline (no crates.io access), so the
//! workspace consumes this crate under the dependency name `rand`
//! (`rand = { package = "kpj-rng", path = … }`) instead of the real
//! `rand` crate. The surface is deliberately tiny — exactly what the
//! repo's generators and tests call:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ (the same algorithm `rand` 0.8
//!   uses for `SmallRng` on 64-bit targets), seeded via SplitMix64;
//! * [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and `f64` ranges, [`Rng::gen_bool`];
//! * [`seq::SliceRandom::shuffle`].
//!
//! Streams are deterministic per seed and stable across platforms, but
//! are **not** bit-identical to the real `rand` crate's `gen_range`
//! (which uses a different rejection strategy); workloads generated
//! here are self-consistent, which is all the tests and benchmarks
//! rely on.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically derive a full generator state from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; integer or
    /// `f64`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0, 1], got {p}"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// A `u64` word mapped to `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` by 128-bit multiply-shift (Lemire
/// without the rejection step; bias is ≤ span/2⁶⁴, irrelevant for
/// workload generation).
#[inline]
fn uniform_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the algorithm behind `rand` 0.8's 64-bit
    /// `SmallRng`: fast, small state, excellent statistical quality;
    /// not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 state expansion, as `rand_core` does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations (the `rand::seq::SliceRandom` subset).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same = (0..64).all(|_| a.gen_range(0..u64::MAX) == c.gen_range(0..u64::MAX));
        assert!(!same);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(5..=5usize);
            assert_eq!(v, 5);
            let f = rng.gen_range(0.75..1.35f64);
            assert!((0.75..1.35).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity permutation (astronomically unlikely)"
        );
    }
}
