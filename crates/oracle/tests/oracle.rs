//! The oracle's own CI gate: a seeded sweep must be violation-free, and
//! every checked-in regression case must stay green.

use kpj_oracle::{check_case, parse_case, OracleCase};

/// Fixed-seed sweep across all three graph categories. Small by design —
/// the long arm is the time-boxed `kpj-fuzz` stage in ci.sh.
#[test]
fn seeded_sweep_is_violation_free() {
    for round in 0..60u64 {
        let seed = 0xC0FFEE + round;
        let case = OracleCase::generate(seed);
        if let Err(v) = check_case(&case) {
            panic!(
                "seed {seed} ({} nodes, {} edges, k={}): {v}",
                case.nodes,
                case.edges.len(),
                case.k
            );
        }
    }
}

/// Every `.kpjcase` in `regressions/` is a shrunk reproducer of a fixed
/// bug; the oracle must find nothing in any of them.
#[test]
fn regression_corpus_stays_green() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/regressions");
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("regressions/ directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("kpjcase") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let case = parse_case(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        if let Err(v) = check_case(&case) {
            panic!("{}: regressed: {v}", path.display());
        }
        checked += 1;
    }
    assert!(checked >= 5, "regression corpus went missing ({checked})");
}
