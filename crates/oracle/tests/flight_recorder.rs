//! Slow-query flight-recorder round trip: force the `kpj-service` flight
//! recorder to dump a query (threshold 0 ms ⇒ everything is "slow"),
//! then prove the `.kpjcase` it wrote is a faithful reproducer —
//!
//! 1. it parses with the oracle's own [`parse_case`],
//! 2. rebuilding the graph from the case and re-running the query yields
//!    the *identical* path lengths the service answered with, and
//! 3. the real `kpj-fuzz --replay` binary accepts it end to end.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use kpj_core::{Algorithm, QueryEngine};
use kpj_oracle::parse_case;
use kpj_service::{KpjService, PoolConfig, QueryRequest, ServiceConfig};
use kpj_workload::road::RoadConfig;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("kpj-flight-roundtrip-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn recorded_slow_query_replays_to_the_identical_answer() {
    let dir = temp_dir("oracle");
    let graph = Arc::new(RoadConfig::new(200, 520, 13).generate());
    let service = KpjService::new(
        Arc::clone(&graph),
        None,
        ServiceConfig {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 8,
                ..Default::default()
            },
            // No cache: the query must reach the pool (and the recorder).
            cache_capacity: 0,
            // Threshold 0 ⇒ every completed query counts as slow.
            slow_query_ms: Some(0),
            flight_dir: Some(dir.to_string_lossy().into_owned()),
            ..ServiceConfig::default()
        },
    );
    assert!(service.flight_recorder().is_some(), "recorder not armed");

    let request = QueryRequest {
        algorithm: Algorithm::IterBoundI,
        sources: vec![4],
        targets: vec![150, 190],
        k: 7,
        timeout_ms: None,
    };
    let answer = service.execute(&request).unwrap();
    let served: Vec<u64> = answer.paths.iter().map(|p| p.length).collect();
    assert_eq!(served.len(), 7, "query under-filled; pick other endpoints");

    // The record is written by the worker before the reply is published,
    // so it must exist by now.
    let records = kpj_service::flight::list_records(&dir).unwrap();
    assert_eq!(records.len(), 1, "expected exactly one flight record");
    let record = &records[0];
    let text = std::fs::read_to_string(record).unwrap();
    assert!(text.contains("# algorithm IterBoundI"), "{text}");

    // (1) + (2): parse with the oracle and re-run the query on the graph
    // rebuilt purely from the file.
    let case = parse_case(&text).unwrap();
    assert_eq!(case.sources, request.sources);
    assert_eq!(case.targets, request.targets);
    assert_eq!(case.k, request.k);
    assert_eq!(case.timeout_ms, None, "deadlines must not be replayed");
    let rebuilt = case.graph();
    let mut engine = QueryEngine::new(&rebuilt);
    let replayed = engine
        .query_multi(request.algorithm, &case.sources, &case.targets, case.k)
        .unwrap();
    let replayed: Vec<u64> = replayed.paths.iter().map(|p| p.length).collect();
    assert_eq!(replayed, served, "replay diverged from the served answer");

    // (3): the shipped replay tool accepts the record.
    let output = Command::new(env!("CARGO_BIN_EXE_kpj-fuzz"))
        .arg("--replay")
        .arg(record)
        .output()
        .expect("run kpj-fuzz");
    assert!(
        output.status.success(),
        "kpj-fuzz --replay rejected the record:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );

    let _ = std::fs::remove_dir_all(&dir);
}
