//! kpj-oracle — a differential + metamorphic testing subsystem.
//!
//! The paper's central claim (§5–§6) is that every KPJ algorithm computes
//! the *same* top-k answer set, differing only in cost. That makes
//! cross-algorithm disagreement a free, high-signal bug oracle. This crate
//! industrializes it:
//!
//! | Module | Provides |
//! |---|---|
//! | [`generate`] | seeded random cases: road-like, social-like, chain-heavy (hub-and-corridor graphs that stress degree-2 contraction), and degenerate graphs (self-loops, parallel edges, disconnected components, near-`u32::MAX` weights) plus a query |
//! | [`interleave`] | the live-update oracle: weight-update batches interleaved with queries; after every batch the live service (epoch swap + incremental landmark repair + epoch-scoped cache) must agree bit-for-bit with a freshly built engine — and a reduced mirror of the same service, fed the same batches, must agree after re-expansion |
//! | [`invariants`] | the checker: all engine algorithms × {landmarks, none} must agree, small instances must match the brute-force reference, and the full `kpj-service` wire path (JSON → pool → cache → JSON) must agree with the engine |
//! | [`shrink`] | greedy domain-specific minimization of a failing case (driven by `proptest::shrink::minimize`) |
//! | [`replay`] | the deterministic `.kpjcase` text format the `kpj-fuzz` binary writes on failure and re-runs via `--replay` |
//!
//! Invariants checked per case:
//!
//! 1. identical sorted length multisets across all algorithms, with and
//!    without landmarks;
//! 2. every returned path validates against the graph, is simple, starts
//!    in the source set and ends in the target set (`V_T`), no duplicates,
//!    lengths non-decreasing, at most `k` paths;
//! 3. on small instances (≤ 10 nodes), exact agreement with the
//!    exponential reference enumerator;
//! 4. through the wire: JSON round-trip fidelity, exact echo of an id
//!    above 2^53, response lengths identical to the engine's, and a
//!    permuted-node-set repeat must be served from the cache with the
//!    identical answer (cache-hit ≡ cache-miss);
//! 5. a zero timeout either fails with `deadline_exceeded` or returns the
//!    full answer — and the service must serve the unbounded retry
//!    correctly afterwards (no scratch poisoning);
//! 6. on the BFS locality-reordered graph (the layout v2 storage files
//!    persist), every algorithm with translated endpoints and remapped
//!    landmark tables returns the identical length vector, and every
//!    path mapped back through the inverse permutation is a valid simple
//!    path of the original graph (renumbering changes memory layout,
//!    never answers);
//! 7. on the reduced graph (`kpj_graph::reduce`: degree-2 chains
//!    contracted, `V_S`/`V_T`-unreachable nodes pruned — what `kpj-cli
//!    convert --reduce` persists), every algorithm with fresh landmarks
//!    returns the identical length vector and every re-expanded path is
//!    a valid simple path of the original graph — both on the reduced
//!    graph as-is and composed with the BFS reorder folded into the
//!    reduction (`--reduce --reorder`).
//!
//! The `kpj-fuzz` binary drives seeded sweeps, shrinks any violation to a
//! minimal case, and emits a replay file; see the README quickstart.

#![warn(missing_docs)]

pub mod generate;
pub mod interleave;
pub mod invariants;
pub mod replay;
pub mod shrink;

pub use generate::{GraphCategory, OracleCase};
pub use interleave::check_interleaving;
pub use invariants::{check_case, Violation};
pub use replay::{format_case, parse_case};
pub use shrink::shrink_case;
