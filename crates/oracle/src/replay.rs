//! The `.kpjcase` deterministic replay format.
//!
//! Line-oriented plain text, in the spirit of the DIMACS `.gr` files the
//! paper's experiments use:
//!
//! ```text
//! kpjcase v1
//! # free-form comment lines are ignored
//! seed 42
//! category degenerate
//! nodes 5
//! edge 0 1 4294967295
//! edge 1 2 7
//! sources 0
//! targets 2 4
//! k 3
//! timeout_ms 0
//! ```
//!
//! `timeout_ms` is optional; everything else is required. `kpj-fuzz
//! --replay FILE` re-runs a file through the full checker.

use crate::generate::{GraphCategory, OracleCase};

/// Serialize a case to the text format.
pub fn format_case(case: &OracleCase) -> String {
    let mut out = String::from("kpjcase v1\n");
    out.push_str(&format!("seed {}\n", case.seed));
    out.push_str(&format!("category {}\n", case.category.name()));
    out.push_str(&format!("nodes {}\n", case.nodes));
    for &(u, v, w) in &case.edges {
        out.push_str(&format!("edge {u} {v} {w}\n"));
    }
    let ids = |ids: &[u32]| {
        ids.iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    };
    out.push_str(&format!("sources {}\n", ids(&case.sources)));
    out.push_str(&format!("targets {}\n", ids(&case.targets)));
    out.push_str(&format!("k {}\n", case.k));
    if let Some(ms) = case.timeout_ms {
        out.push_str(&format!("timeout_ms {ms}\n"));
    }
    out
}

/// Parse the text format back into a case, validating id ranges.
pub fn parse_case(text: &str) -> Result<OracleCase, String> {
    // Comment/blank lines may precede the header (kpj-fuzz records the
    // violation there).
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty() && !l.trim_start().starts_with('#'));
    let header = lines
        .next()
        .ok_or_else(|| "empty file".to_string())?
        .1
        .trim();
    if header != "kpjcase v1" {
        return Err(format!("bad header `{header}` (want `kpjcase v1`)"));
    }

    let mut seed: Option<u64> = None;
    let mut category: Option<GraphCategory> = None;
    let mut nodes: Option<u32> = None;
    let mut edges = Vec::new();
    let mut sources: Option<Vec<u32>> = None;
    let mut targets: Option<Vec<u32>> = None;
    let mut k: Option<usize> = None;
    let mut timeout_ms: Option<u64> = None;

    for (i, raw) in lines {
        let line = raw.trim();
        let at = |msg: &str| format!("line {}: {msg}", i + 1);
        let mut it = line.split_ascii_whitespace();
        let key = it.next().expect("non-empty line");
        let rest: Vec<&str> = it.collect();
        let one = |rest: &[&str]| -> Result<String, String> {
            match rest {
                [v] => Ok(v.to_string()),
                _ => Err(at("expected exactly one value")),
            }
        };
        let id_list = |rest: &[&str]| -> Result<Vec<u32>, String> {
            if rest.is_empty() {
                return Err(at("expected at least one id"));
            }
            rest.iter()
                .map(|v| v.parse::<u32>().map_err(|_| at("bad id")))
                .collect()
        };
        match key {
            "seed" => seed = Some(one(&rest)?.parse().map_err(|_| at("bad seed"))?),
            "category" => {
                category =
                    Some(GraphCategory::parse(&one(&rest)?).ok_or_else(|| at("unknown category"))?)
            }
            "nodes" => nodes = Some(one(&rest)?.parse().map_err(|_| at("bad node count"))?),
            "edge" => match rest.as_slice() {
                [u, v, w] => edges.push((
                    u.parse().map_err(|_| at("bad edge endpoint"))?,
                    v.parse().map_err(|_| at("bad edge endpoint"))?,
                    w.parse().map_err(|_| at("bad edge weight"))?,
                )),
                _ => return Err(at("edge wants `edge U V W`")),
            },
            "sources" => sources = Some(id_list(&rest)?),
            "targets" => targets = Some(id_list(&rest)?),
            "k" => k = Some(one(&rest)?.parse().map_err(|_| at("bad k"))?),
            "timeout_ms" => timeout_ms = Some(one(&rest)?.parse().map_err(|_| at("bad timeout"))?),
            other => return Err(at(&format!("unknown directive `{other}`"))),
        }
    }

    let nodes = nodes.ok_or("missing `nodes`")?;
    let case = OracleCase {
        seed: seed.ok_or("missing `seed`")?,
        category: category.ok_or("missing `category`")?,
        nodes,
        edges,
        sources: sources.ok_or("missing `sources`")?,
        targets: targets.ok_or("missing `targets`")?,
        k: k.ok_or("missing `k`")?,
        timeout_ms,
    };
    if case.k == 0 {
        return Err("k must be positive".into());
    }
    let in_range = |ids: &[u32]| ids.iter().all(|&v| v < nodes);
    if !in_range(&case.sources) || !in_range(&case.targets) {
        return Err("source/target id out of range".into());
    }
    if !case.edges.iter().all(|&(u, v, _)| u < nodes && v < nodes) {
        return Err("edge endpoint out of range".into());
    }
    Ok(case)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_generated_cases() {
        for seed in 0..60u64 {
            let case = OracleCase::generate(seed);
            let parsed = parse_case(&format_case(&case)).unwrap();
            assert_eq!(parsed, case, "seed {seed}");
        }
    }

    #[test]
    fn accepts_comments_and_blank_lines() {
        let text = "kpjcase v1\n# a comment\n\nseed 1\ncategory degenerate\nnodes 3\nedge 0 1 5\nedge 1 2 5\nsources 0\ntargets 2\nk 2\n";
        let case = parse_case(text).unwrap();
        assert_eq!(case.nodes, 3);
        assert_eq!(case.edges.len(), 2);
        assert_eq!(case.timeout_ms, None);
    }

    #[test]
    fn rejects_malformed_files() {
        for (text, why) in [
            ("", "empty"),
            ("kpjcase v2\n", "bad version"),
            ("kpjcase v1\nseed 1\n", "missing fields"),
            (
                "kpjcase v1\nseed 1\ncategory degenerate\nnodes 2\nsources 0\ntargets 5\nk 1\n",
                "target out of range",
            ),
            (
                "kpjcase v1\nseed 1\ncategory degenerate\nnodes 2\nedge 0 9 1\nsources 0\ntargets 1\nk 1\n",
                "edge out of range",
            ),
            (
                "kpjcase v1\nseed 1\ncategory degenerate\nnodes 2\nsources 0\ntargets 1\nk 0\n",
                "k = 0",
            ),
            (
                "kpjcase v1\nwibble 3\n",
                "unknown directive",
            ),
        ] {
            assert!(parse_case(text).is_err(), "{why} accepted");
        }
    }
}
