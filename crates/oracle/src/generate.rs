//! Seeded random case generation across three graph categories.

use kpj_graph::{Graph, GraphBuilder, NodeId, Weight};
use kpj_workload::road::RoadConfig;
use kpj_workload::social::SocialConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The topology family a case was drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphCategory {
    /// Near-planar lattice with spanning-tree backbone (kpj-workload).
    RoadLike,
    /// Watts–Strogatz small world (kpj-workload).
    SocialLike,
    /// Adversarial soup: self-loops, parallel edges, disconnected
    /// components, zero and near-`u32::MAX` weights.
    Degenerate,
    /// Hub-and-corridor topology: a few hubs joined by long degree-2
    /// chains, garnished with self-loops, parallel shortcut edges and
    /// dead-end stubs — the family the graph-reduction layer
    /// (`kpj_graph::reduce`) has to get exactly right.
    ChainHeavy,
}

impl GraphCategory {
    /// Stable lower-case token used in replay files.
    pub fn name(self) -> &'static str {
        match self {
            GraphCategory::RoadLike => "road",
            GraphCategory::SocialLike => "social",
            GraphCategory::Degenerate => "degenerate",
            GraphCategory::ChainHeavy => "chain",
        }
    }

    /// Inverse of [`name`](GraphCategory::name).
    pub fn parse(s: &str) -> Option<GraphCategory> {
        match s {
            "road" => Some(GraphCategory::RoadLike),
            "social" => Some(GraphCategory::SocialLike),
            "degenerate" => Some(GraphCategory::Degenerate),
            "chain" => Some(GraphCategory::ChainHeavy),
            _ => None,
        }
    }
}

/// One self-contained oracle input: a graph (as an explicit arc list, so
/// shrinking and replay never depend on generator internals) plus a KPJ
/// query. Node ids are always `< nodes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleCase {
    /// The seed this case was generated from (0 for handcrafted cases).
    pub seed: u64,
    /// Topology family (informational; the edge list is authoritative).
    pub category: GraphCategory,
    /// Number of nodes.
    pub nodes: u32,
    /// Directed arcs `(from, to, weight)`; duplicates and self-loops are
    /// legal.
    pub edges: Vec<(NodeId, NodeId, Weight)>,
    /// Source category `V_S` (non-empty).
    pub sources: Vec<NodeId>,
    /// Target category `V_T` (non-empty).
    pub targets: Vec<NodeId>,
    /// Number of paths requested.
    pub k: usize,
    /// Optional wire-level timeout; `Some(0)` exercises deadline expiry.
    pub timeout_ms: Option<u64>,
}

impl OracleCase {
    /// Deterministically generate the case for `seed`.
    pub fn generate(seed: u64) -> OracleCase {
        let mut rng = SmallRng::seed_from_u64(seed);
        let category = match rng.gen_range(0..5u32) {
            0 => GraphCategory::RoadLike,
            1 => GraphCategory::SocialLike,
            2 => GraphCategory::ChainHeavy,
            // Double weight on the adversarial family: it is where the
            // bugs live.
            _ => GraphCategory::Degenerate,
        };
        let (nodes, edges) = match category {
            GraphCategory::RoadLike => {
                let n = rng.gen_range(9..=36usize);
                let arcs = rng.gen_range(2 * (n - 1)..=3 * n);
                arcs_of(&RoadConfig::new(n, arcs, seed).generate())
            }
            GraphCategory::SocialLike => {
                let n = rng.gen_range(8..=30usize);
                let mut cfg = SocialConfig::new(n, seed);
                cfg.neighbors = rng.gen_range(1..=3);
                arcs_of(&cfg.generate())
            }
            GraphCategory::Degenerate => degenerate_graph(&mut rng),
            GraphCategory::ChainHeavy => chain_heavy_graph(&mut rng),
        };

        let pick = |rng: &mut SmallRng, count: usize| -> Vec<NodeId> {
            (0..count).map(|_| rng.gen_range(0..nodes)).collect()
        };
        let n_sources = rng.gen_range(1..=3usize);
        let sources = pick(&mut rng, n_sources);
        let n_targets = rng.gen_range(1..=3usize);
        let targets = pick(&mut rng, n_targets);
        let k = rng.gen_range(1..=10usize);
        let timeout_ms = if rng.gen_range(0..8u32) == 0 {
            Some(0)
        } else {
            None
        };
        OracleCase {
            seed,
            category,
            nodes,
            edges,
            sources,
            targets,
            k,
            timeout_ms,
        }
    }

    /// Materialize the arc list as a CSR graph.
    pub fn graph(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.nodes as usize, self.edges.len());
        for &(u, v, w) in &self.edges {
            b.add_edge(u, v, w).expect("case ids are in range");
        }
        b.build()
    }

    /// Whether the exponential reference enumerator is affordable.
    pub fn small_enough_for_reference(&self) -> bool {
        self.nodes <= 10
    }
}

fn arcs_of(g: &Graph) -> (u32, Vec<(NodeId, NodeId, Weight)>) {
    let mut edges = Vec::with_capacity(g.edge_count());
    for u in g.nodes() {
        for e in g.out_edges(u) {
            edges.push((u, e.to, e.weight));
        }
    }
    (g.node_count() as u32, edges)
}

/// The adversarial family: every structural edge case the clean
/// generators avoid, on instances small enough for the reference.
fn degenerate_graph(rng: &mut SmallRng) -> (u32, Vec<(NodeId, NodeId, Weight)>) {
    let n = rng.gen_range(2..=10u32);
    let m = rng.gen_range(1..=3 * n as usize);
    // Optionally wall the node set into two components.
    let boundary = if n >= 4 && rng.gen_bool(0.3) {
        Some(n / 2)
    } else {
        None
    };
    let endpoint_pair = |rng: &mut SmallRng| -> (u32, u32) {
        match boundary {
            Some(b) if rng.gen_bool(0.5) => (rng.gen_range(0..b), rng.gen_range(0..b)),
            Some(b) => (rng.gen_range(b..n), rng.gen_range(b..n)),
            None => (rng.gen_range(0..n), rng.gen_range(0..n)),
        }
    };
    let weight = |rng: &mut SmallRng| -> Weight {
        match rng.gen_range(0..4u32) {
            0 => rng.gen_range(0..=5),
            1 => rng.gen_range(Weight::MAX - 5..=Weight::MAX),
            _ => rng.gen_range(1..=1_000),
        }
    };
    let mut edges = Vec::new();
    for _ in 0..m {
        let (u, v) = endpoint_pair(rng);
        let w = weight(rng);
        edges.push((u, v, w));
        if rng.gen_bool(0.2) {
            // Parallel edge with a (possibly) different weight.
            edges.push((u, v, weight(rng)));
        }
        if rng.gen_bool(0.15) {
            edges.push((v, u, w));
        }
    }
    if rng.gen_bool(0.5) {
        let u = rng.gen_range(0..n);
        edges.push((u, u, rng.gen_range(0..=10)));
    }
    (n, edges)
}

/// The reduction-stress family: a handful of hubs joined by long
/// degree-2 corridors. Interiors carry self-loops (contraction must drop
/// them), parallel hop edges (min-normalization), occasional near-MAX
/// weights (chain totals that overflow `u32` must refuse contraction),
/// and a dead-end stub chain that `V_T` pruning should strip whenever no
/// endpoint lands on it. Endpoints are drawn from *all* nodes afterwards,
/// so keep nodes regularly interrupt chain interiors.
fn chain_heavy_graph(rng: &mut SmallRng) -> (u32, Vec<(NodeId, NodeId, Weight)>) {
    let hubs = rng.gen_range(2..=4u32);
    let mut n = hubs;
    let mut edges: Vec<(NodeId, NodeId, Weight)> = Vec::new();
    let weight = |rng: &mut SmallRng| -> Weight {
        match rng.gen_range(0..12u32) {
            0 => 0,
            1 => rng.gen_range(Weight::MAX / 2..=Weight::MAX),
            _ => rng.gen_range(1..=1_000),
        }
    };
    let corridors = rng.gen_range(2..=5usize);
    for _ in 0..corridors {
        let a = rng.gen_range(0..hubs);
        let b = rng.gen_range(0..hubs);
        let bidir = rng.gen_bool(0.6);
        let interior = rng.gen_range(1..=6u32);
        let mut prev = a;
        for _ in 0..interior {
            let mid = n;
            n += 1;
            let w = weight(rng);
            edges.push((prev, mid, w));
            if bidir {
                edges.push((mid, prev, w));
            }
            prev = mid;
        }
        let w = weight(rng);
        edges.push((prev, b, w));
        if bidir {
            edges.push((b, prev, w));
        }
        if rng.gen_bool(0.35) {
            // Self-loop on the last interior node of this corridor.
            edges.push((prev, prev, rng.gen_range(0..=10)));
        }
        if rng.gen_bool(0.35) {
            // Parallel edge over the corridor's final hop.
            edges.push((prev, b, weight(rng)));
        }
    }
    if rng.gen_bool(0.5) {
        // Dead-end stub hanging off a hub: unreachable *from* V_T unless
        // an endpoint happens to land on it, so pruning usually eats it.
        let mut prev = rng.gen_range(0..hubs);
        for _ in 0..rng.gen_range(1..=3u32) {
            let mid = n;
            n += 1;
            edges.push((prev, mid, weight(rng)));
            prev = mid;
        }
    }
    (n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        for seed in 0..40u64 {
            assert_eq!(OracleCase::generate(seed), OracleCase::generate(seed));
        }
        assert_ne!(OracleCase::generate(1), OracleCase::generate(2));
    }

    #[test]
    fn cases_are_well_formed() {
        for seed in 0..200u64 {
            let c = OracleCase::generate(seed);
            assert!(c.nodes >= 2, "seed {seed}");
            assert!(!c.sources.is_empty() && !c.targets.is_empty());
            assert!(c.sources.iter().chain(&c.targets).all(|&v| v < c.nodes));
            assert!(c.edges.iter().all(|&(u, v, _)| u < c.nodes && v < c.nodes));
            assert!((1..=10).contains(&c.k));
            let g = c.graph();
            assert_eq!(g.node_count() as u32, c.nodes);
            assert_eq!(g.edge_count(), c.edges.len());
        }
    }

    #[test]
    fn all_categories_appear() {
        let mut seen = [false; 4];
        for seed in 0..80u64 {
            match OracleCase::generate(seed).category {
                GraphCategory::RoadLike => seen[0] = true,
                GraphCategory::SocialLike => seen[1] = true,
                GraphCategory::Degenerate => seen[2] = true,
                GraphCategory::ChainHeavy => seen[3] = true,
            }
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn chain_family_actually_contracts() {
        let (mut any, mut shrank, mut garnished) = (0u32, 0u32, 0u32);
        for seed in 0..300u64 {
            let c = OracleCase::generate(seed);
            if c.category != GraphCategory::ChainHeavy {
                continue;
            }
            any += 1;
            let g = c.graph();
            let red = kpj_graph::reduce(&g, &c.sources, &c.targets);
            assert!(red.reduction.reduced_node_count() <= g.node_count());
            if red.reduction.reduced_node_count() < g.node_count() {
                shrank += 1;
            }
            if c.edges.iter().any(|&(u, v, _)| u == v) {
                garnished += 1;
            }
        }
        assert!(any >= 10, "chain family barely generated ({any})");
        assert!(
            shrank * 2 > any,
            "reduction rarely bites on the chain family ({shrank}/{any})"
        );
        assert!(garnished > 0, "no self-loops on chain interiors");
    }

    #[test]
    fn degenerate_family_actually_degenerates() {
        let (mut self_loops, mut parallels, mut near_max) = (0u32, 0u32, 0u32);
        for seed in 0..300u64 {
            let c = OracleCase::generate(seed);
            if c.category != GraphCategory::Degenerate {
                continue;
            }
            if c.edges.iter().any(|&(u, v, _)| u == v) {
                self_loops += 1;
            }
            let mut sorted: Vec<_> = c.edges.iter().map(|&(u, v, _)| (u, v)).collect();
            sorted.sort_unstable();
            if sorted.windows(2).any(|w| w[0] == w[1]) {
                parallels += 1;
            }
            if c.edges.iter().any(|&(_, _, w)| w > Weight::MAX - 10) {
                near_max += 1;
            }
        }
        assert!(self_loops > 0, "no self-loops generated");
        assert!(parallels > 0, "no parallel edges generated");
        assert!(near_max > 0, "no near-MAX weights generated");
    }
}
