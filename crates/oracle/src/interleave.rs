//! The live-update oracle: interleave weight-update batches with queries
//! and hold the *live* service — epoch swaps, incremental landmark
//! repair, epoch-scoped cache and all — to a freshly built engine that
//! never saw an update.
//!
//! Per seeded round:
//!
//! 1. a batch of edge re-weightings (drawn from the case's own edge
//!    list, including no-op and repeated updates) is applied through
//!    [`KpjService::apply_update`], exactly as the wire `update` verb
//!    would;
//! 2. the service's repaired landmark tables must be **bit-identical**
//!    to a full rebuild over the same landmark set on the updated graph
//!    (distances are unique scalars, so repair has no legitimate slack);
//! 3. every algorithm × {landmarks, none} on the live service/epoch must
//!    return a [`kpj_graph::PathSet`] bit-identical to a fresh engine
//!    built from scratch on the updated graph;
//! 4. the epoch-scoped cache must serve the *new* answer after the swap
//!    (and hit on the repeat), never a stale pre-update entry;
//! 5. a **reduced mirror** of the same service (degree-2 chains
//!    contracted, unreachable nodes pruned, `kpj_graph::reduce`) receives
//!    every batch in original ids — the service translates updates onto
//!    shortcut edges, re-publishing expansion prefix sums for
//!    chain-interior hits — and after every round its re-expanded answers
//!    must agree with the same fresh reference engine.

use std::sync::Arc;

use kpj_core::{Algorithm, QueryEngine};
use kpj_graph::{Graph, GraphBuilder, Weight, WeightUpdate};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_service::{KpjService, PoolConfig, QueryRequest, ServiceConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::generate::OracleCase;
use crate::invariants::Violation;

fn violation(invariant: &'static str, detail: String) -> Violation {
    Violation { invariant, detail }
}

/// Update batches interleaved per checked seed.
const ROUNDS: usize = 3;

/// Run the interleaving oracle for one seed. `Ok(())` means every round
/// agreed; the first violation is returned otherwise.
pub fn check_interleaving(seed: u64) -> Result<(), Violation> {
    let case = OracleCase::generate(seed);
    if case.edges.is_empty() {
        return Ok(());
    }
    let g0 = case.graph();
    let landmarks0 = Arc::new(LandmarkIndex::build(
        &g0,
        3.min(g0.node_count()),
        SelectionStrategy::Farthest,
        case.seed,
    ));
    let config = ServiceConfig {
        pool: PoolConfig {
            workers: 2,
            queue_capacity: 16,
            ..Default::default()
        },
        cache_capacity: 32,
        ..ServiceConfig::default()
    };
    // The reduced mirror: same case, same batches (in original ids),
    // served through a contracted graph with fresh landmarks built on it.
    let mut red_service = reduced_mirror(&g0, &case, &config);
    let service = KpjService::new(Arc::new(g0), Some(Arc::clone(&landmarks0)), config.clone());

    // The model: the edge list the service's graph must now equal. A
    // weight update rewrites EVERY parallel copy of its (from, to) pair —
    // the only semantics under which forward and reverse CSR views can
    // never drift.
    let mut edges = case.edges.clone();
    // Decorrelate batch randomness from the generator's stream.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);

    // Warm the caches so round 1 proves stale entries are unreachable.
    run_live(&service, &case, Algorithm::ALL[0])?;
    run_live(&red_service, &case, Algorithm::ALL[0])?;

    for round in 0..ROUNDS {
        let batch: Vec<WeightUpdate> = (0..rng.gen_range(1..=4usize))
            .map(|_| {
                let &(from, to, old) = &edges[rng.gen_range(0..edges.len())];
                let weight: Weight = match rng.gen_range(0..5u32) {
                    0 => old, // no-op entry: weight already current
                    1 => rng.gen_range(0..=5),
                    2 => rng.gen_range(Weight::MAX - 5..=Weight::MAX),
                    _ => rng.gen_range(1..=1_000),
                };
                WeightUpdate { from, to, weight }
            })
            .collect();
        for u in &batch {
            for e in edges.iter_mut() {
                if e.0 == u.from && e.1 == u.to {
                    e.2 = u.weight;
                }
            }
        }
        let tag = |what: &str| format!("seed {seed} round {round}: {what}");

        let outcome = service
            .apply_update(&batch)
            .map_err(|e| violation("update-rejected", tag(&format!("{batch:?}: {e}"))))?;

        // Reference state: a graph built from scratch off the model, and
        // the ORIGINAL landmark set fully re-Dijkstra'd over it. (The
        // set must be carried over, not re-selected: Farthest selection
        // depends on the distances being updated.)
        let fresh = {
            let mut b = GraphBuilder::with_capacity(case.nodes as usize, edges.len());
            for &(u, v, w) in &edges {
                b.add_edge(u, v, w).expect("model ids are in range");
            }
            b.build()
        };
        let rebuilt = landmarks0.rebuilt(&fresh);

        let epoch = service.current_epoch();
        if epoch.id() != outcome.epoch {
            return Err(violation(
                "epoch-id",
                tag(&format!(
                    "apply_update reported epoch {} but the service serves {}",
                    outcome.epoch,
                    epoch.id()
                )),
            ));
        }
        let live_lm = epoch
            .landmarks()
            .ok_or_else(|| violation("repair-vs-rebuild", tag("epoch lost its landmarks")))?;
        if **live_lm != rebuilt {
            return Err(violation(
                "repair-vs-rebuild",
                tag("repaired landmark tables != full rebuild"),
            ));
        }

        check_round(&service, &case, &fresh, &rebuilt, &tag)?;

        // The reduced mirror takes the SAME batch in original ids: the
        // service translates kept pairs to reduced edges and folds
        // chain-interior hits into new expansion prefix sums.
        match red_service.apply_update(&batch) {
            Ok(_) => {}
            Err(e) if e.to_string().contains("overflows its chain") => {
                // Documented limitation: a shortcut edge cannot represent
                // a chain total past u32::MAX, so the service rejects the
                // batch wholesale. Re-reduce from the updated model (the
                // overflowing chain now stays uncontracted) and keep
                // checking the remaining rounds.
                red_service = reduced_mirror(&fresh, &case, &config);
            }
            Err(e) => {
                return Err(violation(
                    "reduce-update-rejected",
                    tag(&format!("{batch:?}: {e}")),
                ))
            }
        }
        check_reduced_round(&red_service, &case, &fresh, &tag)?;
    }
    Ok(())
}

/// Build the reduced mirror service for the current model graph:
/// contract/prune for the case's endpoint sets and build fresh landmarks
/// on the reduced graph.
fn reduced_mirror(g: &Graph, case: &OracleCase, config: &ServiceConfig) -> KpjService {
    let red = kpj_graph::reduce(g, &case.sources, &case.targets);
    let landmarks = Arc::new(LandmarkIndex::build(
        &red.graph,
        3.min(red.graph.node_count()),
        SelectionStrategy::Farthest,
        case.seed,
    ));
    KpjService::new_reduced(
        Arc::new(red.graph),
        Some(landmarks),
        Some(Arc::new(red.reduction)),
        config.clone(),
    )
}

/// Post-batch agreement for the reduced mirror: every algorithm through
/// the live reduced service must return the reference length vector, and
/// every re-expanded path must be the reference representative or an
/// equal-length valid simple path of the updated model graph.
fn check_reduced_round(
    service: &KpjService,
    case: &OracleCase,
    fresh: &Graph,
    tag: &dyn Fn(&str) -> String,
) -> Result<(), Violation> {
    let mut reference = QueryEngine::new(fresh);
    for alg in Algorithm::ALL {
        let label = format!("{} (reduced mirror)", alg.name());
        let want = reference
            .query_multi(alg, &case.sources, &case.targets, case.k)
            .map_err(|e| violation("fresh-error", tag(&format!("{label}: {e:?}"))))?;
        let got = run_live(service, case, alg).map_err(|v| Violation {
            invariant: v.invariant,
            detail: tag(&v.detail),
        })?;
        if got.lengths() != want.paths.lengths() {
            return Err(violation(
                "reduce-update-agreement",
                tag(&format!(
                    "{label}: live {:?} != fresh {:?}",
                    got.lengths(),
                    want.paths.lengths()
                )),
            ));
        }
        let mut seen = std::collections::HashSet::new();
        for (i, (pw, pg)) in want.paths.iter().zip(got.iter()).enumerate() {
            if pg.nodes != pw.nodes {
                let expanded = kpj_graph::Path {
                    nodes: pg.nodes.to_vec(),
                    length: pg.length,
                };
                expanded.validate(fresh).map_err(|e| {
                    violation("reduce-update-agreement", tag(&format!("{label}: {e}")))
                })?;
                if !expanded.is_simple()
                    || !case.sources.contains(&expanded.source())
                    || !case.targets.contains(&expanded.destination())
                {
                    return Err(violation(
                        "reduce-update-agreement",
                        tag(&format!("{label}: bad expanded path {:?}", expanded.nodes)),
                    ));
                }
            }
            if !seen.insert(pg.nodes.to_vec()) {
                return Err(violation(
                    "reduce-update-agreement",
                    tag(&format!("{label}: duplicate expanded path {i}")),
                ));
            }
        }
    }
    Ok(())
}

/// One live query through the full service stack (cache → pool).
fn run_live(
    service: &KpjService,
    case: &OracleCase,
    alg: Algorithm,
) -> Result<kpj_graph::PathSet, Violation> {
    let request = QueryRequest {
        algorithm: alg,
        sources: case.sources.clone(),
        targets: case.targets.clone(),
        k: case.k,
        timeout_ms: None,
    };
    service
        .execute(&request)
        .map(|answer| answer.paths.clone())
        .map_err(|e| violation("live-error", format!("{}: {e}", alg.name())))
}

/// Post-batch agreement: live answers (service stack with landmarks,
/// plain engine on the live epoch without) must be bit-identical to a
/// fresh engine on the reference graph, and the repeat must be a cache
/// hit with the same answer.
fn check_round(
    service: &KpjService,
    case: &OracleCase,
    fresh: &Graph,
    rebuilt: &LandmarkIndex,
    tag: &dyn Fn(&str) -> String,
) -> Result<(), Violation> {
    let epoch = service.current_epoch();
    let live_graph: &Graph = epoch.graph();
    for with_lm in [false, true] {
        let mut reference = QueryEngine::new(fresh);
        if with_lm {
            reference = reference.with_landmarks(rebuilt);
        }
        for alg in Algorithm::ALL {
            let label = format!("{} landmarks={with_lm}", alg.name());
            let want = reference
                .query_multi(alg, &case.sources, &case.targets, case.k)
                .map_err(|e| violation("fresh-error", tag(&format!("{label}: {e:?}"))))?;
            let got = if with_lm {
                // Landmark side goes through the whole serving stack —
                // epoch pin, cache key, pool — twice, proving the second
                // answer (a cache hit) is the post-update one.
                let first = run_live(service, case, alg).map_err(|v| Violation {
                    invariant: v.invariant,
                    detail: tag(&v.detail),
                })?;
                let hits = service.snapshot().cache_hits;
                let second = run_live(service, case, alg).map_err(|v| Violation {
                    invariant: v.invariant,
                    detail: tag(&v.detail),
                })?;
                if service.snapshot().cache_hits == hits {
                    return Err(violation(
                        "cache-freshness",
                        tag(&format!("{label}: repeat after swap was not a hit")),
                    ));
                }
                if second != first {
                    return Err(violation(
                        "cache-freshness",
                        tag(&format!("{label}: cache hit diverged from miss")),
                    ));
                }
                first
            } else {
                // Landmark-free variant runs directly on the live epoch's
                // graph (the service always serves with its landmarks).
                QueryEngine::new(live_graph)
                    .query_multi(alg, &case.sources, &case.targets, case.k)
                    .map_err(|e| violation("live-error", tag(&format!("{label}: {e:?}"))))?
                    .paths
            };
            if got != want.paths {
                return Err(violation(
                    "update-agreement",
                    tag(&format!(
                        "{label}: live {:?} != fresh {:?}",
                        got.lengths(),
                        want.paths.lengths()
                    )),
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interleaving_sweep_is_clean() {
        for seed in 0..25u64 {
            if let Err(v) = check_interleaving(seed) {
                panic!("seed {seed}: {v}");
            }
        }
    }

    #[test]
    fn regression_noop_batches_that_normalize_parallel_copies_publish() {
        // Seed 62144's first batch rewrites three pairs back to their
        // effective (min-over-parallel-copies) weights. The original
        // publish rule keyed on effective deltas, skipped the swap, and
        // left the live graph's non-min parallel copies un-normalized —
        // equal-length ties then resolved differently than on a fresh
        // rebuild. Publishing must key on raw copy changes.
        assert!(check_interleaving(62144).is_ok());
    }

    #[test]
    fn checker_is_deterministic() {
        // Same seed, same batches: a second run must agree (and not, for
        // instance, depend on landmark re-selection).
        assert!(check_interleaving(7).is_ok());
        assert!(check_interleaving(7).is_ok());
    }
}
