//! Domain-specific shrinking of failing oracle cases.
//!
//! Candidate moves (most aggressive first) feed the generic greedy
//! minimizer in `proptest::shrink`: halve the edge list, drop single
//! edges, shrink the node range, drop extra sources/targets, lower `k`,
//! simplify weights. Each accepted move must keep the case failing, so
//! the result is a (locally) minimal graph+query still exhibiting the
//! violation.

use kpj_graph::NodeId;
use proptest::shrink::minimize;

use crate::generate::OracleCase;
use crate::invariants::check_case;

/// Cap on property re-runs during shrinking (each one runs every
/// algorithm plus the wire path).
const MAX_SHRINK_STEPS: usize = 400;

/// Only propose per-edge moves below this edge count (quadratic blowup
/// guard; the halving moves get a big case down here first).
const PER_EDGE_LIMIT: usize = 48;

/// Shrink `case` while it keeps failing [`check_case`]. Returns the
/// minimal failing case reached (the input itself if it does not fail or
/// nothing smaller fails).
pub fn shrink_case(case: &OracleCase) -> OracleCase {
    let (min, _steps) = minimize(
        case.clone(),
        candidates,
        |c| check_case(c).is_err(),
        MAX_SHRINK_STEPS,
    );
    min
}

/// All one-step reductions of `case`, most aggressive first.
pub fn candidates(case: &OracleCase) -> Vec<OracleCase> {
    let mut out = Vec::new();

    // Halve the edge list (front and back halves).
    if case.edges.len() > 1 {
        let mid = case.edges.len() / 2;
        out.push(with_edges(case, case.edges[..mid].to_vec()));
        out.push(with_edges(case, case.edges[mid..].to_vec()));
    }

    // Drop extra sources/targets (keep them non-empty).
    for i in 0..case.sources.len() {
        if case.sources.len() > 1 {
            let mut c = case.clone();
            c.sources.remove(i);
            out.push(c);
        }
    }
    for i in 0..case.targets.len() {
        if case.targets.len() > 1 {
            let mut c = case.clone();
            c.targets.remove(i);
            out.push(c);
        }
    }

    // Lower k.
    if case.k > 1 {
        let mut c = case.clone();
        c.k = case.k / 2;
        out.push(c);
        let mut c = case.clone();
        c.k -= 1;
        out.push(c);
    }

    // Drop a timeout (a case failing without one is simpler).
    if case.timeout_ms.is_some() {
        let mut c = case.clone();
        c.timeout_ms = None;
        out.push(c);
    }

    if case.edges.len() <= PER_EDGE_LIMIT {
        // Drop each edge individually.
        for i in 0..case.edges.len() {
            let mut edges = case.edges.clone();
            edges.remove(i);
            out.push(with_edges(case, edges));
        }
        // Simplify each non-trivial weight: to 1, then halved.
        for i in 0..case.edges.len() {
            let w = case.edges[i].2;
            if w > 1 {
                let mut edges = case.edges.clone();
                edges[i].2 = 1;
                out.push(with_edges(case, edges));
            }
            if w > 2 {
                let mut edges = case.edges.clone();
                edges[i].2 = w / 2;
                out.push(with_edges(case, edges));
            }
        }
    }

    out
}

/// Rebuild a case around a reduced edge list, tightening `nodes` to the
/// highest id still referenced.
fn with_edges(case: &OracleCase, edges: Vec<(NodeId, NodeId, u32)>) -> OracleCase {
    let mut c = case.clone();
    let max_id = edges
        .iter()
        .flat_map(|&(u, v, _)| [u, v])
        .chain(c.sources.iter().copied())
        .chain(c.targets.iter().copied())
        .max()
        .unwrap_or(0);
    c.nodes = max_id + 1;
    c.edges = edges;
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::shrink::minimize;

    /// Shrinking against an artificial predicate exercises the candidate
    /// moves without needing a real engine bug: "some edge has weight
    /// over 1000 and a source can see it" reduces to a near-minimal case.
    #[test]
    fn candidate_moves_reach_a_small_fixed_point() {
        let case = OracleCase::generate(123);
        let fails = |c: &OracleCase| c.edges.iter().any(|&(_, _, w)| w > 1_000);
        if !fails(&case) {
            return; // predicate not planted in this seed; nothing to shrink
        }
        let (min, _) = minimize(case, candidates, fails, 10_000);
        assert_eq!(min.edges.len(), 1, "irrelevant edges survived: {min:?}");
        assert!(min.edges[0].2 > 1_000);
        assert_eq!(min.k, 1);
        assert_eq!(min.sources.len(), 1);
        assert_eq!(min.targets.len(), 1);
    }

    #[test]
    fn shrunk_cases_stay_well_formed() {
        let case = OracleCase::generate(7);
        for c in candidates(&case) {
            assert!(!c.sources.is_empty() && !c.targets.is_empty());
            assert!(c.sources.iter().chain(&c.targets).all(|&v| v < c.nodes));
            assert!(c.edges.iter().all(|&(u, v, _)| u < c.nodes && v < c.nodes));
            assert!(c.k >= 1);
            c.graph(); // must not panic
        }
    }

    #[test]
    fn non_failing_case_is_returned_unchanged() {
        let case = OracleCase::generate(5);
        let (min, steps) = minimize(case.clone(), candidates, |_| false, 100);
        assert_eq!(min, case);
        assert!(steps <= candidates(&case).len());
    }
}
