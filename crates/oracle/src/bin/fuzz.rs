//! kpj-fuzz — seeded oracle sweeps with shrinking and replay.
//!
//! ```text
//! kpj-fuzz [--seed N] [--rounds N] [--max-seconds S] [--out FILE]
//! kpj-fuzz --interleave [--seed N] [--rounds N] [--max-seconds S]
//! kpj-fuzz --replay FILE
//! ```
//!
//! Sweep mode generates case `seed`, `seed+1`, … and runs each through the
//! full oracle (all algorithms, reference on small instances, the service
//! wire path). On the first violation the case is shrunk to a minimal
//! reproducer, written as a `.kpjcase` replay file, and the process exits
//! non-zero. `FUZZ_SECONDS` overrides the default time box (30 s) for
//! longer local runs. Replay mode re-runs one `.kpjcase` file and reports.
//!
//! `--interleave` runs the live-update oracle instead: per seed, weight-
//! update batches are applied through a running `KpjService` and after
//! every batch the live epoch (repaired landmarks, epoch-scoped cache)
//! must agree bit-for-bit with a freshly built engine. Interleaving
//! failures are inherently stateful, so they report the seed instead of
//! shrinking to a replay file.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use kpj_oracle::{
    check_case, check_interleaving, format_case, parse_case, shrink_case, OracleCase,
};

struct Args {
    seed: u64,
    rounds: Option<u64>,
    max_seconds: u64,
    out: Option<String>,
    replay: Option<String>,
    interleave: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: kpj-fuzz [--seed N] [--rounds N] [--max-seconds S] [--out FILE]\n       kpj-fuzz --interleave [--seed N] [--rounds N] [--max-seconds S]\n       kpj-fuzz --replay FILE\n\nFUZZ_SECONDS overrides --max-seconds (default 30)."
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let default_seconds = std::env::var("FUZZ_SECONDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let mut args = Args {
        seed: 0xC0FFEE,
        rounds: None,
        max_seconds: default_seconds,
        out: None,
        replay: None,
        interleave: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--seed" => match value("--seed").parse() {
                Ok(v) => args.seed = v,
                Err(_) => usage(),
            },
            "--rounds" => match value("--rounds").parse() {
                Ok(v) => args.rounds = Some(v),
                Err(_) => usage(),
            },
            "--max-seconds" => match value("--max-seconds").parse() {
                Ok(v) => args.max_seconds = v,
                Err(_) => usage(),
            },
            "--out" => args.out = Some(value("--out")),
            "--replay" => args.replay = Some(value("--replay")),
            "--interleave" => args.interleave = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage()
            }
        }
    }
    args
}

fn run_replay(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("kpj-fuzz: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let case = match parse_case(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("kpj-fuzz: {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match check_case(&case) {
        Ok(()) => {
            println!(
                "{path}: ok ({} nodes, {} edges, k={})",
                case.nodes,
                case.edges.len(),
                case.k
            );
            ExitCode::SUCCESS
        }
        Err(v) => {
            eprintln!("{path}: VIOLATION {v}");
            ExitCode::FAILURE
        }
    }
}

fn run_interleave(args: &Args) -> ExitCode {
    let deadline = Instant::now() + Duration::from_secs(args.max_seconds);
    let mut round = 0u64;
    loop {
        if let Some(rounds) = args.rounds {
            if round >= rounds {
                break;
            }
        }
        if Instant::now() >= deadline {
            break;
        }
        let seed = args.seed.wrapping_add(round);
        if let Err(v) = check_interleaving(seed) {
            eprintln!("seed {seed}: VIOLATION {v}");
            eprintln!("re-run with: kpj-fuzz --interleave --seed {seed} --rounds 1");
            return ExitCode::FAILURE;
        }
        round += 1;
    }
    println!(
        "kpj-fuzz: {round} interleaving cases from seed {:#x}, 0 violations",
        args.seed
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = parse_args();
    if let Some(path) = &args.replay {
        return run_replay(path);
    }
    if args.interleave {
        return run_interleave(&args);
    }

    let deadline = Instant::now() + Duration::from_secs(args.max_seconds);
    let mut round = 0u64;
    loop {
        if let Some(rounds) = args.rounds {
            if round >= rounds {
                break;
            }
        }
        if Instant::now() >= deadline {
            break;
        }
        let seed = args.seed.wrapping_add(round);
        let case = OracleCase::generate(seed);
        if let Err(v) = check_case(&case) {
            eprintln!("seed {seed}: VIOLATION {v}");
            eprintln!(
                "original: {} nodes, {} edges, k={} — shrinking…",
                case.nodes,
                case.edges.len(),
                case.k
            );
            let shrunk = shrink_case(&case);
            let (min, still) = match check_case(&shrunk) {
                Err(v2) => (shrunk, v2),
                Ok(()) => {
                    eprintln!("shrink lost the failure; emitting the original case");
                    (case, v)
                }
            };
            let out = args
                .out
                .unwrap_or_else(|| format!("kpj-fuzz-failure-{seed}.kpjcase"));
            let mut text = format!("# {still}\n");
            text.push_str(&format_case(&min));
            if let Err(e) = std::fs::write(&out, &text) {
                eprintln!("cannot write {out}: {e}");
                eprintln!("--- replay file ---\n{text}");
            } else {
                eprintln!(
                    "minimal reproducer ({} nodes, {} edges, k={}) written to {out}",
                    min.nodes,
                    min.edges.len(),
                    min.k
                );
                eprintln!("re-run with: kpj-fuzz --replay {out}");
            }
            return ExitCode::FAILURE;
        }
        round += 1;
    }
    println!(
        "kpj-fuzz: {round} cases from seed {:#x}, 0 violations",
        args.seed
    );
    ExitCode::SUCCESS
}
