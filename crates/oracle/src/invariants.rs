//! The oracle checker: differential agreement + structural and wire
//! invariants for one [`OracleCase`].

use std::sync::Arc;

use kpj_core::{reference, Algorithm, QueryEngine};
use kpj_graph::{Graph, Length};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_service::json::Json;
use kpj_service::wire::handle_line;
use kpj_service::{KpjService, PoolConfig, ServiceConfig};

use crate::generate::OracleCase;

/// An id above 2^53: any `f64` detour in the wire stack rounds it, so
/// every checked case doubles as a JSON integer-precision probe.
const PROBE_ID: u64 = 9_007_199_254_740_993;

/// One invariant violation: which invariant, and enough detail to debug.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable invariant tag (e.g. `algorithm-agreement`, `wire-cache`).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

fn violation(invariant: &'static str, detail: String) -> Violation {
    Violation { invariant, detail }
}

/// Check every oracle invariant for `case`. `Ok(())` means the case found
/// nothing; the first violation is returned otherwise.
pub fn check_case(case: &OracleCase) -> Result<(), Violation> {
    let g = case.graph();
    let baseline = check_engines(case, &g)?;
    check_parallel(case, &g)?;
    check_reference(case, &g, &baseline)?;
    check_reorder(case, &g)?;
    check_reduce(case, &g)?;
    check_wire(case, &baseline)?;
    Ok(())
}

/// Differential stage: every algorithm × {landmarks, none} must return
/// the same length vector with structurally sound paths. Returns the
/// agreed lengths.
fn check_engines(case: &OracleCase, g: &Graph) -> Result<Vec<Length>, Violation> {
    let idx = LandmarkIndex::build(
        g,
        3.min(g.node_count()),
        SelectionStrategy::Farthest,
        case.seed,
    );
    let mut baseline: Option<Vec<Length>> = None;
    for with_lm in [false, true] {
        let mut engine = QueryEngine::new(g);
        if with_lm {
            engine = engine.with_landmarks(&idx);
        }
        for alg in Algorithm::ALL {
            let tag = format!("{} landmarks={with_lm}", alg.name());
            let r = engine
                .query_multi(alg, &case.sources, &case.targets, case.k)
                .map_err(|e| violation("engine-error", format!("{tag}: {e:?}")))?;
            if r.paths.len() > case.k {
                return Err(violation(
                    "path-count",
                    format!("{tag}: {} paths for k={}", r.paths.len(), case.k),
                ));
            }
            let mut seen = std::collections::HashSet::new();
            for p in &r.paths {
                p.validate(g)
                    .map_err(|e| violation("path-valid", format!("{tag}: {e}")))?;
                if !p.is_simple() {
                    return Err(violation(
                        "path-simple",
                        format!("{tag}: loop in {:?}", p.nodes),
                    ));
                }
                if !case.sources.contains(&p.source()) {
                    return Err(violation(
                        "path-endpoints",
                        format!("{tag}: source {} not in V_S", p.source()),
                    ));
                }
                if !case.targets.contains(&p.destination()) {
                    return Err(violation(
                        "path-endpoints",
                        format!("{tag}: destination {} not in V_T", p.destination()),
                    ));
                }
                if !seen.insert(p.nodes.to_vec()) {
                    return Err(violation(
                        "path-dedup",
                        format!("{tag}: duplicate {:?}", p.nodes),
                    ));
                }
            }
            let got: Vec<Length> = r.paths.lengths();
            if !got.windows(2).all(|w| w[0] <= w[1]) {
                return Err(violation("monotone-lengths", tag));
            }
            match &baseline {
                None => baseline = Some(got),
                Some(want) if *want != got => {
                    return Err(violation(
                        "algorithm-agreement",
                        format!("{tag}: {got:?} != agreed {want:?}"),
                    ));
                }
                Some(_) => {}
            }
        }
    }
    Ok(baseline.expect("at least one algorithm ran"))
}

/// Parallel determinism stage: with `par_threads ∈ {2, 4}` every
/// algorithm must return a *bit-identical* [`kpj_graph::PathSet`] (same
/// node sequences, same flat-arena order — not just the same lengths) and
/// identical [`kpj_core::QueryStats`], modulo the two counters that
/// describe the parallelism itself (`rounds_parallel`,
/// `candidates_stolen`, zeroed before comparing). This is the engine's
/// canonical-round-batch contract: thread count changes who executes a
/// round, never the schedule or the merge order.
fn check_parallel(case: &OracleCase, g: &Graph) -> Result<(), Violation> {
    let idx = LandmarkIndex::build(
        g,
        3.min(g.node_count()),
        SelectionStrategy::Farthest,
        case.seed,
    );
    for with_lm in [false, true] {
        // with_par_threads(0) pins the baseline sequential even when the
        // suite itself runs under KPJ_PAR_THREADS (CI does exactly that).
        let mut seq = QueryEngine::new(g).with_par_threads(0);
        if with_lm {
            seq = seq.with_landmarks(&idx);
        }
        for threads in [2usize, 4] {
            let mut par = QueryEngine::new(g).with_par_threads(threads);
            if with_lm {
                par = par.with_landmarks(&idx);
            }
            for alg in Algorithm::ALL {
                let tag = format!("{} landmarks={with_lm} par_threads={threads}", alg.name());
                let s = seq
                    .query_multi(alg, &case.sources, &case.targets, case.k)
                    .map_err(|e| violation("engine-error", format!("{tag} (seq): {e:?}")))?;
                let p = par
                    .query_multi(alg, &case.sources, &case.targets, case.k)
                    .map_err(|e| violation("engine-error", format!("{tag}: {e:?}")))?;
                if p.paths != s.paths {
                    return Err(violation(
                        "par-bit-identical",
                        format!(
                            "{tag}: parallel paths diverge from sequential ({:?} != {:?})",
                            p.paths.lengths(),
                            s.paths.lengths()
                        ),
                    ));
                }
                let mut ps = p.stats;
                ps.rounds_parallel = 0;
                ps.candidates_stolen = 0;
                if ps != s.stats {
                    return Err(violation(
                        "par-stats",
                        format!("{tag}: stats diverge ({ps:?} != {:?})", s.stats),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Storage-reorder stage: run every algorithm on the BFS
/// locality-reordered graph (`kpj_store::reorder`, the layout `kpj-cli
/// convert --reorder` persists into v2 files) with translated endpoints
/// and landmark tables, and map every answer back through the inverse
/// permutation. The length vector must be bit-identical — the top-k
/// length multiset is unique, so renumbering must never change it. The
/// node sequences themselves are compared structurally: each mapped-back
/// path must be a valid, simple path of the *original* graph with the
/// same length, endpoints inside `V_S`/`V_T`, and no duplicates. (Exact
/// sequence equality would over-constrain: the engine breaks exact
/// length ties by node id, and renumbering legitimately picks a
/// different — equally shortest — representative.)
fn check_reorder(case: &OracleCase, g: &Graph) -> Result<(), Violation> {
    let reordered = kpj_store::reorder(g);
    let (rg, remap) = (&reordered.graph, &reordered.remap);
    let translate = |ids: &[u32], what: &str| -> Result<Vec<u32>, Violation> {
        ids.iter()
            .map(|&v| {
                remap.to_internal(v).ok_or_else(|| {
                    violation(
                        "reorder-permutation",
                        format!("{what} id {v} untranslatable"),
                    )
                })
            })
            .collect()
    };
    let sources = translate(&case.sources, "source")?;
    let targets = translate(&case.targets, "target")?;
    let idx = LandmarkIndex::build(
        g,
        3.min(g.node_count()),
        SelectionStrategy::Farthest,
        case.seed,
    );
    let ridx = kpj_store::remap_landmarks(&idx, remap);
    for with_lm in [false, true] {
        let mut orig = QueryEngine::new(g);
        let mut reord = QueryEngine::new(rg);
        if with_lm {
            orig = orig.with_landmarks(&idx);
            reord = reord.with_landmarks(&ridx);
        }
        for alg in Algorithm::ALL {
            let tag = format!("{} landmarks={with_lm} (reordered)", alg.name());
            let a = orig
                .query_multi(alg, &case.sources, &case.targets, case.k)
                .map_err(|e| violation("engine-error", format!("{tag} original: {e:?}")))?;
            let b = reord
                .query_multi(alg, &sources, &targets, case.k)
                .map_err(|e| violation("engine-error", format!("{tag}: {e:?}")))?;
            if a.paths.len() != b.paths.len() || a.paths.lengths() != b.paths.lengths() {
                return Err(violation(
                    "reorder-lengths",
                    format!(
                        "{tag}: {:?} != original {:?}",
                        b.paths.lengths(),
                        a.paths.lengths()
                    ),
                ));
            }
            let mut seen = std::collections::HashSet::new();
            for (i, (pa, pb)) in a.paths.iter().zip(b.paths.iter()).enumerate() {
                let mapped: Vec<u32> = pb.nodes.iter().map(|&v| remap.to_external(v)).collect();
                if mapped == pa.nodes {
                    // Identical representative — nothing more to prove.
                } else if pa.length != pb.length {
                    return Err(violation(
                        "reorder-lengths",
                        format!("{tag}: path {i} length {} != {}", pb.length, pa.length),
                    ));
                } else {
                    // A different (tie) representative: it must still be a
                    // real path of the ORIGINAL graph with this length.
                    let back = kpj_graph::Path {
                        nodes: mapped.clone(),
                        length: pb.length,
                    };
                    back.validate(g)
                        .map_err(|e| violation("reorder-path-valid", format!("{tag}: {e}")))?;
                    if !back.is_simple() {
                        return Err(violation(
                            "reorder-path-valid",
                            format!("{tag}: loop in mapped-back {mapped:?}"),
                        ));
                    }
                    if !case.sources.contains(&back.source())
                        || !case.targets.contains(&back.destination())
                    {
                        return Err(violation(
                            "reorder-path-valid",
                            format!("{tag}: mapped-back endpoints of {mapped:?} escape V_S/V_T"),
                        ));
                    }
                }
                if !seen.insert(mapped) {
                    return Err(violation(
                        "reorder-path-valid",
                        format!("{tag}: duplicate mapped-back path {i}"),
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Graph-reduction stage: contract degree-2 chains and prune nodes that
/// can never lie on a `V_S → V_T` path (`kpj_graph::reduce`, the
/// transform `kpj-cli convert --reduce` persists into v2 files), then run
/// every algorithm on the reduced graph — with landmarks built fresh on
/// it — through [`QueryEngine::with_reduction`], which re-expands every
/// emitted path back to original node ids. The length vector must be
/// bit-identical to the original engine's, and each expanded path must be
/// exactly the original representative or an equal-length valid simple
/// path of the *original* graph with endpoints in `V_S`/`V_T` (same tie
/// caveat as [`check_reorder`]). The whole block runs twice: once on the
/// reduced graph as-is and once on its BFS locality reorder with the
/// permutation folded into the reduction ([`kpj_graph::Reduction::remapped`])
/// — the exact composition `--reduce --reorder` stores.
fn check_reduce(case: &OracleCase, g: &Graph) -> Result<(), Violation> {
    let red = kpj_graph::reduce(g, &case.sources, &case.targets);
    let translate = |ids: &[u32], what: &str| -> Result<Vec<u32>, Violation> {
        ids.iter()
            .map(|&v| {
                red.reduction.to_reduced(v).ok_or_else(|| {
                    violation(
                        "reduce-keep",
                        format!("{what} id {v} was contracted or pruned away"),
                    )
                })
            })
            .collect()
    };
    let sources = translate(&case.sources, "source")?;
    let targets = translate(&case.targets, "target")?;
    let idx = LandmarkIndex::build(
        g,
        3.min(g.node_count()),
        SelectionStrategy::Farthest,
        case.seed,
    );
    // Landmarks are built on the reduced graph (what `convert --reduce`
    // does after dropping the stale originals), not translated.
    let ridx = LandmarkIndex::build(
        &red.graph,
        3.min(red.graph.node_count()),
        SelectionStrategy::Farthest,
        case.seed,
    );
    let reordered = kpj_store::reorder(&red.graph);
    let folded = red
        .reduction
        .remapped(&red.graph, &reordered.remap, &reordered.graph);
    let fold_ids = |ids: &[u32], what: &str| -> Result<Vec<u32>, Violation> {
        ids.iter()
            .map(|&v| {
                reordered.remap.to_internal(v).ok_or_else(|| {
                    violation(
                        "reduce-keep",
                        format!("{what} reduced id {v} untranslatable through reorder"),
                    )
                })
            })
            .collect()
    };
    let fsources = fold_ids(&sources, "source")?;
    let ftargets = fold_ids(&targets, "target")?;
    let fidx = kpj_store::remap_landmarks(&ridx, &reordered.remap);

    type Variant<'a> = (
        &'a str,
        &'a Graph,
        &'a kpj_graph::Reduction,
        &'a LandmarkIndex,
        &'a [u32],
        &'a [u32],
    );
    let variants: [Variant<'_>; 2] = [
        (
            "reduced",
            &red.graph,
            &red.reduction,
            &ridx,
            &sources,
            &targets,
        ),
        (
            "reduced+reordered",
            &reordered.graph,
            &folded,
            &fidx,
            &fsources,
            &ftargets,
        ),
    ];
    for (variant, vg, reduction, vidx, vs, vt) in variants {
        for with_lm in [false, true] {
            let mut orig = QueryEngine::new(g);
            let mut redeng = QueryEngine::new(vg).with_reduction(reduction);
            if with_lm {
                orig = orig.with_landmarks(&idx);
                redeng = redeng.with_landmarks(vidx);
            }
            for alg in Algorithm::ALL {
                let tag = format!("{} landmarks={with_lm} ({variant})", alg.name());
                let a = orig
                    .query_multi(alg, &case.sources, &case.targets, case.k)
                    .map_err(|e| violation("engine-error", format!("{tag} original: {e:?}")))?;
                let b = redeng
                    .query_multi(alg, vs, vt, case.k)
                    .map_err(|e| violation("engine-error", format!("{tag}: {e:?}")))?;
                if a.paths.len() != b.paths.len() || a.paths.lengths() != b.paths.lengths() {
                    return Err(violation(
                        "reduce-lengths",
                        format!(
                            "{tag}: {:?} != original {:?}",
                            b.paths.lengths(),
                            a.paths.lengths()
                        ),
                    ));
                }
                let mut seen = std::collections::HashSet::new();
                for (i, (pa, pb)) in a.paths.iter().zip(b.paths.iter()).enumerate() {
                    // `pb` is already in original ids: the engine expanded
                    // it through the reduction at emit time.
                    if pb.nodes == pa.nodes {
                        // Identical representative — nothing more to prove.
                    } else if pa.length != pb.length {
                        return Err(violation(
                            "reduce-lengths",
                            format!("{tag}: path {i} length {} != {}", pb.length, pa.length),
                        ));
                    } else {
                        let expanded = kpj_graph::Path {
                            nodes: pb.nodes.to_vec(),
                            length: pb.length,
                        };
                        expanded
                            .validate(g)
                            .map_err(|e| violation("reduce-path-valid", format!("{tag}: {e}")))?;
                        if !expanded.is_simple() {
                            return Err(violation(
                                "reduce-path-valid",
                                format!("{tag}: loop in expanded {:?}", expanded.nodes),
                            ));
                        }
                        if !case.sources.contains(&expanded.source())
                            || !case.targets.contains(&expanded.destination())
                        {
                            return Err(violation(
                                "reduce-path-valid",
                                format!(
                                    "{tag}: expanded endpoints of {:?} escape V_S/V_T",
                                    expanded.nodes
                                ),
                            ));
                        }
                    }
                    if !seen.insert(pb.nodes.to_vec()) {
                        return Err(violation(
                            "reduce-path-valid",
                            format!("{tag}: duplicate expanded path {i}"),
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// On small instances, the agreed answer must equal the brute-force
/// enumeration.
fn check_reference(case: &OracleCase, g: &Graph, baseline: &[Length]) -> Result<(), Violation> {
    if !case.small_enough_for_reference() {
        return Ok(());
    }
    let want = reference::top_k_lengths(g, &case.sources, &case.targets, case.k);
    if want != baseline {
        return Err(violation(
            "reference-agreement",
            format!("engines {baseline:?} != brute force {want:?}"),
        ));
    }
    Ok(())
}

fn query_line(case: &OracleCase, alg: Algorithm, sources: &[u32], targets: &[u32]) -> String {
    let list = |ids: &[u32]| {
        let items: Vec<String> = ids.iter().map(|v| v.to_string()).collect();
        format!("[{}]", items.join(","))
    };
    let timeout = match case.timeout_ms {
        Some(ms) => format!(",\"timeout_ms\":{ms}"),
        None => String::new(),
    };
    format!(
        "{{\"id\":{PROBE_ID},\"op\":\"query\",\"algorithm\":\"{}\",\"sources\":{},\"targets\":{},\"k\":{}{timeout}}}",
        alg.name(),
        list(sources),
        list(targets),
        case.k,
    )
}

fn parse_response(resp: &str) -> Result<Json, Violation> {
    let v = Json::parse(resp)
        .map_err(|e| violation("wire-json", format!("unparseable response {resp:?}: {e}")))?;
    // Round-trip fidelity: display ∘ parse must be the identity.
    let rt = Json::parse(&v.to_string())
        .map_err(|e| violation("wire-roundtrip", format!("re-parse failed: {e}")))?;
    if rt != v {
        return Err(violation(
            "wire-roundtrip",
            format!("{v} re-parsed as {rt}"),
        ));
    }
    if v.get("id").and_then(Json::as_u64) != Some(PROBE_ID) {
        return Err(violation(
            "wire-id-precision",
            format!("id {:?} is not the probe id {PROBE_ID}", v.get("id")),
        ));
    }
    Ok(v)
}

fn response_lengths(v: &Json) -> Result<Vec<Length>, Violation> {
    v.get("lengths")
        .and_then(Json::as_arr)
        .ok_or_else(|| violation("wire-shape", format!("missing lengths in {v}")))?
        .iter()
        .map(|l| {
            l.as_u64()
                .ok_or_else(|| violation("wire-shape", format!("non-integer length in {v}")))
        })
        .collect()
}

/// Wire stage: run the query through JSON → pool → cache → JSON and hold
/// the response to the engine-agreed answer; then repeat with permuted,
/// duplicated node sets and demand a cache hit with the identical answer.
fn check_wire(case: &OracleCase, baseline: &[Length]) -> Result<(), Violation> {
    let service = KpjService::new(
        Arc::new(case.graph()),
        None,
        ServiceConfig {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 8,
                ..Default::default()
            },
            cache_capacity: 16,
            ..ServiceConfig::default()
        },
    );
    let alg = Algorithm::ALL[(case.seed % Algorithm::ALL.len() as u64) as usize];

    if case.timeout_ms == Some(0) {
        // Deadline hygiene: a zero budget either dies with
        // `deadline_exceeded` or (for trivially fast answers) completes
        // exactly; either way the unbounded retry must be exact.
        let resp = handle_line(
            &service,
            &query_line(case, alg, &case.sources, &case.targets),
        );
        let v = parse_response(&resp)?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => {
                let got = response_lengths(&v)?;
                if got != baseline {
                    return Err(violation(
                        "wire-agreement",
                        format!("zero-timeout success {got:?} != engine {baseline:?}"),
                    ));
                }
            }
            Some(false) => {
                let code = v.get("error").and_then(Json::as_str).unwrap_or("");
                if code != "deadline_exceeded" {
                    return Err(violation(
                        "wire-deadline",
                        format!("zero timeout failed with `{code}`: {resp}"),
                    ));
                }
            }
            None => return Err(violation("wire-shape", format!("no ok field: {resp}"))),
        }
        let retry = OracleCase {
            timeout_ms: None,
            ..case.clone()
        };
        let resp = handle_line(
            &service,
            &query_line(&retry, alg, &retry.sources, &retry.targets),
        );
        let v = parse_response(&resp)?;
        if v.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(violation(
                "wire-deadline",
                format!("retry after expiry failed: {resp}"),
            ));
        }
        let got = response_lengths(&v)?;
        if got != baseline {
            return Err(violation(
                "wire-deadline",
                format!("retry after expiry {got:?} != engine {baseline:?}"),
            ));
        }
        return Ok(());
    }

    let resp = handle_line(
        &service,
        &query_line(case, alg, &case.sources, &case.targets),
    );
    let v = parse_response(&resp)?;
    if v.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(violation("wire-error", format!("query failed: {resp}")));
    }
    let got = response_lengths(&v)?;
    if got != baseline {
        return Err(violation(
            "wire-agreement",
            format!("wire {got:?} != engine {baseline:?}"),
        ));
    }

    // Metamorphic repeat: reversed order plus a duplicated element is the
    // same query and must be a cache hit with the identical answer.
    let permute = |ids: &[u32]| -> Vec<u32> {
        let mut p: Vec<u32> = ids.iter().rev().copied().collect();
        p.push(ids[0]);
        p
    };
    let resp2 = handle_line(
        &service,
        &query_line(case, alg, &permute(&case.sources), &permute(&case.targets)),
    );
    let v2 = parse_response(&resp2)?;
    let got2 = response_lengths(&v2)?;
    if got2 != got {
        return Err(violation(
            "wire-cache",
            format!("cache-hit answer {got2:?} != cache-miss answer {got:?}"),
        ));
    }
    let snap = service.snapshot();
    if snap.cache_hits != 1 || snap.cache_misses != 1 {
        return Err(violation(
            "wire-cache",
            format!(
                "permuted repeat missed the cache: hits={} misses={}",
                snap.cache_hits, snap.cache_misses
            ),
        ));
    }
    Ok(())
}
