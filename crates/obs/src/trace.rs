//! Zero-allocation structured query tracing.
//!
//! A [`QueryTrace`] is a pre-allocated ring buffer of [`SpanRecord`]s owned
//! by one engine (one pool worker). At the start of each query the owner
//! calls [`QueryTrace::begin`], which applies the runtime sampling knob;
//! stage-scoped code then brackets work with [`QueryTrace::start`] /
//! [`QueryTrace::record`]. When the query is not sampled, `start` returns
//! an inert [`Tick`] and both calls cost one branch.
//!
//! Without the `trace` cargo feature every type here except
//! [`Stage`]/[`SpanRecord`] is a zero-sized no-op with the same API, so
//! call sites need no `cfg` of their own and the compiler deletes them.

/// The stage taxonomy: where a query's wall time can go.
///
/// `QueueWait`, `CacheLookup`, `Encode` and `Total` are observed by the
/// serving layer; the rest are recorded inside the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Time between admission and a pool worker picking the job up.
    QueueWait,
    /// Result-cache probe (hit or miss).
    CacheLookup,
    /// Landmark δ-table assembly (`TargetsLb`/`SourceLb` construction).
    LandmarkBounds,
    /// Shortest-path-tree construction: DA-SPT's full reverse SPT,
    /// `SPT_P`/`SPT_I` builds, and τ-driven `prepare_tau` regrowth.
    SptBuild,
    /// One full (unbounded) constrained shortest-path search.
    SpSearch,
    /// One deviation round: pop a candidate, emit it, divide its subspace.
    DeviationRound,
    /// One parallel fan-out: a round batch of candidate searches dispatched
    /// to the intra-query worker pool, merged in subspace-index order.
    ParFanout,
    /// Rendering the wire response body.
    Encode,
    /// End-to-end service latency (admission to reply).
    Total,
}

impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 9;

    /// Every stage, in display order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::QueueWait,
        Stage::CacheLookup,
        Stage::LandmarkBounds,
        Stage::SptBuild,
        Stage::SpSearch,
        Stage::DeviationRound,
        Stage::ParFanout,
        Stage::Encode,
        Stage::Total,
    ];

    /// Dense index for registry cells.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case label used in metric series.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::CacheLookup => "cache_lookup",
            Stage::LandmarkBounds => "landmark_bounds",
            Stage::SptBuild => "spt_build",
            Stage::SpSearch => "sp_search",
            Stage::DeviationRound => "deviation_round",
            Stage::ParFanout => "par_fanout",
            Stage::Encode => "encode",
            Stage::Total => "total",
        }
    }
}

/// One recorded span: a stage, its start offset from the query epoch, and
/// its duration. Nanosecond resolution (a deviation round can be sub-µs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Which stage this span timed.
    pub stage: Stage,
    /// Start, nanoseconds since [`QueryTrace::begin`].
    pub start_ns: u64,
    /// Duration, nanoseconds.
    pub dur_ns: u64,
}

/// Default ring capacity: enough for every one-shot stage plus ~250
/// deviation rounds; k rarely exceeds that, and the ring wraps (keeping
/// the newest spans) when it does.
pub const DEFAULT_SPAN_CAPACITY: usize = 256;

#[cfg(feature = "trace")]
mod imp {
    use super::{SpanRecord, Stage};
    use std::time::Instant;

    /// An opaque timestamp from [`QueryTrace::start`]. Inert (and free to
    /// drop) when the query is not sampled.
    #[derive(Clone, Copy)]
    pub struct Tick(Option<Instant>);

    /// Pre-allocated span ring buffer for one engine. See the module docs.
    pub struct QueryTrace {
        spans: Box<[SpanRecord]>,
        /// Next write position.
        head: usize,
        /// Recorded spans, saturating at capacity.
        len: usize,
        /// Spans lost to ring wrap-around since `begin`.
        dropped: u64,
        epoch: Instant,
        active: bool,
        sample_every: u32,
        /// Queries until the next sampled one.
        countdown: u32,
    }

    impl QueryTrace {
        /// Allocate a ring of `capacity` spans (the only allocation this
        /// type ever performs). Sampling defaults to every query.
        pub fn new(capacity: usize) -> QueryTrace {
            let filler = SpanRecord {
                stage: Stage::Total,
                start_ns: 0,
                dur_ns: 0,
            };
            QueryTrace {
                spans: vec![filler; capacity.max(1)].into_boxed_slice(),
                head: 0,
                len: 0,
                dropped: 0,
                epoch: Instant::now(),
                active: false,
                sample_every: 1,
                countdown: 0,
            }
        }

        /// Set the sampling rate: trace every `every`-th query; `0`
        /// disables tracing at runtime.
        pub fn set_sampling(&mut self, every: u32) {
            self.sample_every = every;
            self.countdown = 0;
        }

        /// Current sampling rate.
        pub fn sampling(&self) -> u32 {
            self.sample_every
        }

        /// Start a new query: clear the ring, apply the sampling decision
        /// and (when sampled) stamp the epoch. Returns whether this query
        /// is being traced.
        pub fn begin(&mut self) -> bool {
            self.head = 0;
            self.len = 0;
            self.dropped = 0;
            if self.sample_every == 0 {
                self.active = false;
            } else if self.countdown == 0 {
                self.countdown = self.sample_every - 1;
                self.active = true;
                self.epoch = Instant::now();
            } else {
                self.countdown -= 1;
                self.active = false;
            }
            self.active
        }

        /// Whether the current query is being traced.
        pub fn is_active(&self) -> bool {
            self.active
        }

        /// Take a timestamp for a span about to start.
        #[inline]
        pub fn start(&self) -> Tick {
            Tick(if self.active {
                Some(Instant::now())
            } else {
                None
            })
        }

        /// Close the span opened by `tick` and record it under `stage`.
        #[inline]
        pub fn record(&mut self, stage: Stage, tick: Tick) {
            let Some(t0) = tick.0 else { return };
            if !self.active {
                return;
            }
            let start_ns = t0
                .duration_since(self.epoch)
                .as_nanos()
                .min(u64::MAX as u128) as u64;
            let dur_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.push(SpanRecord {
                stage,
                start_ns,
                dur_ns,
            });
        }

        fn push(&mut self, span: SpanRecord) {
            self.spans[self.head] = span;
            self.head = (self.head + 1) % self.spans.len();
            if self.len < self.spans.len() {
                self.len += 1;
            } else {
                self.dropped += 1;
            }
        }

        /// The recorded spans in chronological order, as (older, newer)
        /// ring halves — concatenate to iterate.
        pub fn spans(&self) -> (&[SpanRecord], &[SpanRecord]) {
            if self.len < self.spans.len() {
                (&self.spans[..self.len], &[])
            } else {
                (&self.spans[self.head..], &self.spans[..self.head])
            }
        }

        /// Spans lost to ring wrap-around during the current query.
        pub fn dropped(&self) -> u64 {
            self.dropped
        }
    }
}

#[cfg(not(feature = "trace"))]
mod imp {
    use super::{SpanRecord, Stage};

    /// Inert timestamp (the `trace` feature is off).
    #[derive(Clone, Copy)]
    pub struct Tick;

    /// No-op tracer (the `trace` feature is off): every method compiles
    /// to nothing and the type is zero-sized.
    pub struct QueryTrace;

    impl QueryTrace {
        /// No-op constructor.
        pub fn new(_capacity: usize) -> QueryTrace {
            QueryTrace
        }

        /// No-op: the sampling knob does not exist without `trace`.
        pub fn set_sampling(&mut self, _every: u32) {}

        /// Always 0 (tracing compiled out).
        pub fn sampling(&self) -> u32 {
            0
        }

        /// Always inactive.
        pub fn begin(&mut self) -> bool {
            false
        }

        /// Always false.
        pub fn is_active(&self) -> bool {
            false
        }

        /// Returns the inert [`Tick`].
        #[inline]
        pub fn start(&self) -> Tick {
            Tick
        }

        /// No-op.
        #[inline]
        pub fn record(&mut self, _stage: Stage, _tick: Tick) {}

        /// Always empty.
        pub fn spans(&self) -> (&[SpanRecord], &[SpanRecord]) {
            (&[], &[])
        }

        /// Always 0.
        pub fn dropped(&self) -> u64 {
            0
        }
    }
}

pub use imp::{QueryTrace, Tick};

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn records_spans_in_order_with_epoch_relative_starts() {
        let mut t = QueryTrace::new(8);
        assert!(t.begin());
        let a = t.start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        t.record(Stage::SpSearch, a);
        let b = t.start();
        t.record(Stage::DeviationRound, b);
        let (older, newer) = t.spans();
        assert!(newer.is_empty());
        assert_eq!(older.len(), 2);
        assert_eq!(older[0].stage, Stage::SpSearch);
        assert!(older[0].dur_ns >= 1_000_000);
        assert!(older[1].start_ns >= older[0].start_ns);
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_wraps_keeping_the_newest_spans() {
        let mut t = QueryTrace::new(4);
        assert!(t.begin());
        for _ in 0..6 {
            let tick = t.start();
            t.record(Stage::DeviationRound, tick);
        }
        let (older, newer) = t.spans();
        assert_eq!(older.len() + newer.len(), 4);
        assert_eq!(t.dropped(), 2);
        // Chronological: every span starts no earlier than its predecessor.
        let all: Vec<_> = older.iter().chain(newer).collect();
        assert!(all.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
    }

    #[test]
    fn sampling_skips_queries_and_zero_disables() {
        let mut t = QueryTrace::new(4);
        t.set_sampling(3);
        let sampled: Vec<bool> = (0..6).map(|_| t.begin()).collect();
        assert_eq!(sampled, [true, false, false, true, false, false]);
        t.set_sampling(0);
        assert!(!t.begin());
        let tick = t.start();
        t.record(Stage::SpSearch, tick);
        let (older, newer) = t.spans();
        assert!(older.is_empty() && newer.is_empty());
    }

    #[test]
    fn begin_clears_the_previous_query() {
        let mut t = QueryTrace::new(4);
        t.begin();
        let tick = t.start();
        t.record(Stage::Encode, tick);
        t.begin();
        let (older, newer) = t.spans();
        assert!(older.is_empty() && newer.is_empty());
    }
}
