//! A small in-tree validator for the Prometheus text exposition format.
//!
//! Scrapers fail silently: a malformed label escape or a duplicate series
//! drops the whole scrape, and the first anyone hears of it is a gap in a
//! dashboard. [`lint`] parses an exposition the way a strict scraper
//! would and reports the first violation, so the test suite can prove
//! `render_prometheus` output stays ingestible as gauge families are
//! added. Checked invariants:
//!
//! * every sample belongs to a family announced by a preceding
//!   `# TYPE` line (histogram/summary samples may use the
//!   `_bucket`/`_sum`/`_count` suffixes of their family);
//! * `# TYPE` appears at most once per family;
//! * metric and label names are well-formed, label values use only the
//!   legal escapes (`\\`, `\"`, `\n`);
//! * no series (name + label set, order-insensitive) appears twice;
//! * every sample value parses as a float.

use std::collections::{HashMap, HashSet};

/// Validate a full Prometheus text exposition. Returns the first
/// violation as `Err("line N: …")`.
pub fn lint(text: &str) -> Result<(), String> {
    let mut types: HashMap<String, String> = HashMap::new();
    let mut series: HashSet<String> = HashSet::new();
    for (idx, line) in text.lines().enumerate() {
        let n = idx + 1;
        let fail = |msg: String| Err(format!("line {n}: {msg}"));
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            if words.next() == Some("TYPE") {
                let Some(name) = words.next() else {
                    return fail("# TYPE without a metric name".to_string());
                };
                let Some(kind) = words.next() else {
                    return fail(format!("# TYPE {name} without a type"));
                };
                if !matches!(
                    kind,
                    "counter" | "gauge" | "histogram" | "summary" | "untyped"
                ) {
                    return fail(format!("unknown type `{kind}` for {name}"));
                }
                if types.insert(name.to_string(), kind.to_string()).is_some() {
                    return fail(format!("duplicate # TYPE for {name}"));
                }
            }
            // HELP and free comments are unconstrained.
            continue;
        }
        let (name, labels, value) = match parse_sample(line) {
            Ok(parts) => parts,
            Err(msg) => return fail(msg),
        };
        if resolve_family(&name, &types).is_none() {
            return fail(format!("sample `{name}` has no preceding # TYPE"));
        }
        if value.parse::<f64>().is_err() && !matches!(value.as_str(), "+Inf" | "-Inf" | "NaN") {
            return fail(format!("sample `{name}` has non-numeric value `{value}`"));
        }
        let mut key_labels = labels;
        key_labels.sort();
        let key = format!("{name}{{{}}}", key_labels.join(","));
        if !series.insert(key.clone()) {
            return fail(format!("duplicate series {key}"));
        }
    }
    Ok(())
}

/// The `# TYPE` family a sample name belongs to: itself, or — for
/// histogram/summary families — its `_bucket`/`_sum`/`_count` base.
fn resolve_family(name: &str, types: &HashMap<String, String>) -> Option<String> {
    if types.contains_key(name) {
        return Some(name.to_string());
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if matches!(
                types.get(base).map(String::as_str),
                Some("histogram" | "summary")
            ) {
                return Some(base.to_string());
            }
        }
    }
    None
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    chars
        .next()
        .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split a sample line into (metric name, normalized `name="value"`
/// label strings, value text). One optional trailing timestamp is
/// tolerated after the value.
fn parse_sample(line: &str) -> Result<(String, Vec<String>, String), String> {
    let (name, labels, tail) = match line.find('{') {
        Some(brace) => {
            let close = line
                .rfind('}')
                .filter(|&c| c > brace)
                .ok_or_else(|| "unterminated label block".to_string())?;
            (
                line[..brace].trim(),
                parse_labels(&line[brace + 1..close])?,
                &line[close + 1..],
            )
        }
        None => {
            let name = line.split_whitespace().next().unwrap_or("");
            (
                name,
                Vec::new(),
                line.trim_start().strip_prefix(name).unwrap_or(""),
            )
        }
    };
    if !is_metric_name(name) {
        return Err(format!("bad metric name `{name}`"));
    }
    let mut fields = tail.split_whitespace();
    let value = fields
        .next()
        .ok_or_else(|| format!("sample `{name}` has no value"))?;
    if fields.next().is_some() && fields.next().is_some() {
        return Err(format!("trailing garbage after sample `{name}`"));
    }
    Ok((name.to_string(), labels, value.to_string()))
}

/// Parse `a="x",b="y"`, validating names and escape sequences. Byte
/// scanning is safe here: the loop only dereferences ASCII delimiters,
/// and every slice boundary lands on one.
fn parse_labels(text: &str) -> Result<Vec<String>, String> {
    let bytes = text.as_bytes();
    let mut labels = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        while bytes.get(i) == Some(&b' ') {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        let start = i;
        while i < bytes.len() && bytes[i] != b'=' {
            i += 1;
        }
        if i >= bytes.len() {
            return Err(format!("label without `=` in `{text}`"));
        }
        let name = text[start..i].trim();
        if !is_label_name(name) {
            return Err(format!("bad label name `{name}`"));
        }
        i += 1; // past '='
        if bytes.get(i) != Some(&b'"') {
            return Err(format!("label `{name}` value is not quoted"));
        }
        i += 1;
        let value_start = i;
        loop {
            match bytes.get(i) {
                None => return Err(format!("label `{name}` value is unterminated")),
                Some(b'"') => break,
                Some(b'\\') => match bytes.get(i + 1) {
                    Some(b'\\' | b'"' | b'n') => i += 2,
                    other => {
                        return Err(format!(
                            "label `{name}` has illegal escape `\\{}`",
                            other.map(|&b| b as char).unwrap_or(' ')
                        ))
                    }
                },
                Some(_) => i += 1,
            }
        }
        labels.push(format!("{name}=\"{}\"", &text[value_start..i]));
        i += 1; // past the closing quote
        while bytes.get(i) == Some(&b' ') {
            i += 1;
        }
        match bytes.get(i) {
            None => break,
            Some(b',') => i += 1,
            Some(&c) => {
                return Err(format!(
                    "expected `,` between labels, found `{}`",
                    c as char
                ))
            }
        }
    }
    Ok(labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "\
# HELP kpj_up Whether the server is up.
# TYPE kpj_up gauge
kpj_up 1
# TYPE kpj_events_total counter
kpj_events_total{event=\"queries\"} 41
kpj_events_total{event=\"rejects\"} 0
# TYPE kpj_latency_seconds histogram
kpj_latency_seconds_bucket{le=\"0.001\"} 3
kpj_latency_seconds_bucket{le=\"+Inf\"} 5
kpj_latency_seconds_sum 0.0123
kpj_latency_seconds_count 5
";
        assert_eq!(lint(text), Ok(()));
    }

    #[test]
    fn rejects_sample_without_type() {
        let err = lint("kpj_orphan 1\n").unwrap_err();
        assert!(err.contains("no preceding # TYPE"), "{err}");
    }

    #[test]
    fn rejects_duplicate_series_and_duplicate_type() {
        let dup_series = "\
# TYPE m gauge
m{a=\"1\"} 1
m{a=\"1\"} 2
";
        assert!(lint(dup_series).unwrap_err().contains("duplicate series"));
        // Label order must not hide the duplicate.
        let reordered = "\
# TYPE m gauge
m{a=\"1\",b=\"2\"} 1
m{b=\"2\",a=\"1\"} 2
";
        assert!(lint(reordered).unwrap_err().contains("duplicate series"));
        let dup_type = "# TYPE m gauge\n# TYPE m counter\nm 1\n";
        assert!(lint(dup_type).unwrap_err().contains("duplicate # TYPE"));
    }

    #[test]
    fn rejects_bad_escapes_and_bad_values() {
        let bad_escape = "# TYPE m gauge\nm{a=\"x\\q\"} 1\n";
        assert!(lint(bad_escape).unwrap_err().contains("illegal escape"));
        let good_escape = "# TYPE m gauge\nm{a=\"x\\\\y\\\"z\\n\"} 1\n";
        assert_eq!(lint(good_escape), Ok(()));
        let bad_value = "# TYPE m gauge\nm nope\n";
        assert!(lint(bad_value).unwrap_err().contains("non-numeric"));
        let unquoted = "# TYPE m gauge\nm{a=1} 1\n";
        assert!(lint(unquoted).unwrap_err().contains("not quoted"));
        let bad_name = "# TYPE m gauge\n9m 1\n";
        assert!(lint(bad_name).unwrap_err().contains("bad metric name"));
    }

    #[test]
    fn histogram_suffixes_require_a_histogram_family() {
        // _bucket on a *gauge* family is not a histogram sample.
        let fake_hist = "# TYPE m gauge\nm_bucket{le=\"1\"} 1\n";
        assert!(lint(fake_hist).unwrap_err().contains("no preceding # TYPE"));
    }

    #[test]
    fn tolerates_timestamps_and_comments() {
        let text = "# just a comment\n# TYPE m gauge\nm{a=\"1\"} 3.5 1712345678\n";
        assert_eq!(lint(text), Ok(()));
        let garbage = "# TYPE m gauge\nm 1 2 3\n";
        assert!(lint(garbage).unwrap_err().contains("trailing garbage"));
    }
}
