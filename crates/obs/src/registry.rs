//! The per-(algorithm, stage) metrics registry and its Prometheus text
//! exposition.
//!
//! A [`StageRegistry`] holds one [`Histogram`] per (algorithm, stage) cell
//! plus one atomic counter per (algorithm, work counter) cell. Algorithm
//! and counter names are supplied by the caller at construction, so this
//! crate stays dependency-free: `kpj-service` builds the registry from
//! `Algorithm::ALL` and `QueryStats::FIELD_NAMES`.
//!
//! All writes are relaxed atomics — workers share the registry through an
//! `Arc` with no locks on the hot path.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::histogram::Histogram;
use crate::trace::Stage;

/// Fixed Prometheus `le` edges, microseconds (then `+Inf`). Spans three
/// orders of magnitude around typical query latencies; the fine-grained
/// quantiles stay available through [`Histogram::quantile_us`].
const PROM_LE_US: [u64; 10] = [
    16, 64, 256, 1_000, 4_000, 16_000, 64_000, 256_000, 1_024_000, 4_096_000,
];

/// Histograms keyed by (algorithm, stage) + per-algorithm work counters.
pub struct StageRegistry {
    algorithms: Vec<&'static str>,
    counter_names: Vec<&'static str>,
    /// `algorithms.len() × Stage::COUNT`, row-major by algorithm.
    hists: Vec<Histogram>,
    /// `algorithms.len() × counter_names.len()`, row-major by algorithm.
    counters: Vec<AtomicU64>,
}

impl StageRegistry {
    /// Build an all-zero registry for the given algorithm labels and work
    /// counter names.
    pub fn new(algorithms: Vec<&'static str>, counter_names: Vec<&'static str>) -> StageRegistry {
        let hists = (0..algorithms.len() * Stage::COUNT)
            .map(|_| Histogram::default())
            .collect();
        let counters = (0..algorithms.len() * counter_names.len())
            .map(|_| AtomicU64::new(0))
            .collect();
        StageRegistry {
            algorithms,
            counter_names,
            hists,
            counters,
        }
    }

    /// The algorithm labels, in cell order.
    pub fn algorithms(&self) -> &[&'static str] {
        &self.algorithms
    }

    /// The work counter names, in cell order.
    pub fn counter_names(&self) -> &[&'static str] {
        &self.counter_names
    }

    /// The histogram of one (algorithm, stage) cell.
    pub fn histogram(&self, algorithm: usize, stage: Stage) -> &Histogram {
        &self.hists[algorithm * Stage::COUNT + stage.index()]
    }

    /// Record one stage duration for an algorithm.
    pub fn record(&self, algorithm: usize, stage: Stage, latency: Duration) {
        self.histogram(algorithm, stage).record(latency);
    }

    /// Record one stage duration given in nanoseconds.
    pub fn record_ns(&self, algorithm: usize, stage: Stage, ns: u64) {
        self.histogram(algorithm, stage).record_us(ns / 1_000);
    }

    /// Add `values[i]` to counter `i` of `algorithm`. `values` must be
    /// parallel to [`counter_names`](Self::counter_names) (it may be
    /// shorter; extra names keep their totals).
    pub fn add_counters(&self, algorithm: usize, values: &[u64]) {
        debug_assert!(values.len() <= self.counter_names.len());
        let base = algorithm * self.counter_names.len();
        for (i, &v) in values.iter().enumerate().take(self.counter_names.len()) {
            if v != 0 {
                self.counters[base + i].fetch_add(v, Ordering::Relaxed);
            }
        }
    }

    /// Current value of counter `counter` for `algorithm`.
    pub fn counter(&self, algorithm: usize, counter: usize) -> u64 {
        self.counters[algorithm * self.counter_names.len() + counter].load(Ordering::Relaxed)
    }

    /// Sum of counter `counter` across every algorithm.
    pub fn counter_total(&self, counter: usize) -> u64 {
        (0..self.algorithms.len())
            .map(|a| self.counter(a, counter))
            .sum()
    }

    /// Render the whole registry in the Prometheus text exposition
    /// format. Every (algorithm, stage) cell is emitted even at count 0,
    /// so dashboards and the CI smoke check see the full matrix.
    pub fn render_prometheus(&self, out: &mut String) {
        out.push_str(
            "# HELP kpj_stage_duration_seconds Per-stage query latency by algorithm.\n\
             # TYPE kpj_stage_duration_seconds histogram\n",
        );
        for (a, alg) in self.algorithms.iter().enumerate() {
            for stage in Stage::ALL {
                let h = self.histogram(a, stage);
                let labels = format!("algorithm=\"{alg}\",stage=\"{}\"", stage.name());
                for le_us in PROM_LE_US {
                    let _ = writeln!(
                        out,
                        "kpj_stage_duration_seconds_bucket{{{labels},le=\"{}\"}} {}",
                        le_us as f64 / 1e6,
                        h.count_le_us(le_us),
                    );
                }
                let _ = writeln!(
                    out,
                    "kpj_stage_duration_seconds_bucket{{{labels},le=\"+Inf\"}} {}",
                    h.count(),
                );
                let _ = writeln!(
                    out,
                    "kpj_stage_duration_seconds_sum{{{labels}}} {}",
                    h.sum_us() as f64 / 1e6,
                );
                let _ = writeln!(
                    out,
                    "kpj_stage_duration_seconds_count{{{labels}}} {}",
                    h.count(),
                );
            }
        }
        out.push_str(
            "# HELP kpj_engine_work_total Engine work counters (paper §7) by algorithm.\n\
             # TYPE kpj_engine_work_total counter\n",
        );
        for (a, alg) in self.algorithms.iter().enumerate() {
            for (c, name) in self.counter_names.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "kpj_engine_work_total{{algorithm=\"{alg}\",counter=\"{name}\"}} {}",
                    self.counter(a, c),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> StageRegistry {
        StageRegistry::new(vec!["DA", "IterBoundI"], vec!["heap_pops", "tau_updates"])
    }

    #[test]
    fn cells_are_independent() {
        let r = registry();
        r.record(0, Stage::SpSearch, Duration::from_micros(100));
        r.record(1, Stage::SpSearch, Duration::from_micros(5));
        r.record(1, Stage::Total, Duration::from_micros(7));
        assert_eq!(r.histogram(0, Stage::SpSearch).count(), 1);
        assert_eq!(r.histogram(1, Stage::SpSearch).count(), 1);
        assert_eq!(r.histogram(0, Stage::Total).count(), 0);
        assert_eq!(r.histogram(1, Stage::Total).max_us(), 7);
    }

    #[test]
    fn counters_accumulate_per_algorithm() {
        let r = registry();
        r.add_counters(0, &[3, 1]);
        r.add_counters(0, &[2, 0]);
        r.add_counters(1, &[10, 10]);
        assert_eq!(r.counter(0, 0), 5);
        assert_eq!(r.counter(0, 1), 1);
        assert_eq!(r.counter(1, 0), 10);
        assert_eq!(r.counter_total(0), 15);
    }

    #[test]
    fn prometheus_render_has_every_cell_and_parses_shape() {
        let r = registry();
        r.record(0, Stage::DeviationRound, Duration::from_micros(42));
        r.add_counters(1, &[9, 2]);
        let mut text = String::new();
        r.render_prometheus(&mut text);
        for alg in ["DA", "IterBoundI"] {
            for stage in Stage::ALL {
                let series = format!(
                    "kpj_stage_duration_seconds_count{{algorithm=\"{alg}\",stage=\"{}\"}}",
                    stage.name()
                );
                assert!(text.contains(&series), "missing series {series}");
            }
        }
        assert!(text
            .contains("kpj_engine_work_total{algorithm=\"IterBoundI\",counter=\"heap_pops\"} 9"));
        // Bucket counts are cumulative in `le`.
        let mut last = 0u64;
        for line in text.lines().filter(|l| {
            l.starts_with(
                "kpj_stage_duration_seconds_bucket{algorithm=\"DA\",stage=\"deviation_round\"",
            )
        }) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "bucket counts not cumulative: {line}");
            last = v;
        }
        assert_eq!(last, 1);
    }
}
