//! Lock-free named gauges with set/add/high-water semantics.
//!
//! A [`GaugeSet`] is a fixed list of named gauges decided at construction
//! — no registration locks, no hashing on the hot path. Callers address
//! gauges by index (the service keeps `const` indices next to its name
//! table, mirroring how `QueryStats::FIELD_NAMES` is consumed), so a
//! gauge update is one or two relaxed atomic operations and never
//! allocates. Every gauge tracks its current value *and* a high-water
//! mark, because for operational signals like queue depth or shed
//! latency the worst moment matters more than the sampled one.
//!
//! Names are caller-supplied `&'static str`s, keeping this crate
//! dependency-free like the rest of `kpj-obs`.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, Ordering};

/// One gauge cell: the live value plus the highest value ever observed.
struct GaugeSlot {
    value: AtomicI64,
    peak: AtomicI64,
}

/// A fixed set of named gauges, shared lock-free between writers and
/// readers. All operations use relaxed atomics: gauges are monitoring
/// signals, not synchronization.
pub struct GaugeSet {
    names: Vec<&'static str>,
    slots: Vec<GaugeSlot>,
}

impl GaugeSet {
    /// Build an all-zero gauge set with one gauge per name.
    pub fn new(names: Vec<&'static str>) -> GaugeSet {
        let slots = (0..names.len())
            .map(|_| GaugeSlot {
                value: AtomicI64::new(0),
                peak: AtomicI64::new(0),
            })
            .collect();
        GaugeSet { names, slots }
    }

    /// Number of gauges.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the set holds no gauges.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The gauge names, in index order.
    pub fn names(&self) -> &[&'static str] {
        &self.names
    }

    /// The name of gauge `idx`.
    pub fn name(&self, idx: usize) -> &'static str {
        self.names[idx]
    }

    /// Set gauge `idx` to an absolute value, raising its high-water mark
    /// if exceeded. Never allocates.
    pub fn set(&self, idx: usize, value: i64) {
        let slot = &self.slots[idx];
        slot.value.store(value, Ordering::Relaxed);
        slot.peak.fetch_max(value, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative) to gauge `idx` and return the new
    /// value, raising the high-water mark if exceeded. Never allocates.
    pub fn add(&self, idx: usize, delta: i64) -> i64 {
        let slot = &self.slots[idx];
        let new = slot.value.fetch_add(delta, Ordering::Relaxed) + delta;
        slot.peak.fetch_max(new, Ordering::Relaxed);
        new
    }

    /// The current value of gauge `idx`.
    pub fn get(&self, idx: usize) -> i64 {
        self.slots[idx].value.load(Ordering::Relaxed)
    }

    /// The highest value gauge `idx` has ever held (at least 0).
    pub fn peak(&self, idx: usize) -> i64 {
        self.slots[idx].peak.load(Ordering::Relaxed)
    }

    /// Render every gauge as one Prometheus `gauge` family named
    /// `metric`, with `name` and `stat` (`current`/`peak`) labels:
    ///
    /// ```text
    /// # HELP kpj_system_gauge Live serving-system state.
    /// # TYPE kpj_system_gauge gauge
    /// kpj_system_gauge{name="queue_depth",stat="current"} 3
    /// kpj_system_gauge{name="queue_depth",stat="peak"} 17
    /// ```
    pub fn render_prometheus(&self, metric: &str, help: &str, out: &mut String) {
        let _ = writeln!(out, "# HELP {metric} {help}");
        let _ = writeln!(out, "# TYPE {metric} gauge");
        for (idx, name) in self.names.iter().enumerate() {
            let _ = writeln!(
                out,
                "{metric}{{name=\"{name}\",stat=\"current\"}} {}",
                self.get(idx)
            );
            let _ = writeln!(
                out,
                "{metric}{{name=\"{name}\",stat=\"peak\"}} {}",
                self.peak(idx)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gauges() -> GaugeSet {
        GaugeSet::new(vec!["queue_depth", "busy_workers"])
    }

    #[test]
    fn set_and_add_track_current_and_peak() {
        let g = gauges();
        assert_eq!(g.len(), 2);
        assert_eq!(g.name(0), "queue_depth");
        g.set(0, 5);
        assert_eq!(g.get(0), 5);
        assert_eq!(g.peak(0), 5);
        g.set(0, 2);
        assert_eq!(g.get(0), 2);
        assert_eq!(g.peak(0), 5, "peak is a high-water mark");
        assert_eq!(g.add(1, 3), 3);
        assert_eq!(g.add(1, -2), 1);
        assert_eq!(g.get(1), 1);
        assert_eq!(g.peak(1), 3);
        // Gauges are independent.
        assert_eq!(g.get(0), 2);
    }

    #[test]
    fn negative_values_never_raise_the_peak() {
        let g = gauges();
        g.add(0, -7);
        assert_eq!(g.get(0), -7);
        assert_eq!(g.peak(0), 0);
        g.set(0, -1);
        assert_eq!(g.peak(0), 0);
    }

    #[test]
    fn prometheus_rendering_emits_one_gauge_family() {
        let g = gauges();
        g.set(0, 4);
        g.set(0, 1);
        let mut text = String::new();
        g.render_prometheus("kpj_system_gauge", "Live system state.", &mut text);
        assert!(text.starts_with("# HELP kpj_system_gauge Live system state.\n"));
        assert!(text.contains("# TYPE kpj_system_gauge gauge\n"));
        assert!(text.contains("kpj_system_gauge{name=\"queue_depth\",stat=\"current\"} 1\n"));
        assert!(text.contains("kpj_system_gauge{name=\"queue_depth\",stat=\"peak\"} 4\n"));
        assert!(text.contains("kpj_system_gauge{name=\"busy_workers\",stat=\"current\"} 0\n"));
    }

    #[test]
    fn concurrent_adds_balance_out() {
        use std::sync::Arc;
        let g = Arc::new(gauges());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        g.add(0, 1);
                        g.add(0, -1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.get(0), 0);
        assert!(g.peak(0) >= 1);
        assert!(g.peak(0) <= 4);
    }
}
