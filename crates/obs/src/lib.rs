//! kpj-obs — the observability substrate shared by every kpj layer.
//!
//! The paper's evaluation (§7) explains KPJ performance through *internal*
//! quantities — shortest-path computations, lower-bound prunes, τ
//! tightenings — not wall time alone. This crate provides the plumbing to
//! surface those quantities from a serving stack without taxing the hot
//! path:
//!
//! | Module | Provides |
//! |---|---|
//! | [`trace`] | [`QueryTrace`]: a pre-allocated per-worker span ring buffer recording stage-scoped timings, compiled out entirely without the `trace` feature |
//! | [`histogram`] | [`Histogram`]: fixed-bucket log-linear latency histogram with approximate quantiles (moved here from `kpj-service`) |
//! | [`registry`] | [`StageRegistry`]: histograms keyed by (algorithm, stage) plus per-algorithm work counters, rendered as Prometheus text |
//! | [`gauge`] | [`GaugeSet`]: lock-free named gauges with set/add/high-water semantics, rendered as a Prometheus gauge family |
//! | [`journal`] | [`EventJournal`]: a fixed-capacity preallocated ring of structured events with a drop counter, drained as JSONL |
//! | [`promlint`] | [`promlint::lint`]: a strict validator for the Prometheus text format, so tests can prove expositions stay scrapable |
//!
//! The crate deliberately depends on nothing: `kpj-graph`, `kpj-sp`,
//! `kpj-core` and `kpj-service` can all use it. Algorithm names and
//! counter names are caller-supplied `&'static str`s, so the registry
//! never needs to know what an `Algorithm` is.
//!
//! # Zero-allocation contract
//!
//! [`QueryTrace`] allocates its ring buffer once at construction;
//! [`QueryTrace::begin`], [`QueryTrace::start`] and [`QueryTrace::record`]
//! never allocate, so a warmed engine traced at sampling rate 1 still
//! answers queries with zero heap allocations (enforced by
//! `kpj-core/tests/alloc_count.rs`). The same contract covers the
//! system-state half: [`GaugeSet::set`]/[`GaugeSet::add`] and
//! [`EventJournal::record`] are pure atomics over storage allocated at
//! construction (enforced by `kpj-service/tests/journal_alloc.rs`).

#![warn(missing_docs)]

pub mod gauge;
pub mod histogram;
pub mod journal;
pub mod promlint;
pub mod registry;
pub mod trace;

pub use gauge::GaugeSet;
pub use histogram::Histogram;
pub use journal::{EventJournal, EventKind, JournalEvent, MAX_EVENT_ARGS};
pub use registry::StageRegistry;
pub use trace::{QueryTrace, SpanRecord, Stage, Tick};
