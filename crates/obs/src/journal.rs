//! A fixed-capacity, preallocated ring of structured events.
//!
//! An [`EventJournal`] answers "what just happened?" on a live server:
//! epoch publishes and sheds, update batches, admission rejects, deadline
//! expiries — whatever taxonomy the caller defines via [`EventKind`]s at
//! construction. The write path is built for the serving hot path:
//!
//! * **No heap allocation, ever.** A slot is a handful of atomics;
//!   recording claims a sequence number with one `fetch_add` and stores
//!   the payload — the warmed-engine zero-allocation gate stays green
//!   with the journal enabled.
//! * **No locks.** Concurrent writers claim distinct slots; a reader
//!   validates each slot's sequence stamp before and after copying it
//!   (a per-slot seqlock) and simply skips slots that are mid-overwrite.
//! * **Bounded.** The ring overwrites the oldest events; the number
//!   dropped so far is always available ([`EventJournal::dropped`]).
//!
//! Events carry a kind id, a timestamp (µs since journal creation) and
//! [`MAX_EVENT_ARGS`] `u64` arguments whose meanings come from the
//! kind's field-name schema. The read path materializes the surviving
//! tail ([`EventJournal::tail`]) or renders it as JSONL
//! ([`EventJournal::render_jsonl`]) — one self-describing object per
//! line, ready for `jq` or a log shipper.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Arguments carried by every event (unused ones are zero and unnamed).
pub const MAX_EVENT_ARGS: usize = 4;

/// Schema of one event kind: its wire name plus a name per argument.
/// Empty field names mark unused argument positions — they are omitted
/// from the JSONL rendering.
#[derive(Debug, Clone, Copy)]
pub struct EventKind {
    /// Event name as it appears in `{"event":"…"}`.
    pub name: &'static str,
    /// Field name per argument position; `""` = unused.
    pub fields: [&'static str; MAX_EVENT_ARGS],
}

/// One event read back out of the journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalEvent {
    /// Global sequence number (0-based, never reused).
    pub seq: u64,
    /// Microseconds since the journal was created.
    pub at_us: u64,
    /// Index into the journal's [`EventKind`] table.
    pub kind: u16,
    /// Raw arguments; interpret via the kind's field schema.
    pub args: [u64; MAX_EVENT_ARGS],
}

/// One preallocated ring slot. `stamp` is a per-slot seqlock: 0 while a
/// write is in progress, `seq + 1` once the payload for sequence `seq`
/// is fully stored.
struct Slot {
    stamp: AtomicU64,
    at_us: AtomicU64,
    kind: AtomicU64,
    args: [AtomicU64; MAX_EVENT_ARGS],
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            at_us: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            args: [const { AtomicU64::new(0) }; MAX_EVENT_ARGS],
        }
    }
}

/// The preallocated structured-event ring. See the module docs.
pub struct EventJournal {
    kinds: Vec<EventKind>,
    slots: Vec<Slot>,
    /// Next sequence number; also the total recorded so far.
    head: AtomicU64,
    /// Wall-clock anchor: event timestamps are µs since this instant.
    base: Instant,
}

impl EventJournal {
    /// A journal holding the most recent `capacity` events, with the
    /// caller's event taxonomy. Everything is allocated here, once.
    pub fn new(capacity: usize, kinds: Vec<EventKind>) -> EventJournal {
        let capacity = capacity.max(1);
        EventJournal {
            kinds,
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            base: Instant::now(),
        }
    }

    /// Ring capacity (events retained before overwrite).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The event taxonomy this journal was built with.
    pub fn kinds(&self) -> &[EventKind] {
        &self.kinds
    }

    /// The wire name of event kind `kind` (`"?"` if out of range — a
    /// torn read must not panic the reader).
    pub fn kind_name(&self, kind: u16) -> &'static str {
        self.kinds.get(kind as usize).map_or("?", |k| k.name)
    }

    /// Total events recorded over the journal's lifetime.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events overwritten before anyone read them (the drop counter).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Record one event. Lock-free and allocation-free: one `fetch_add`
    /// to claim a slot, plain stores for the payload, one release store
    /// to publish. Safe from any thread.
    pub fn record(&self, kind: u16, args: [u64; MAX_EVENT_ARGS]) {
        debug_assert!((kind as usize) < self.kinds.len(), "unknown event kind");
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // Invalidate the slot first so a concurrent reader can't mistake
        // a half-written payload for the previous lap's intact event.
        slot.stamp.store(0, Ordering::Release);
        slot.at_us
            .store(self.base.elapsed().as_micros() as u64, Ordering::Relaxed);
        slot.kind.store(u64::from(kind), Ordering::Relaxed);
        for (cell, &arg) in slot.args.iter().zip(&args) {
            cell.store(arg, Ordering::Relaxed);
        }
        slot.stamp.store(seq + 1, Ordering::Release);
    }

    /// The newest `max` surviving events, oldest first. Events being
    /// overwritten while we read are skipped, never torn.
    pub fn tail(&self, max: usize) -> Vec<JournalEvent> {
        let head = self.head.load(Ordering::Acquire);
        let window = (self.slots.len() as u64).min(max as u64).min(head);
        let mut out = Vec::with_capacity(window as usize);
        for seq in (head - window)..head {
            let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
            if slot.stamp.load(Ordering::Acquire) != seq + 1 {
                continue; // mid-write or already overwritten
            }
            let event = JournalEvent {
                seq,
                at_us: slot.at_us.load(Ordering::Relaxed),
                kind: slot.kind.load(Ordering::Relaxed) as u16,
                args: [
                    slot.args[0].load(Ordering::Relaxed),
                    slot.args[1].load(Ordering::Relaxed),
                    slot.args[2].load(Ordering::Relaxed),
                    slot.args[3].load(Ordering::Relaxed),
                ],
            };
            // Re-validate: if a writer lapped us mid-copy, discard.
            if slot.stamp.load(Ordering::Acquire) == seq + 1 {
                out.push(event);
            }
        }
        out
    }

    /// Render the newest `max` events as JSONL (one object per line,
    /// trailing newline per line), oldest first. Unused argument
    /// positions (empty field names) are omitted.
    ///
    /// ```text
    /// {"seq":41,"at_us":901223,"event":"epoch_published","epoch":3,"changed":2}
    /// ```
    pub fn render_jsonl(&self, max: usize, out: &mut String) {
        for event in self.tail(max) {
            let _ = write!(
                out,
                "{{\"seq\":{},\"at_us\":{},\"event\":\"{}\"",
                event.seq,
                event.at_us,
                self.kind_name(event.kind)
            );
            if let Some(kind) = self.kinds.get(event.kind as usize) {
                for (field, value) in kind.fields.iter().zip(&event.args) {
                    if !field.is_empty() {
                        let _ = write!(out, ",\"{field}\":{value}");
                    }
                }
            }
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn journal(capacity: usize) -> EventJournal {
        EventJournal::new(
            capacity,
            vec![
                EventKind {
                    name: "published",
                    fields: ["epoch", "changed", "", ""],
                },
                EventKind {
                    name: "reject",
                    fields: ["depth", "", "", ""],
                },
            ],
        )
    }

    #[test]
    fn records_come_back_in_order_with_schema_names() {
        let j = journal(8);
        j.record(0, [3, 2, 0, 0]);
        j.record(1, [17, 0, 0, 0]);
        assert_eq!(j.recorded(), 2);
        assert_eq!(j.dropped(), 0);
        let tail = j.tail(10);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 0);
        assert_eq!(tail[0].kind, 0);
        assert_eq!(tail[0].args, [3, 2, 0, 0]);
        assert_eq!(tail[1].seq, 1);
        assert!(tail[1].at_us >= tail[0].at_us);
        assert_eq!(j.kind_name(1), "reject");
        let mut text = String::new();
        j.render_jsonl(10, &mut text);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            format!(
                "{{\"seq\":0,\"at_us\":{},\"event\":\"published\",\"epoch\":3,\"changed\":2}}",
                tail[0].at_us
            )
        );
        assert!(lines[1].contains("\"event\":\"reject\",\"depth\":17}"));
        // Unused positions never appear.
        assert!(!text.contains("\"\":"));
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let j = journal(4);
        for i in 0..10u64 {
            j.record(0, [i, 0, 0, 0]);
        }
        assert_eq!(j.recorded(), 10);
        assert_eq!(j.dropped(), 6);
        let tail = j.tail(100);
        assert_eq!(tail.len(), 4);
        let epochs: Vec<u64> = tail.iter().map(|e| e.args[0]).collect();
        assert_eq!(epochs, vec![6, 7, 8, 9]);
        // A smaller window trims from the old end.
        let last_two = j.tail(2);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[0].args[0], 8);
    }

    #[test]
    fn empty_journal_reads_clean() {
        let j = journal(4);
        assert!(j.tail(8).is_empty());
        assert_eq!(j.dropped(), 0);
        let mut text = String::new();
        j.render_jsonl(8, &mut text);
        assert!(text.is_empty());
    }

    #[test]
    fn concurrent_writers_never_tear_a_read() {
        use std::sync::Arc;
        let j = Arc::new(journal(16));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let j = Arc::clone(&j);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        // Payload invariant: args[1] is always args[0] + 1.
                        j.record((t % 2) as u16, [i, i + 1, 0, 0]);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for e in j.tail(16) {
                assert_eq!(e.args[1], e.args[0] + 1, "torn read: {e:?}");
                assert!(e.kind < 2);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(j.recorded(), 8_000);
        assert_eq!(j.tail(16).len(), 16, "quiesced ring reads fully");
    }
}
