//! A fixed-bucket log-linear latency histogram over microseconds.
//!
//! Layout: 16 one-µs linear buckets for the sub-16µs range (cache hits),
//! then log2-major × 16-minor buckets up to `2^(4+32)` µs — far beyond any
//! plausible query latency. Recording is a single relaxed atomic add, so
//! one histogram can be shared by every worker without locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of fine linear buckets covering 0..LINEAR_LIMIT_US µs.
const LINEAR_BUCKETS: usize = 16;
/// Upper edge of the linear region, microseconds.
const LINEAR_LIMIT_US: u64 = 16;
/// Log2 major buckets above the linear region; each is split into
/// [`MINOR_BUCKETS`] equal minors, giving ~6% worst-case relative error.
const MAJOR_BUCKETS: usize = 32;
/// Minors per major bucket.
const MINOR_BUCKETS: usize = 16;
/// Total bucket count.
pub(crate) const BUCKETS: usize = LINEAR_BUCKETS + MAJOR_BUCKETS * MINOR_BUCKETS;

/// A fixed-bucket latency histogram over microseconds. See the module
/// docs for the bucket layout.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub(crate) fn index_of(us: u64) -> usize {
        if us < LINEAR_LIMIT_US {
            return us as usize;
        }
        // us >= 16, so ilog2 >= 4.
        let major = (us.ilog2() as u64 - 4).min(MAJOR_BUCKETS as u64 - 1);
        let low = 16u64 << major; // lower edge of the major bucket
        let width = low / MINOR_BUCKETS as u64; // ≥ 1 since low ≥ 16
        let minor = ((us - low) / width).min(MINOR_BUCKETS as u64 - 1);
        LINEAR_BUCKETS + (major as usize) * MINOR_BUCKETS + minor as usize
    }

    /// Representative (exclusive upper-edge) value of a bucket, µs.
    pub(crate) fn upper_edge(idx: usize) -> u64 {
        if idx < LINEAR_BUCKETS {
            return idx as u64 + 1;
        }
        let rel = idx - LINEAR_BUCKETS;
        let major = (rel / MINOR_BUCKETS) as u64;
        let minor = (rel % MINOR_BUCKETS) as u64;
        let low = 16u64 << major;
        low + (minor + 1) * (low / MINOR_BUCKETS as u64)
    }

    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        self.record_us(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one observation given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::index_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Approximate quantile (`q` in `[0, 1]`) in microseconds, or `None`
    /// when empty. Reported as the upper edge of the containing bucket.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let total = self.count.load(Ordering::Relaxed);
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(Self::upper_edge(i));
            }
        }
        Some(self.max_us.load(Ordering::Relaxed))
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        let n = self.count.load(Ordering::Relaxed);
        self.sum_us
            .load(Ordering::Relaxed)
            .checked_div(n)
            .unwrap_or(0)
    }

    /// Largest recorded value, µs.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// Number of observations ≤ `us` (observations are integral µs, so
    /// this counts every bucket whose exclusive upper edge is ≤ `us + 1`).
    /// Exact at bucket boundaries; used for Prometheus `le` buckets.
    pub fn count_le_us(&self, us: u64) -> u64 {
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            if Self::upper_edge(i) > us.saturating_add(1) {
                break;
            }
            seen += b.load(Ordering::Relaxed);
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounded() {
        let mut last = 0usize;
        for us in 0..100_000u64 {
            let idx = Histogram::index_of(us);
            assert!(idx < BUCKETS);
            assert!(idx >= last, "index went backwards at {us}");
            last = idx;
            assert!(
                Histogram::upper_edge(idx) >= us.max(1),
                "upper edge below sample at {us}"
            );
        }
        // Astronomically large values stay in range.
        assert!(Histogram::index_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn quantiles_are_close() {
        let h = Histogram::default();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        let p50 = h.quantile_us(0.50).unwrap();
        let p99 = h.quantile_us(0.99).unwrap();
        // ~6% worst-case relative error from the minor-bucket width.
        assert!((468..=532).contains(&p50), "p50 = {p50}");
        assert!((930..=1058).contains(&p99), "p99 = {p99}");
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max_us(), 1000);
        assert!(h.mean_us() >= 495 && h.mean_us() <= 505);
    }

    #[test]
    fn cumulative_counts_are_monotone_and_complete() {
        let h = Histogram::default();
        for us in [0u64, 1, 15, 16, 17, 1000, 50_000] {
            h.record_us(us);
        }
        let mut last = 0;
        for le in [0u64, 1, 15, 16, 100, 1_000, 100_000, u64::MAX / 2] {
            let c = h.count_le_us(le);
            assert!(c >= last, "count_le went backwards at {le}");
            last = c;
        }
        assert_eq!(h.count_le_us(u64::MAX / 2), h.count());
        assert_eq!(h.count_le_us(15), 3, "0, 1 and 15 are <= 15");
    }
}
