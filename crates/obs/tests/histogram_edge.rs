//! Histogram edge cases: empty quantiles, single-observation quantiles,
//! and saturation at the top bucket. The monitoring plane leans on these
//! behaviors — `quantile_us` feeding dashboards must clamp outliers into
//! the last bucket rather than panic, wrap, or walk off the table.

use kpj_obs::Histogram;

/// Exclusive upper edge of the last log-linear bucket (major 31, minor
/// 15): `(16 << 31) + 16 * ((16 << 31) / 16)` = 2^36 µs ≈ 19 hours.
const TOP_EDGE_US: u64 = 1 << 36;

#[test]
fn empty_histogram_has_no_quantiles() {
    let h = Histogram::default();
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile_us(q), None, "q={q}");
    }
    assert_eq!(h.count(), 0);
    assert_eq!(h.mean_us(), 0, "mean of nothing is 0, not a div-by-zero");
    assert_eq!(h.max_us(), 0);
    assert_eq!(h.count_le_us(u64::MAX), 0);
}

#[test]
fn single_observation_defines_every_quantile() {
    let h = Histogram::default();
    h.record_us(7);
    // With one observation every quantile lands in its bucket; linear
    // buckets below 16 µs are exact-width-1, so the upper edge is 8.
    for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
        assert_eq!(h.quantile_us(q), Some(8), "q={q}");
    }
    assert_eq!(h.count(), 1);
    assert_eq!(h.mean_us(), 7);
    assert_eq!(h.max_us(), 7);
    // Out-of-range q is clamped, not rejected.
    assert_eq!(h.quantile_us(-3.0), Some(8));
    assert_eq!(h.quantile_us(42.0), Some(8));
}

#[test]
fn zero_microseconds_is_a_real_observation() {
    let h = Histogram::default();
    h.record_us(0);
    assert_eq!(h.count(), 1);
    assert_eq!(h.quantile_us(0.5), Some(1), "bucket 0 has upper edge 1");
    assert_eq!(h.count_le_us(0), 1);
}

#[test]
fn extreme_values_saturate_into_the_top_bucket() {
    let h = Histogram::default();
    // Values far beyond the top edge must clamp into the last bucket —
    // no panic, no index wrap, and the observation is still counted.
    for v in [TOP_EDGE_US, TOP_EDGE_US + 1, u64::MAX / 2, u64::MAX] {
        h.record_us(v);
    }
    assert_eq!(h.count(), 4);
    assert_eq!(h.max_us(), u64::MAX);
    // Every quantile is reported at the top bucket's finite upper edge —
    // clamped, not echoing the raw u64::MAX outlier.
    for q in [0.01, 0.5, 1.0] {
        assert_eq!(h.quantile_us(q), Some(TOP_EDGE_US), "q={q}");
    }
    // The cumulative view remains complete and monotone.
    assert_eq!(h.count_le_us(u64::MAX), 4);
    assert!(h.count_le_us(TOP_EDGE_US) <= h.count_le_us(u64::MAX));
}

#[test]
fn saturated_tail_does_not_skew_lower_quantiles() {
    let h = Histogram::default();
    for _ in 0..99 {
        h.record_us(10);
    }
    h.record_us(u64::MAX);
    assert_eq!(h.count(), 100);
    // p50 stays in the 10 µs bucket; only the extreme tail sees the
    // clamped top bucket.
    assert_eq!(h.quantile_us(0.50), Some(11));
    assert_eq!(h.quantile_us(0.99), Some(11));
    assert_eq!(h.quantile_us(1.0), Some(TOP_EDGE_US));
}
