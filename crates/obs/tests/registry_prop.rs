//! Property tests for the histogram registry: quantiles are monotone in
//! `q` and bracket the data, empty histograms answer p50/p99 gracefully,
//! and Prometheus bucket counts are cumulative.

use std::time::Duration;

use kpj_obs::{Histogram, Stage, StageRegistry};
use proptest::collection::vec;
use proptest::prelude::*;

proptest! {
    /// For any sample set, quantile_us is monotone non-decreasing in q,
    /// and every quantile lies within [min_sample, upper_edge(max)].
    #[test]
    fn quantiles_are_monotone_and_bracket_the_data(
        samples in vec(0..5_000_000u64, 1..200),
    ) {
        let h = Histogram::default();
        for &us in &samples {
            h.record(Duration::from_micros(us));
        }
        let qs = [0.0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        let mut last = 0u64;
        for q in qs {
            let v = h.quantile_us(q).expect("non-empty histogram");
            prop_assert!(v >= last, "quantile went backwards at q={}", q);
            last = v;
        }
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        prop_assert!(h.quantile_us(0.0).unwrap() >= min.min(1));
        // Upper-edge reporting: at most ~6.25% above the true max.
        let p100 = h.quantile_us(1.0).unwrap();
        prop_assert!(p100 >= max);
        prop_assert!(p100 <= max.max(16) + max / 8 + 1, "p100={} max={}", p100, max);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.max_us(), max);
    }

    /// count_le_us is monotone in the threshold and reaches count().
    #[test]
    fn cumulative_counts_are_monotone(
        samples in vec(0..1_000_000u64, 0..100),
        thresholds in vec(0..2_000_000u64, 1..20),
    ) {
        let h = Histogram::default();
        for &us in &samples {
            h.record_us(us);
        }
        let mut sorted = thresholds;
        sorted.sort_unstable();
        let mut last = 0u64;
        for &t in &sorted {
            let c = h.count_le_us(t);
            prop_assert!(c >= last);
            prop_assert!(c <= h.count());
            last = c;
        }
        prop_assert_eq!(h.count_le_us(u64::MAX / 2), h.count());
    }

    /// Registry counters: adds from arbitrary interleavings sum exactly.
    #[test]
    fn registry_counter_adds_sum_exactly(
        adds in vec((0..3usize, vec(0..1_000u64, 2)), 0..40),
    ) {
        let r = StageRegistry::new(
            vec!["A", "B", "C"],
            vec!["heap_pops", "lb_prunes"],
        );
        let mut expect = [[0u64; 2]; 3];
        for (alg, vals) in &adds {
            r.add_counters(*alg, vals);
            expect[*alg][0] += vals[0];
            expect[*alg][1] += vals[1];
        }
        for (a, row) in expect.iter().enumerate() {
            for (c, &want) in row.iter().enumerate() {
                prop_assert_eq!(r.counter(a, c), want);
            }
        }
    }
}

#[test]
fn empty_histogram_quantiles_are_well_defined() {
    let h = Histogram::default();
    assert_eq!(h.quantile_us(0.5), None);
    assert_eq!(h.quantile_us(0.99), None);
    assert_eq!(h.count(), 0);
    assert_eq!(h.mean_us(), 0);
    assert_eq!(h.max_us(), 0);
    assert_eq!(h.count_le_us(1_000_000), 0);

    // An empty registry still renders the complete series matrix, with
    // every quantile-bearing field at a defined zero.
    let r = StageRegistry::new(vec!["DA"], vec!["heap_pops"]);
    let empty = r.histogram(0, Stage::SpSearch);
    assert_eq!(empty.quantile_us(0.5), None);
    let mut text = String::new();
    r.render_prometheus(&mut text);
    assert!(
        text.contains("kpj_stage_duration_seconds_count{algorithm=\"DA\",stage=\"sp_search\"} 0")
    );
    assert!(text.contains("kpj_engine_work_total{algorithm=\"DA\",counter=\"heap_pops\"} 0"));
}
