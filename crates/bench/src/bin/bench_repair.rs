//! `bench-repair` — measure incremental landmark repair against the full
//! rebuild it must be bit-identical to (DESIGN.md §14).
//!
//! For each road-network scale and update-batch size: draw a seeded batch
//! of weight re-weightings from the graph's own edges, apply them
//! copy-on-write, then time `LandmarkIndex::repaired` (bounded Dijkstra
//! from the changed edges) and `LandmarkIndex::rebuilt` (full
//! re-Dijkstra, same landmark set) over several rounds. Equality is
//! asserted every round — a repair that drifted from the rebuild would
//! abort the bench. Markdown table on stdout; feeds EXPERIMENTS.md.
//!
//! A second table covers the reduced deployment: the same road graphs
//! contracted by `kpj_graph::reduce`, with update batches aimed at chain
//! *interiors* — each hop update is translated onto its contracted
//! shortcut (`Reduction::translate_updates`, new prefix sums + one
//! shortcut re-weighting) and then repaired on the reduced graph, timing
//! the translation separately from the repair.
//!
//! ```text
//! bench-repair [--rounds N] [--landmarks L] [--seed S]
//! ```

use std::time::Instant;

use kpj_graph::{Graph, NodeId, Weight, WeightUpdate};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_workload::road::RoadConfig;

struct Scale {
    nodes: usize,
    arcs: usize,
}

const SCALES: &[Scale] = &[
    Scale {
        nodes: 10_000,
        arcs: 25_000,
    },
    Scale {
        nodes: 100_000,
        arcs: 250_000,
    },
];
const BATCHES: &[usize] = &[1, 10, 100];

fn main() {
    let mut rounds = 5usize;
    let mut landmarks = 8usize;
    let mut seed = 42u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().expect("flag needs a value");
        match flag.as_str() {
            "--rounds" => rounds = value().parse().expect("--rounds"),
            "--landmarks" => landmarks = value().parse().expect("--landmarks"),
            "--seed" => seed = value().parse().expect("--seed"),
            other => {
                eprintln!("usage: bench-repair [--rounds N] [--landmarks L] [--seed S]");
                panic!("unknown flag `{other}`");
            }
        }
    }

    println!("| nodes | arcs | landmarks | batch | repair ms (mean) | rebuild ms (mean) | speedup | affected nodes (mean) |");
    println!("|---|---|---|---|---|---|---|---|");
    for scale in SCALES {
        let g0 = RoadConfig::new(scale.nodes, scale.arcs, seed).generate();
        let idx0 = LandmarkIndex::build(&g0, landmarks, SelectionStrategy::Farthest, seed);
        for &batch in BATCHES {
            let mut repair_ns = 0u128;
            let mut rebuild_ns = 0u128;
            let mut affected = 0u64;
            // Each round updates the *original* graph (independent
            // batches, not an accumulating walk) so rounds are i.i.d.
            for round in 0..rounds {
                let updates = draw_batch(&g0, batch, seed ^ (round as u64) << 32);
                let (g1, deltas) = g0.with_updated_weights(&updates).expect("ids in range");

                let t0 = Instant::now();
                let (repaired, stats) = idx0.repaired(&g1, &deltas);
                repair_ns += t0.elapsed().as_nanos();
                affected += stats.affected_nodes;

                let t0 = Instant::now();
                let rebuilt = idx0.rebuilt(&g1);
                rebuild_ns += t0.elapsed().as_nanos();

                assert!(repaired == rebuilt, "repair drifted from rebuild");
            }
            let repair_ms = repair_ns as f64 / rounds as f64 / 1e6;
            let rebuild_ms = rebuild_ns as f64 / rounds as f64 / 1e6;
            println!(
                "| {} | {} | {} | {} | {:.2} | {:.2} | {:.1}x | {:.0} |",
                scale.nodes,
                scale.arcs,
                landmarks,
                batch,
                repair_ms,
                rebuild_ms,
                rebuild_ms / repair_ms,
                affected as f64 / rounds as f64,
            );
        }
    }

    println!();
    println!("Chain-interior updates on the reduced graph (hop -> shortcut translation + repair):");
    println!("| nodes | reduced nodes | landmarks | batch | translate ms (mean) | repair ms (mean) | rebuild ms (mean) | speedup |");
    println!("|---|---|---|---|---|---|---|---|");
    for scale in SCALES {
        let g0 = RoadConfig::new(scale.nodes, scale.arcs, seed).generate();
        // Keep a sparse endpoint sample so long degree-2 chains contract.
        let keep: Vec<NodeId> = (0..64u32)
            .map(|i| i * (scale.nodes as u32 / 64).max(1))
            .collect();
        let red = kpj_graph::reduce(&g0, &keep, &keep);
        let interiors: Vec<NodeId> = (0..g0.node_count() as NodeId)
            .filter(|&v| red.reduction.is_interior(v))
            .collect();
        assert!(
            !interiors.is_empty(),
            "road graph produced no contracted chains"
        );
        let idx0 = LandmarkIndex::build(&red.graph, landmarks, SelectionStrategy::Farthest, seed);
        for &batch in BATCHES {
            let mut translate_ns = 0u128;
            let mut repair_ns = 0u128;
            let mut rebuild_ns = 0u128;
            for round in 0..rounds {
                let updates =
                    draw_interior_batch(&g0, &interiors, batch, seed ^ (round as u64) << 32);

                let t0 = Instant::now();
                let t = red
                    .reduction
                    .translate_updates(&red.graph, &updates)
                    .expect("interior hop weights stay in range");
                translate_ns += t0.elapsed().as_nanos();

                let (g1, deltas) = red
                    .graph
                    .with_updated_weights(&t.updates)
                    .expect("ids in range");
                let t0 = Instant::now();
                let (repaired, _) = idx0.repaired(&g1, &deltas);
                repair_ns += t0.elapsed().as_nanos();

                let t0 = Instant::now();
                let rebuilt = idx0.rebuilt(&g1);
                rebuild_ns += t0.elapsed().as_nanos();

                assert!(repaired == rebuilt, "repair drifted from rebuild");
            }
            let translate_ms = translate_ns as f64 / rounds as f64 / 1e6;
            let repair_ms = repair_ns as f64 / rounds as f64 / 1e6;
            let rebuild_ms = rebuild_ns as f64 / rounds as f64 / 1e6;
            println!(
                "| {} | {} | {} | {} | {:.3} | {:.2} | {:.2} | {:.1}x |",
                scale.nodes,
                red.graph.node_count(),
                landmarks,
                batch,
                translate_ms,
                repair_ms,
                rebuild_ms,
                rebuild_ms / (translate_ms + repair_ms),
            );
        }
    }
}

/// A seeded batch of re-weightings of chain-interior hops: each update
/// names an original-id edge whose tail was contracted away, forcing the
/// translation path (prefix-sum rewrite + shortcut re-weight).
fn draw_interior_batch(
    g: &Graph,
    interiors: &[NodeId],
    batch: usize,
    seed: u64,
) -> Vec<WeightUpdate> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..batch)
        .map(|_| {
            // An interior node's out-edges are, by construction, hops of
            // its chain.
            let u = interiors[(next() % interiors.len() as u64) as usize];
            let es = g.out_edges(u);
            let e = es[(next() % es.len() as u64) as usize];
            WeightUpdate {
                from: u,
                to: e.to,
                weight: 1 + (next() % 2_000) as Weight,
            }
        })
        .collect()
}

/// A seeded batch of re-weightings of real edges (splitmix64 draws).
fn draw_batch(g: &Graph, batch: usize, seed: u64) -> Vec<WeightUpdate> {
    let mut state = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let n = g.node_count() as u64;
    (0..batch)
        .map(|_| {
            // Rejection-free: walk from a random node to its first
            // out-edge; road graphs have no isolated nodes, but skip
            // defensively if one appears.
            let mut u = (next() % n) as NodeId;
            while g.out_degree(u) == 0 {
                u = (next() % n) as NodeId;
            }
            let es = g.out_edges(u);
            let e = es[(next() % es.len() as u64) as usize];
            WeightUpdate {
                from: u,
                to: e.to,
                weight: 1 + (next() % 2_000) as Weight,
            }
        })
        .collect()
}
