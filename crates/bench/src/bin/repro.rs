//! `repro` — regenerate every table and figure of the paper's evaluation
//! (§7) and print them as text tables.
//!
//! ```sh
//! cargo run --release -p kpj-bench --bin repro -- all
//! cargo run --release -p kpj-bench --bin repro -- fig7 fig8 --scale 0.1
//! cargo run --release -p kpj-bench --bin repro -- fig12 --full   # paper sizes
//! ```
//!
//! Every experiment prints mean processing time per query in milliseconds
//! (the paper's y-axes) per algorithm and parameter value. Absolute times
//! differ from the paper (different hardware, language, and synthetic
//! datasets); the *shapes* — orderings, trends, relative gaps — are the
//! reproduction target, recorded in `EXPERIMENTS.md`.

use kpj_bench::{
    print_header, print_row, run_batch, run_batch_multi, BatchResult, CalEnv, NestedEnv,
};
use kpj_core::{Algorithm, QueryEngine};
use kpj_graph::NodeId;
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_workload::{analysis, datasets, queries::QuerySets};

#[derive(Debug, Clone)]
struct Opts {
    experiments: Vec<String>,
    /// Dataset scale for the CAL/SJ/COL-style experiments.
    scale: f64,
    /// Scale for the large-dataset sweeps (fig11/fig12 over SJ..USA).
    sweep_scale: f64,
    /// Queries per group.
    per_group: usize,
}

impl Opts {
    fn parse() -> Opts {
        let mut experiments = Vec::new();
        let mut scale = 0.05;
        let mut sweep_scale = 0.02;
        let mut per_group = 10;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => scale = args.next().expect("--scale value").parse().expect("number"),
                "--sweep-scale" => {
                    sweep_scale = args
                        .next()
                        .expect("--sweep-scale value")
                        .parse()
                        .expect("number")
                }
                "--per-group" => {
                    per_group = args
                        .next()
                        .expect("--per-group value")
                        .parse()
                        .expect("number")
                }
                "--full" => {
                    scale = 1.0;
                    sweep_scale = 1.0;
                    per_group = 100;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: repro [EXPERIMENT…] [--scale S] [--sweep-scale S] [--per-group N] [--full]\n\
                         experiments: table1 fig6a fig6b fig7 fig8 fig9 fig10 fig11 fig12 fig13 stats ablation all"
                    );
                    std::process::exit(0);
                }
                other => experiments.push(other.to_ascii_lowercase()),
            }
        }
        if experiments.is_empty() || experiments.iter().any(|e| e == "all") {
            experiments = [
                "table1", "fig6a", "fig6b", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                "fig13",
            ]
            .iter()
            .map(|s| s.to_string())
            .collect();
        }
        Opts {
            experiments,
            scale,
            sweep_scale,
            per_group,
        }
    }
}

fn main() {
    let opts = Opts::parse();
    println!(
        "kpj repro — scale {} (sweep {}), {} queries/group\n",
        opts.scale, opts.sweep_scale, opts.per_group
    );
    for exp in opts.experiments.clone() {
        match exp.as_str() {
            "table1" => table1(&opts),
            "fig6a" => fig6a(&opts),
            "fig6b" => fig6b(&opts),
            "fig7" => fig7(&opts),
            "fig8" => fig8(&opts),
            "fig9" => fig9(&opts),
            "fig10" => fig10(&opts),
            "fig11" => fig11(&opts),
            "fig12" => fig12(&opts),
            "fig13" => fig13(&opts),
            "stats" => stats_table(&opts),
            "ablation" => ablation(&opts),
            other => eprintln!("unknown experiment `{other}` (see --help)"),
        }
        println!();
    }
}

/// The seven lines of Figs. 7–8 in the paper's order. Deliberately NOT
/// `Algorithm::ALL`: these panels reproduce the paper's figures, and the
/// sidetrack engine is outside the paper (its numbers live in
/// `bench-kpj`'s k-sweep axis and EXPERIMENTS.md).
const SEVEN: [(&str, Option<Algorithm>); 7] = [
    ("DA", Some(Algorithm::Da)),
    ("DA-SPT", Some(Algorithm::DaSpt)),
    ("BestFirst", Some(Algorithm::BestFirst)),
    ("IterBound", Some(Algorithm::IterBound)),
    ("IterBoundP", Some(Algorithm::IterBoundP)),
    ("IterBoundI", Some(Algorithm::IterBoundI)),
    ("IterBoundI-NL", None), // IterBoundI on an engine without landmarks
];

fn table1(opts: &Opts) {
    println!(
        "== Table 1: dataset summary (scale {} in parentheses) ==",
        opts.sweep_scale
    );
    print_header(
        "dataset",
        &[
            "#nodes".into(),
            "#edges".into(),
            "n@scale".into(),
            "m@scale".into(),
        ],
    );
    for d in datasets::ALL {
        print!("{:>14}", d.name);
        print!(" {:>10} {:>10}", d.nodes, d.arcs);
        println!(
            " {:>10} {:>10}",
            d.nodes_at(opts.sweep_scale),
            d.arcs_at(opts.sweep_scale)
        );
    }
}

fn fig6a(opts: &Opts) {
    println!(
        "== Fig 6(a): IterBoundI vs |L| on CAL (Q3, k=20), ms/query ==\n\
         (expect a U-shape with the minimum around |L| = 16)"
    );
    let lvals = [4usize, 8, 12, 16, 20, 32];
    let graph = datasets::CAL.generate(opts.scale);
    let mut categories = kpj_graph::CategoryIndex::new();
    let cal =
        kpj_workload::poi::generate_cal_categories(&mut categories, graph.node_count(), 0xCA11);
    let cats = [
        ("Crater", cal.crater),
        ("Glacier", cal.glacier),
        ("Harbor", cal.harbor),
        ("Lake", cal.lake),
    ];
    print_header(
        "category",
        &lvals.iter().map(|l| format!("|L|={l}")).collect::<Vec<_>>(),
    );
    for (name, cat) in cats {
        let targets = categories.members(cat).to_vec();
        let qs = QuerySets::generate(&graph, &targets, 5, opts.per_group, 0xCA11);
        let mut cells = Vec::new();
        for &l in &lvals {
            let lm = LandmarkIndex::build(&graph, l, SelectionStrategy::Farthest, 0xCA11);
            let mut engine = QueryEngine::new(&graph).with_landmarks(&lm);
            let r = run_batch(
                &mut engine,
                Algorithm::IterBoundI,
                qs.group(3),
                &targets,
                20,
            );
            cells.push(r.ms_per_query());
        }
        print_row(name, &cells);
    }
}

fn fig6b(opts: &Opts) {
    println!(
        "== Fig 6(b): IterBoundI vs α on CAL (Q3, k=20), ms/query ==\n\
         (expect a U-shape with the minimum around α = 1.1)"
    );
    let alphas = [1.05, 1.1, 1.2, 1.5, 1.8];
    let env = CalEnv::new(opts.scale, kpj_bench::DEFAULT_LANDMARKS);
    let cats = [
        ("Crater", env.cal.crater),
        ("Glacier", env.cal.glacier),
        ("Harbor", env.cal.harbor),
        ("Lake", env.cal.lake),
    ];
    print_header(
        "category",
        &alphas.iter().map(|a| format!("α={a}")).collect::<Vec<_>>(),
    );
    for (name, cat) in cats {
        let targets = env.categories.members(cat).to_vec();
        let qs = env.query_sets(cat, opts.per_group);
        let mut cells = Vec::new();
        for &a in &alphas {
            let mut engine = QueryEngine::new(&env.graph)
                .with_landmarks(&env.landmarks)
                .with_alpha(a);
            let r = run_batch(
                &mut engine,
                Algorithm::IterBoundI,
                qs.group(3),
                &targets,
                20,
            );
            cells.push(r.ms_per_query());
        }
        print_row(name, &cells);
    }
}

/// One Fig. 7/8-style panel: all seven lines over the given columns.
fn seven_panel(
    env: &CalEnv,
    targets: &[NodeId],
    qs: &QuerySets,
    columns: &[(String, &[NodeId], usize)], // (label, sources, k)
) {
    print_header(
        "algorithm",
        &columns.iter().map(|c| c.0.clone()).collect::<Vec<_>>(),
    );
    let mut engine_lm = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
    let mut engine_nl = QueryEngine::new(&env.graph);
    let _ = qs;
    for (label, alg) in SEVEN {
        let mut cells = Vec::new();
        for (_, sources, k) in columns {
            let r: BatchResult = match alg {
                Some(a) => run_batch(&mut engine_lm, a, sources, targets, *k),
                None => run_batch(&mut engine_nl, Algorithm::IterBoundI, sources, targets, *k),
            };
            cells.push(r.ms_per_query());
        }
        print_row(label, &cells);
    }
}

fn fig7(opts: &Opts) {
    println!(
        "== Fig 7: KPJ on CAL — all algorithms, ms/query ==\n\
         (expect: every best-first variant ≪ DA/DA-SPT; IterBoundI lowest;\n\
          DA-SPT flat in Q; times grow with Q and k)"
    );
    let env = CalEnv::new(opts.scale, kpj_bench::DEFAULT_LANDMARKS);
    for (name, cat) in [
        ("Lake", env.cal.lake),
        ("Crater", env.cal.crater),
        ("Harbor", env.cal.harbor),
    ] {
        let targets = env.categories.members(cat).to_vec();
        let qs = env.query_sets(cat, opts.per_group);

        println!("-- Fig 7 ({name}): vary query group, k = 20 --");
        let cols: Vec<(String, &[NodeId], usize)> = (1..=5)
            .map(|i| (format!("Q{i}"), qs.group(i), 20))
            .collect();
        seven_panel(&env, &targets, &qs, &cols);

        println!("-- Fig 7 ({name}): vary k, Q = Q3 --");
        let cols: Vec<(String, &[NodeId], usize)> = [10, 20, 30, 50]
            .iter()
            .map(|&k| (format!("k={k}"), qs.group(3), k))
            .collect();
        seven_panel(&env, &targets, &qs, &cols);
    }
}

fn fig8(opts: &Opts) {
    println!(
        "== Fig 8: KSP on CAL (T = Glacier, one physical node) — ms/query ==\n\
         (same ordering as Fig 7: the KPJ machinery subsumes KSP)"
    );
    let env = CalEnv::new(opts.scale, kpj_bench::DEFAULT_LANDMARKS);
    let targets = env.categories.members(env.cal.glacier).to_vec();
    let qs = env.query_sets(env.cal.glacier, opts.per_group);

    println!("-- Fig 8(a): vary query group, k = 20 --");
    let cols: Vec<(String, &[NodeId], usize)> = (1..=5)
        .map(|i| (format!("Q{i}"), qs.group(i), 20))
        .collect();
    seven_panel(&env, &targets, &qs, &cols);

    println!("-- Fig 8(b): vary k, Q = Q3 --");
    let cols: Vec<(String, &[NodeId], usize)> = [10, 20, 30, 50]
        .iter()
        .map(|&k| (format!("k={k}"), qs.group(3), k))
        .collect();
    seven_panel(&env, &targets, &qs, &cols);
}

/// The four "our approaches" of Fig. 9/10.
const OURS: [Algorithm; 4] = [
    Algorithm::BestFirst,
    Algorithm::IterBound,
    Algorithm::IterBoundP,
    Algorithm::IterBoundI,
];

fn fig9(opts: &Opts) {
    println!(
        "== Fig 9: our approaches on SJ and COL (T = T2), ms/query ==\n\
         (expect IterBoundI ≤ IterBoundP ≤ IterBound ≤ BestFirst)"
    );
    for spec in [datasets::SJ, datasets::COL] {
        let env = NestedEnv::new(spec, opts.scale);
        let targets = env.t(2).to_vec();
        let qs = env.query_sets(2, opts.per_group);
        let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);

        println!("-- Fig 9 ({}): vary query group, k = 20 --", spec.name);
        print_header(
            "algorithm",
            &(1..=5).map(|i| format!("Q{i}")).collect::<Vec<_>>(),
        );
        for alg in OURS {
            let cells: Vec<f64> = (1..=5)
                .map(|i| run_batch(&mut engine, alg, qs.group(i), &targets, 20).ms_per_query())
                .collect();
            print_row(alg.name(), &cells);
        }

        println!("-- Fig 9 ({}): vary k, Q = Q3 --", spec.name);
        print_header("algorithm", &[10, 20, 30, 50].map(|k| format!("k={k}")));
        for alg in OURS {
            let cells: Vec<f64> = [10, 20, 30, 50]
                .iter()
                .map(|&k| run_batch(&mut engine, alg, qs.group(3), &targets, k).ms_per_query())
                .collect();
            print_row(alg.name(), &cells);
        }
    }
}

fn fig10(opts: &Opts) {
    println!(
        "== Fig 10: our approaches vs |T| (T1..T4) on SJ and COL (Q3, k=20) ==\n\
         (expect times to fall as |T| grows; IterBoundI's edge grows with |T|)"
    );
    for spec in [datasets::SJ, datasets::COL] {
        let env = NestedEnv::new(spec, opts.scale);
        let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
        println!("-- Fig 10 ({}) --", spec.name);
        print_header(
            "algorithm",
            &(1..=4)
                .map(|i| format!("T{i}({})", env.t(i).len()))
                .collect::<Vec<_>>(),
        );
        for alg in OURS {
            let mut cells = Vec::new();
            for i in 1..=4 {
                let targets = env.t(i).to_vec();
                let qs = env.query_sets(i, opts.per_group);
                cells.push(run_batch(&mut engine, alg, qs.group(3), &targets, 20).ms_per_query());
            }
            print_row(alg.name(), &cells);
        }
    }
}

fn fig11(opts: &Opts) {
    println!(
        "== Fig 11: percentile of max δ(v, T_i) among all-pairs distances ==\n\
         (expect the percentile to fall as |T| grows, for every dataset;\n\
          percentile estimated from sampled single-source distance vectors)"
    );
    print_header(
        "dataset",
        &(1..=4).map(|i| format!("T{i}")).collect::<Vec<_>>(),
    );
    for spec in datasets::SIZE_SWEEP {
        let env = NestedEnv::new(spec, opts.sweep_scale);
        let mut cells = Vec::new();
        for i in 1..=4 {
            let max_d = analysis::max_distance_to_targets(&env.graph, env.t(i));
            let pct = analysis::distance_percentile(&env.graph, max_d, 12, 0x11);
            cells.push(pct);
        }
        print_row(spec.name, &cells);
    }
}

fn fig12(opts: &Opts) {
    println!(
        "== Fig 12: scalability of IterBoundI ==\n\
         (expect runtime to grow far slower than graph size; e.g. the paper\n\
          sees ≤ ~3× runtime for 40× nodes from SJ to USA)"
    );
    println!("-- Fig 12(a): vary dataset (T = T2, Q3, k = 20), ms/query --");
    print_header(
        "dataset",
        &[
            "n".into(),
            "ms/query".into(),
            "settled".into(),
            "spt".into(),
        ],
    );
    for spec in datasets::SIZE_SWEEP {
        let env = NestedEnv::new(spec, opts.sweep_scale);
        let targets = env.t(2).to_vec();
        let qs = env.query_sets(2, opts.per_group);
        let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
        let r = run_batch(
            &mut engine,
            Algorithm::IterBoundI,
            qs.group(3),
            &targets,
            20,
        );
        print!("{:>14}", spec.name);
        print!(" {:>10}", env.graph.node_count());
        print!(" {:>10.3}", r.ms_per_query());
        print!(" {:>10}", r.stats.nodes_settled / r.queries.max(1));
        println!(" {:>10}", r.stats.spt_nodes);
    }

    println!("-- Fig 12(b): vary k on COL (T = T2, Q3), ms/query --");
    let env = NestedEnv::new(datasets::COL, opts.scale);
    let targets = env.t(2).to_vec();
    let qs = env.query_sets(2, opts.per_group);
    let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
    let ks = [10usize, 50, 100, 200, 500];
    print_header("", &ks.map(|k| format!("k={k}")));
    let cells: Vec<f64> = ks
        .iter()
        .map(|&k| {
            run_batch(&mut engine, Algorithm::IterBoundI, qs.group(3), &targets, k).ms_per_query()
        })
        .collect();
    print_row("IterBoundI", &cells);
}

fn fig13(opts: &Opts) {
    println!(
        "== Fig 13: GKPJ on COL (|S| = 4 random sources) — DA-SPT vs IterBoundI ==\n\
         (expect ~2 orders of magnitude in favour of IterBoundI)"
    );
    let env = NestedEnv::new(datasets::COL, opts.scale);
    // Random 4-node source sets, one per "query", seeded.
    let n = env.graph.node_count() as u32;
    let source_sets: Vec<Vec<NodeId>> = (0..opts.per_group as u64)
        .map(|i| {
            (0..4u64)
                .map(|j| {
                    let h = (i * 4 + j + 1).wrapping_mul(0x9E3779B97F4A7C15);
                    (h % n as u64) as NodeId
                })
                .collect()
        })
        .collect();
    let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);

    println!("-- Fig 13(a): vary |T| (T1..T4), k = 20, ms/query --");
    print_header(
        "algorithm",
        &(1..=4)
            .map(|i| format!("T{i}({})", env.t(i).len()))
            .collect::<Vec<_>>(),
    );
    for alg in [Algorithm::DaSpt, Algorithm::IterBoundI] {
        let cells: Vec<f64> = (1..=4)
            .map(|i| run_batch_multi(&mut engine, alg, &source_sets, env.t(i), 20).ms_per_query())
            .collect();
        print_row(alg.name(), &cells);
    }

    println!("-- Fig 13(b): vary k (T = T2), ms/query --");
    let targets = env.t(2).to_vec();
    print_header("algorithm", &[10, 20, 30, 50].map(|k| format!("k={k}")));
    for alg in [Algorithm::DaSpt, Algorithm::IterBoundI] {
        let cells: Vec<f64> = [10, 20, 30, 50]
            .iter()
            .map(|&k| run_batch_multi(&mut engine, alg, &source_sets, &targets, k).ms_per_query())
            .collect();
        print_row(alg.name(), &cells);
    }
}

/// Work-counter table (the Lemma 4.1 / Fig. 4 evidence in EXPERIMENTS.md):
/// per-query means of the `QueryStats` counters on CAL, T = Lake, Q3, k=20.
fn stats_table(opts: &Opts) {
    println!(
        "== Work counters per query: CAL scale {}, T=Lake, Q3, k=20 ==",
        opts.scale
    );
    let env = CalEnv::new(opts.scale, kpj_bench::DEFAULT_LANDMARKS);
    let targets = env.categories.members(env.cal.lake).to_vec();
    let qs = env.query_sets(env.cal.lake, opts.per_group);
    print_header(
        "algorithm",
        &[
            "sp-comps".into(),
            "testlb".into(),
            "settled".into(),
            "spt".into(),
            "subspaces".into(),
            "ms".into(),
        ],
    );
    let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
    for alg in Algorithm::ALL {
        let r = run_batch(&mut engine, alg, qs.group(3), &targets, 20);
        let q = r.queries.max(1);
        print!("{:>14}", alg.name());
        print!(" {:>10}", r.stats.shortest_path_computations / q);
        print!(" {:>10}", r.stats.testlb_calls / q);
        print!(" {:>10}", r.stats.nodes_settled / q);
        print!(" {:>10}", r.stats.spt_nodes);
        print!(" {:>10}", r.stats.subspaces_created / q);
        println!(" {:>10.3}", r.ms_per_query());
    }
}

/// Ablation report: Eq. (1) vs Eq. (2) tightness & cost, and landmark
/// selection strategy, on SJ (T = T3).
fn ablation(opts: &Opts) {
    use std::time::Instant;
    println!("== Ablation: Eq.(1) vs Eq.(2) bound tightness and cost (COL, T=T4) ==");
    let env = NestedEnv::new(datasets::COL, opts.scale);
    let targets = env.t(4).to_vec();
    let qb = env.landmarks.for_targets(&targets);
    let truth = kpj_sp::DenseDijkstra::to_targets(&env.graph, &targets);
    let probe: Vec<u32> = (0..env.graph.node_count() as u32).step_by(13).collect();

    let t0 = Instant::now();
    let sum2: u64 = probe.iter().map(|&v| qb.lb_to_targets(v)).sum();
    let t_eq2 = t0.elapsed();
    let t0 = Instant::now();
    let sum1: u64 = probe
        .iter()
        .map(|&v| qb.lb_to_targets_eq1(v, &targets))
        .sum();
    let t_eq1 = t0.elapsed();
    let sum_true: u64 = probe.iter().map(|&v| truth.dist(v)).sum();
    println!(
        "  tightness (sum of bounds / sum of true distances over {} nodes):",
        probe.len()
    );
    println!(
        "    Eq.(2): {:.4}   Eq.(1): {:.4}",
        sum2 as f64 / sum_true as f64,
        sum1 as f64 / sum_true as f64
    );
    println!(
        "  evaluation cost: Eq.(2) {:.2?} vs Eq.(1) {:.2?}  ({}x, |T| = {})",
        t_eq2,
        t_eq1,
        t_eq1.as_nanos().max(1) / t_eq2.as_nanos().max(1),
        targets.len()
    );

    println!("\n== Ablation: landmark selection strategy, IterBoundI (COL, T=T2, Q3, k=20) ==");
    let targets2 = env.t(2).to_vec();
    let qs = env.query_sets(2, opts.per_group);
    for strategy in [SelectionStrategy::Farthest, SelectionStrategy::Random] {
        let idx = LandmarkIndex::build(&env.graph, kpj_bench::DEFAULT_LANDMARKS, strategy, 0x5e1);
        let mut engine = QueryEngine::new(&env.graph).with_landmarks(&idx);
        let r = run_batch(
            &mut engine,
            Algorithm::IterBoundI,
            qs.group(3),
            &targets2,
            20,
        );
        println!(
            "  {:>9?}: {:>8.3} ms/query ({} settled/query)",
            strategy,
            r.ms_per_query(),
            r.stats.nodes_settled / r.queries.max(1)
        );
    }

    println!("\n== Ablation: Pascoal [24] vs Gao [14] candidate tests (COL, T=T2, Q3, k=20) ==");
    let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
    for alg in [Algorithm::DaSptPascoal, Algorithm::DaSpt] {
        let r = run_batch(&mut engine, alg, qs.group(3), &targets2, 20);
        println!(
            "  {:>11}: {:>8.3} ms/query ({} settled/query)",
            alg.name(),
            r.ms_per_query(),
            r.stats.nodes_settled / r.queries.max(1)
        );
    }
}
