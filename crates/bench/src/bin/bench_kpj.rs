//! `bench-kpj` — the fixed-seed perf baseline runner.
//!
//! Unlike the Criterion benches (statistical, minutes), this binary does a
//! short deterministic sweep over two workloads — a road network (CAL with
//! the Crater category) and a small-world social network — timing every
//! algorithm and counting heap allocations per query through a counting
//! global allocator. Results are written to `BENCH_kpj.json` so CI leaves
//! a machine-readable perf trail for future PRs to diff against.
//!
//! `--compare BASELINE.json` turns the trail into a gate: after the sweep
//! the fresh report is diffed cell-by-cell (ms/query and allocs/query per
//! workload × algorithm, plus every k-sweep cell) against the committed
//! baseline, a delta table goes to stderr, and the process exits non-zero
//! when any cell regressed by more than `BENCH_REGRESS_PCT` percent
//! (default 25).
//!
//! Usage: `bench-kpj [--out PATH] [--queries N] [--compare BASELINE]`

use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use kpj_bench::{run_batch, BatchResult, CalEnv};
use kpj_core::{Algorithm, QueryEngine};
use kpj_graph::{Graph, NodeId};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_service::json::Json;
use kpj_workload::social::SocialConfig;

/// Counts every allocation (and allocated byte) that reaches the system
/// allocator. Frees are deliberately not counted: the interesting number
/// is how often the hot path *asks* for memory.
struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const K: usize = 20;

/// Timed passes per cell; the reported time is the median, which shrugs
/// off one-off scheduler hiccups that a single pass (or a mean) would
/// fold into the perf trail.
const RUNS: usize = 5;

struct AlgoMeasurement {
    name: &'static str,
    batch: BatchResult,
    /// Median ms/query over [`RUNS`] warmed passes with tracing off.
    ms_per_query: f64,
    /// ms/query (same median) with span tracing sampling every query
    /// (the serving default) — the difference is the tracer's overhead.
    ms_per_query_trace: f64,
    allocs_per_query: f64,
    alloc_bytes_per_query: f64,
}

fn median(times: &mut [f64]) -> f64 {
    times.sort_by(|a, b| a.total_cmp(b));
    times[times.len() / 2]
}

/// Median ms/query of [`RUNS`] passes over the batch (engine must
/// already be warm). Returns the last pass's `BatchResult` too, for the
/// query count and work counters (deterministic across passes).
fn median_ms(
    engine: &mut QueryEngine<'_>,
    alg: Algorithm,
    sources: &[NodeId],
    targets: &[NodeId],
    k: usize,
) -> (f64, BatchResult) {
    let mut times = [0.0; RUNS];
    let mut last = BatchResult::default();
    for t in &mut times {
        last = run_batch(engine, alg, sources, targets, k);
        *t = last.ms_per_query();
    }
    (median(&mut times), last)
}

/// Warm the engine on the full query set once, then take the median of
/// [`RUNS`] timed passes — steady-state numbers, not cold-start.
/// Allocation counting covers the first timed pass (the counts are
/// deterministic, so one pass is exact). A final median with the span
/// tracer sampling every query measures the tracing overhead.
fn measure(
    engine: &mut QueryEngine<'_>,
    alg: Algorithm,
    sources: &[NodeId],
    targets: &[NodeId],
) -> AlgoMeasurement {
    run_batch(engine, alg, sources, targets, K);
    engine.set_trace_sampling(0);
    let calls0 = ALLOC_CALLS.load(Ordering::Relaxed);
    let bytes0 = ALLOC_BYTES.load(Ordering::Relaxed);
    let batch = run_batch(engine, alg, sources, targets, K);
    let calls = ALLOC_CALLS.load(Ordering::Relaxed) - calls0;
    let bytes = ALLOC_BYTES.load(Ordering::Relaxed) - bytes0;
    let mut times = [0.0; RUNS];
    times[0] = batch.ms_per_query();
    for t in &mut times[1..] {
        *t = run_batch(engine, alg, sources, targets, K).ms_per_query();
    }
    engine.set_trace_sampling(1);
    let (ms_trace, _) = median_ms(engine, alg, sources, targets, K);
    let n = batch.queries.max(1) as f64;
    AlgoMeasurement {
        name: alg.name(),
        batch,
        ms_per_query: median(&mut times),
        ms_per_query_trace: ms_trace,
        allocs_per_query: calls as f64 / n,
        alloc_bytes_per_query: bytes as f64 / n,
    }
}

/// One cell of the intra-query scaling axis.
struct ParCell {
    k: usize,
    threads: usize,
    ms_per_query: f64,
    /// Sequential median / this cell's median (>1 = parallel wins).
    speedup: f64,
}

/// The algorithm the threads axis sweeps: the deviation paradigm is
/// where round batches get widest, so it bounds what intra-query
/// parallelism can buy.
const PAR_ALG: Algorithm = Algorithm::DaSptPascoal;

/// Sweep threads × k for one workload. `threads = 1` runs the engine
/// fully sequential (`par_threads = 0`) and anchors the speedup column.
/// Answers are bit-identical across the axis (the engine's deterministic
/// merge), so every cell does the same algorithmic work.
fn par_axis(g: &Graph, lm: &LandmarkIndex, w: &Workload) -> Vec<ParCell> {
    let mut cells = Vec::new();
    for k in [20usize, 100] {
        let mut base = 0.0;
        for threads in [1usize, 2, 4, 8] {
            let mut engine = QueryEngine::new(g).with_landmarks(lm);
            engine.set_trace_sampling(0);
            engine.set_par_threads(if threads >= 2 { threads } else { 0 });
            run_batch(&mut engine, PAR_ALG, &w.sources, &w.targets, k);
            let (ms, _) = median_ms(&mut engine, PAR_ALG, &w.sources, &w.targets, k);
            if threads == 1 {
                base = ms;
            }
            let speedup = if ms > 0.0 { base / ms } else { 0.0 };
            eprintln!("  k={k:>3} threads={threads}: {ms:>9.3} ms/query  speedup {speedup:>5.2}x");
            cells.push(ParCell {
                k,
                threads,
                ms_per_query: ms,
                speedup,
            });
        }
    }
    cells
}

struct Workload {
    name: &'static str,
    dataset: String,
    sources: Vec<NodeId>,
    targets: Vec<NodeId>,
}

/// The k regimes the k-sweep axis covers (EXPERIMENTS.md's sidetrack
/// table reads straight off these cells).
const K_SWEEP: [usize; 3] = [5, 20, 100];

/// The k-sweep contenders: the classic deviation algorithm, the
/// deviation-family champion, and the sidetrack engine — the comparison
/// the sweep exists to make.
const K_SWEEP_ALGS: [Algorithm; 3] = [
    Algorithm::DaSptPascoal,
    Algorithm::IterBoundI,
    Algorithm::Sidetrack,
];

struct KSweepCell {
    k: usize,
    name: &'static str,
    ms_per_query: f64,
}

/// Sweep [`K_SWEEP`] × [`K_SWEEP_ALGS`] on one workload: how does the
/// sidetrack engine's cost curve bend against the deviation family as k
/// grows? One warmed engine serves the whole sweep, like
/// [`run_workload`].
fn k_sweep_axis(g: &Graph, lm: &LandmarkIndex, w: &Workload) -> Vec<KSweepCell> {
    let mut engine = QueryEngine::new(g).with_landmarks(lm);
    engine.set_trace_sampling(0);
    let mut cells = Vec::new();
    for &k in &K_SWEEP {
        for &alg in &K_SWEEP_ALGS {
            run_batch(&mut engine, alg, &w.sources, &w.targets, k);
            let (ms, _) = median_ms(&mut engine, alg, &w.sources, &w.targets, k);
            eprintln!("  k={k:>3} {:>12}: {ms:>9.3} ms/query", alg.name());
            cells.push(KSweepCell {
                k,
                name: alg.name(),
                ms_per_query: ms,
            });
        }
    }
    cells
}

/// Storage-subsystem axis: cold-load time of the two on-disk formats and
/// the steady-state effect of the BFS locality reorder.
struct StorageMeasurement {
    /// v1 heap parse (offsets + edges read, reverse CSR rebuilt).
    cold_load_ms_v1: f64,
    /// v2 zero-copy mmap open (header/table checksum only).
    cold_load_ms_v2_mmap: f64,
    v1_bytes: u64,
    v2_bytes: u64,
    /// ms/query on the graph as generated vs BFS-reordered, same
    /// workload (ids translated), landmark tables remapped.
    original_ms_per_query: f64,
    reordered_ms_per_query: f64,
}

/// Cold-load: write the road graph in both formats, then time
/// `read_binary` (v1: full parse onto the heap, reverse CSR rebuilt)
/// against `open_v2` (mmap + header checksum, CSR sections zero-copy).
/// Reorder: run the same warmed batch on the original and the
/// BFS-reordered graph — the answer is invariant, the cache locality is
/// not.
fn storage_axis(g: &Graph, lm: &LandmarkIndex, w: &Workload) -> StorageMeasurement {
    let dir = std::env::temp_dir().join(format!("bench-kpj-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench scratch dir");
    let v1_path = dir.join("bench.kpj");
    let v2_path = dir.join("bench.kpj2");
    {
        let f = std::fs::File::create(&v1_path).expect("create v1");
        kpj_graph::io::write_binary(g, std::io::BufWriter::new(f)).expect("write v1");
    }
    kpj_store::write_store_to_path(&v2_path, g, None, Some(lm), None, None).expect("write v2");
    let v1_bytes = std::fs::metadata(&v1_path).map_or(0, |m| m.len());
    let v2_bytes = std::fs::metadata(&v2_path).map_or(0, |m| m.len());

    let mut v1_times = [0.0; RUNS];
    for t in &mut v1_times {
        let t0 = Instant::now();
        let f = std::fs::File::open(&v1_path).expect("open v1");
        let g1 = kpj_graph::io::read_binary(std::io::BufReader::new(f)).expect("read v1");
        *t = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(g1.node_count(), g.node_count());
    }
    let mut v2_times = [0.0; RUNS];
    for t in &mut v2_times {
        let t0 = Instant::now();
        let bundle = kpj_store::open_v2(&v2_path).expect("open v2");
        *t = t0.elapsed().as_secs_f64() * 1e3;
        assert!(bundle.graph.is_fully_mapped(), "v2 open copied the CSR");
    }

    // Locality reorder, measured on the flagship algorithm.
    let alg = Algorithm::IterBoundI;
    let mut engine = QueryEngine::new(g).with_landmarks(lm);
    engine.set_trace_sampling(0);
    run_batch(&mut engine, alg, &w.sources, &w.targets, K);
    let (original_ms, _) = median_ms(&mut engine, alg, &w.sources, &w.targets, K);
    let reordered = kpj_store::reorder(g);
    let rlm = kpj_store::remap_landmarks(lm, &reordered.remap);
    let map = |ids: &[NodeId]| -> Vec<NodeId> {
        ids.iter()
            .map(|&v| {
                reordered
                    .remap
                    .to_internal(v)
                    .expect("permutation is total")
            })
            .collect()
    };
    let (rs, rt) = (map(&w.sources), map(&w.targets));
    let mut rengine = QueryEngine::new(&reordered.graph).with_landmarks(&rlm);
    rengine.set_trace_sampling(0);
    run_batch(&mut rengine, alg, &rs, &rt, K);
    let (reordered_ms, _) = median_ms(&mut rengine, alg, &rs, &rt, K);

    std::fs::remove_file(&v1_path).ok();
    std::fs::remove_file(&v2_path).ok();
    std::fs::remove_dir(&dir).ok();
    StorageMeasurement {
        cold_load_ms_v1: median(&mut v1_times),
        cold_load_ms_v2_mmap: median(&mut v2_times),
        v1_bytes,
        v2_bytes,
        original_ms_per_query: original_ms,
        reordered_ms_per_query: reordered_ms,
    }
}

/// Graph-reduction axis: contract/prune a road network for the
/// workload's `V_S`/`V_T` (`kpj-cli convert --reduce`), build fresh
/// landmarks on the reduced graph, and time every algorithm unreduced vs
/// reduced-with-transparent-re-expansion. Runs on a synthetic road
/// network rather than CAL: the CAL subsample densifies away most
/// degree-2 chains, while road-family graphs keep the long corridors the
/// reduction targets.
struct ReductionMeasurement {
    dataset: String,
    build_ms: f64,
    original_nodes: usize,
    reduced_nodes: usize,
    original_edges: usize,
    reduced_edges: usize,
    /// Median ms/query per algorithm, [`Algorithm::ALL`] order.
    unreduced_ms: Vec<f64>,
    reduced_ms: Vec<f64>,
}

impl ReductionMeasurement {
    /// Fraction of nodes the reduction removed.
    fn node_ratio(&self) -> f64 {
        1.0 - self.reduced_nodes as f64 / self.original_nodes.max(1) as f64
    }

    /// Fraction of arcs the reduction removed.
    fn edge_ratio(&self) -> f64 {
        1.0 - self.reduced_edges as f64 / self.original_edges.max(1) as f64
    }
}

fn reduction_axis(queries: usize, landmark_count: usize, seed: u64) -> ReductionMeasurement {
    let (nodes, arcs) = (20_000usize, 44_000usize);
    let g = kpj_workload::road::RoadConfig::new(nodes, arcs, seed).generate();
    let n = g.node_count();
    let sources = stride_sample(n, queries, 17);
    let targets = stride_sample(n, 40, 3);
    let lm = LandmarkIndex::build(&g, landmark_count, SelectionStrategy::Farthest, seed);

    let t0 = Instant::now();
    let red = kpj_graph::reduce(&g, &sources, &targets);
    let build_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rlm = LandmarkIndex::build(
        &red.graph,
        landmark_count,
        SelectionStrategy::Farthest,
        seed,
    );
    let map = |ids: &[NodeId]| -> Vec<NodeId> {
        ids.iter()
            .map(|&v| red.reduction.to_reduced(v).expect("endpoints are kept"))
            .collect()
    };
    let (rs, rt) = (map(&sources), map(&targets));

    let mut unreduced = QueryEngine::new(&g).with_landmarks(&lm);
    unreduced.set_trace_sampling(0);
    let unreduced_ms = Algorithm::ALL
        .iter()
        .map(|&alg| {
            run_batch(&mut unreduced, alg, &sources, &targets, K);
            let (ms, _) = median_ms(&mut unreduced, alg, &sources, &targets, K);
            ms
        })
        .collect();
    let mut engine = QueryEngine::new(&red.graph)
        .with_landmarks(&rlm)
        .with_reduction(&red.reduction);
    engine.set_trace_sampling(0);
    let reduced_ms = Algorithm::ALL
        .iter()
        .map(|&alg| {
            run_batch(&mut engine, alg, &rs, &rt, K);
            let (ms, _) = median_ms(&mut engine, alg, &rs, &rt, K);
            ms
        })
        .collect();
    ReductionMeasurement {
        dataset: format!("road n={nodes} m={arcs}"),
        build_ms,
        original_nodes: g.node_count(),
        reduced_nodes: red.graph.node_count(),
        original_edges: g.edge_count(),
        reduced_edges: red.graph.edge_count(),
        unreduced_ms,
        reduced_ms,
    }
}

fn run_workload(g: &Graph, lm: &LandmarkIndex, w: &Workload) -> Vec<AlgoMeasurement> {
    let mut engine = QueryEngine::new(g).with_landmarks(lm);
    Algorithm::ALL
        .iter()
        .map(|&alg| {
            let m = measure(&mut engine, alg, &w.sources, &w.targets);
            eprintln!(
                "  {:>12}: {:>9.3} ms/query  {:>9.3} ms/query(trace)  {:>8.1} allocs/query  {:>10.0} B/query",
                m.name,
                m.ms_per_query,
                m.ms_per_query_trace,
                m.allocs_per_query,
                m.alloc_bytes_per_query,
            );
            m
        })
        .collect()
}

/// Deterministic node sample: `count` nodes spread evenly over `0..n`,
/// offset so sources and targets don't collide.
fn stride_sample(n: usize, count: usize, offset: usize) -> Vec<NodeId> {
    let count = count.min(n);
    let stride = (n / count.max(1)).max(1);
    (0..count)
        .map(|i| ((offset + i * stride) % n) as NodeId)
        .collect()
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(s
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || "@._-".contains(c)));
    s
}

/// Flatten a report into `(cell key, value)` pairs for the regression
/// diff: every `workloads.*.algorithms.*` cell contributes its ms/query
/// and allocs/query, every k-sweep cell its ms/query. Higher is worse
/// for all of them. Sections a (possibly older-schema) report lacks are
/// simply absent — the diff treats those cells as new.
fn flatten_cells(doc: &Json) -> Vec<(String, f64)> {
    let mut cells = Vec::new();
    if let Some(Json::Obj(workloads)) = doc.get("workloads") {
        for (wname, w) in workloads {
            if let Some(Json::Obj(algs)) = w.get("algorithms") {
                for (aname, cell) in algs {
                    for metric in ["ms_per_query", "allocs_per_query"] {
                        if let Some(v) = cell.get(metric).and_then(Json::as_f64) {
                            cells.push((format!("{wname}/{aname}/{metric}"), v));
                        }
                    }
                }
            }
        }
    }
    if let Some(Json::Obj(sweeps)) = doc.get("k_sweep") {
        for (wname, arr) in sweeps {
            for cell in arr.as_arr().unwrap_or(&[]) {
                if let (Some(k), Some(alg), Some(ms)) = (
                    cell.get("k").and_then(Json::as_u64),
                    cell.get("algorithm").and_then(Json::as_str),
                    cell.get("ms_per_query").and_then(Json::as_f64),
                ) {
                    cells.push((format!("k_sweep/{wname}/k={k}/{alg}/ms_per_query"), ms));
                }
            }
        }
    }
    cells
}

/// Diff the fresh report against a committed baseline and print the
/// delta table. Returns the number of regressed cells: a cell regresses
/// when it is worse than the baseline by more than `pct` percent *and*
/// by more than a small absolute slack (timings jitter below a few
/// microseconds; allocation counts are deterministic but reported as
/// per-query averages, so sub-alloc drift is rounding). Cells present
/// on only one side are reported but never count as regressions —
/// that's how a new algorithm or axis enters the baseline.
fn compare_reports(baseline_path: &str, baseline: &Json, current: &Json, pct: f64) -> usize {
    let base_cells = flatten_cells(baseline);
    let cur_cells = flatten_cells(current);
    let mut regressions = 0;
    eprintln!("==> compare vs {baseline_path} (threshold +{pct:.0}%)");
    for (key, cur) in &cur_cells {
        match base_cells.iter().find(|(k, _)| k == key) {
            None => eprintln!("  {key:<56} {:>9} -> {cur:>9.3}  (new cell)", "-"),
            Some((_, base)) => {
                let delta = if *base > 0.0 {
                    (cur / base - 1.0) * 100.0
                } else if *cur > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                let slack = if key.ends_with("allocs_per_query") {
                    0.5
                } else {
                    0.002
                };
                let regressed = delta > pct && cur - base > slack;
                regressions += usize::from(regressed);
                eprintln!(
                    "  {key:<56} {base:>9.3} -> {cur:>9.3}  ({delta:>+7.1}%){}",
                    if regressed { "  REGRESSION" } else { "" },
                );
            }
        }
    }
    for (key, _) in &base_cells {
        if !cur_cells.iter().any(|(k, _)| k == key) {
            eprintln!("  {key:<56} dropped from report");
        }
    }
    regressions
}

fn main() {
    let mut out_path = "BENCH_kpj.json".to_string();
    let mut queries = 6usize;
    let mut compare_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--queries" => {
                queries = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--queries needs a number")
            }
            "--compare" => compare_path = Some(args.next().expect("--compare needs a path")),
            other => {
                eprintln!("unknown argument `{other}` (expected --out / --queries / --compare)");
                std::process::exit(2);
            }
        }
    }
    // Read the baseline *before* the sweep so a bad path fails in
    // seconds, not after minutes of timed passes.
    let baseline = compare_path.as_ref().map(|path| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("baseline {path} is not valid JSON: {e}");
            std::process::exit(2);
        })
    });

    let started = Instant::now();

    // Road workload: CAL at 5% scale, Crater category, the middle distance
    // quantile (Q3) — the paper's default shape.
    eprintln!("==> road workload (CAL@0.05, crater, Q3, k={K})");
    let cal = CalEnv::new(0.05, 16);
    let road = Workload {
        name: "road",
        dataset: format!("CAL@0.05 n={}", cal.graph.node_count()),
        sources: cal.query_sets(cal.cal.crater, queries).group(3).to_vec(),
        targets: cal.categories.members(cal.cal.crater).to_vec(),
    };
    let road_rows = run_workload(&cal.graph, &cal.landmarks, &road);

    // Social workload: Watts–Strogatz small world (the paper's §1
    // motivating application), stride-sampled sources and targets.
    eprintln!("==> social workload (WS n=4000, k={K})");
    let social_graph = SocialConfig::new(4_000, 0x50C1A1).generate();
    let social_lm = LandmarkIndex::build(&social_graph, 16, SelectionStrategy::Farthest, 0x50C1A1);
    let n = social_graph.node_count();
    let social = Workload {
        name: "social",
        dataset: format!("WS@4000 n={n}"),
        sources: stride_sample(n, queries, 17),
        targets: stride_sample(n, 40, 3),
    };
    let social_rows = run_workload(&social_graph, &social_lm, &social);

    // k-sweep axis: sidetrack vs the deviation family across k regimes.
    eprintln!("==> k sweep, road (k in {K_SWEEP:?})");
    let road_ksweep = k_sweep_axis(&cal.graph, &cal.landmarks, &road);
    eprintln!("==> k sweep, social (k in {K_SWEEP:?})");
    let social_ksweep = k_sweep_axis(&social_graph, &social_lm, &social);

    // Storage axis: cold-load of both formats + the locality reorder.
    eprintln!("==> storage (cold load v1 vs v2-mmap, BFS reorder), road");
    let storage = storage_axis(&cal.graph, &cal.landmarks, &road);
    eprintln!(
        "  cold load: v1 {:.3} ms ({} B)  v2-mmap {:.3} ms ({} B)",
        storage.cold_load_ms_v1, storage.v1_bytes, storage.cold_load_ms_v2_mmap, storage.v2_bytes,
    );
    eprintln!(
        "  reorder: original {:.3} ms/query  reordered {:.3} ms/query",
        storage.original_ms_per_query, storage.reordered_ms_per_query,
    );

    // Reduction axis: contract/prune a synthetic road network for its
    // workload's V_S/V_T and re-time every algorithm with transparent
    // re-expansion.
    eprintln!("==> reduction (convert --reduce), synthetic road");
    let reduction = reduction_axis(queries, 16, 0xCA1);
    eprintln!(
        "  reduce: {} -> {} nodes (-{:.1}%), {} -> {} arcs (-{:.1}%), built in {:.1} ms",
        reduction.original_nodes,
        reduction.reduced_nodes,
        reduction.node_ratio() * 100.0,
        reduction.original_edges,
        reduction.reduced_edges,
        reduction.edge_ratio() * 100.0,
        reduction.build_ms,
    );
    for ((&alg, &ums), &rms) in Algorithm::ALL
        .iter()
        .zip(&reduction.unreduced_ms)
        .zip(&reduction.reduced_ms)
    {
        eprintln!(
            "  {:>12}: {:>9.3} ms/query unreduced  {:>9.3} ms/query reduced  ({:+.1}%)",
            alg.name(),
            ums,
            rms,
            (rms / ums - 1.0) * 100.0,
        );
    }

    // Intra-query scaling axis: threads × k on the deviation paradigm.
    // On a single-core host this reads ~1.0x across the board (the
    // fan-out still runs, serialized) — scaling shows up on multi-core.
    eprintln!("==> par scaling, road ({})", PAR_ALG.name());
    let road_par = par_axis(&cal.graph, &cal.landmarks, &road);
    eprintln!("==> par scaling, social ({})", PAR_ALG.name());
    let social_par = par_axis(&social_graph, &social_lm, &social);

    let mut json = String::new();
    json.push_str("{\n  \"schema\": 2,\n  \"k\": ");
    let _ = write!(json, "{K}");
    json.push_str(",\n  \"workloads\": {\n");
    for (wi, (w, rows)) in [(&road, &road_rows), (&social, &social_rows)]
        .into_iter()
        .enumerate()
    {
        if wi > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "    \"{}\": {{\n      \"dataset\": \"{}\",\n      \"queries\": {},\n      \"algorithms\": {{\n",
            w.name,
            json_escape_free(&w.dataset.replace(' ', "_")),
            rows.first().map_or(0, |m| m.batch.queries),
        );
        for (i, m) in rows.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            let ms = m.ms_per_query;
            let qps = if ms > 0.0 { 1e3 / ms } else { 0.0 };
            let _ = write!(
                json,
                "        \"{}\": {{\"ms_per_query\": {:.4}, \"ms_per_query_trace\": {:.4}, \"queries_per_sec\": {:.2}, \"allocs_per_query\": {:.1}, \"alloc_bytes_per_query\": {:.0}}}",
                m.name, ms, m.ms_per_query_trace, qps, m.allocs_per_query, m.alloc_bytes_per_query,
            );
        }
        json.push_str("\n      }\n    }");
    }
    json.push_str("\n  },\n  \"k_sweep\": {\n");
    for (wi, (name, cells)) in [("road", &road_ksweep), ("social", &social_ksweep)]
        .into_iter()
        .enumerate()
    {
        if wi > 0 {
            json.push_str(",\n");
        }
        let _ = writeln!(json, "    \"{name}\": [");
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            let _ = write!(
                json,
                "      {{\"k\": {}, \"algorithm\": \"{}\", \"ms_per_query\": {:.4}}}",
                c.k, c.name, c.ms_per_query,
            );
        }
        json.push_str("\n    ]");
    }
    json.push_str("\n  },\n");
    let _ = write!(
        json,
        "  \"par_scaling\": {{\n    \"algorithm\": \"{}\",\n    \"runs\": {RUNS},\n",
        PAR_ALG.name()
    );
    for (wi, (name, cells)) in [("road", &road_par), ("social", &social_par)]
        .into_iter()
        .enumerate()
    {
        if wi > 0 {
            json.push_str(",\n");
        }
        let _ = writeln!(json, "    \"{name}\": [");
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                json.push_str(",\n");
            }
            let _ = write!(
                json,
                "      {{\"k\": {}, \"threads\": {}, \"ms_per_query\": {:.4}, \"speedup\": {:.2}}}",
                c.k, c.threads, c.ms_per_query, c.speedup,
            );
        }
        json.push_str("\n    ]");
    }
    json.push_str("\n  },\n");
    let _ = write!(
        json,
        "  \"storage\": {{\n    \"cold_load_ms_v1\": {:.4},\n    \"cold_load_ms_v2_mmap\": {:.4},\n    \"v1_bytes\": {},\n    \"v2_bytes\": {},\n    \"reorder\": {{\"algorithm\": \"{}\", \"original_ms_per_query\": {:.4}, \"reordered_ms_per_query\": {:.4}}}\n  }},\n",
        storage.cold_load_ms_v1,
        storage.cold_load_ms_v2_mmap,
        storage.v1_bytes,
        storage.v2_bytes,
        Algorithm::IterBoundI.name(),
        storage.original_ms_per_query,
        storage.reordered_ms_per_query,
    );
    let _ = write!(
        json,
        "  \"reduction\": {{\n    \"dataset\": \"{}\",\n    \"reduce_build_ms\": {:.4},\n    \"original_nodes\": {},\n    \"reduced_nodes\": {},\n    \"reduce_node_ratio\": {:.4},\n    \"original_edges\": {},\n    \"reduced_edges\": {},\n    \"reduce_edge_ratio\": {:.4},\n    \"algorithms\": {{\n",
        json_escape_free(&reduction.dataset.replace(' ', "_")),
        reduction.build_ms,
        reduction.original_nodes,
        reduction.reduced_nodes,
        reduction.node_ratio(),
        reduction.original_edges,
        reduction.reduced_edges,
        reduction.edge_ratio(),
    );
    for (i, ((&alg, &ums), &rms)) in Algorithm::ALL
        .iter()
        .zip(&reduction.unreduced_ms)
        .zip(&reduction.reduced_ms)
        .enumerate()
    {
        if i > 0 {
            json.push_str(",\n");
        }
        let _ = write!(
            json,
            "      \"{}\": {{\"unreduced_ms_per_query\": {:.4}, \"reduced_ms_per_query\": {:.4}}}",
            alg.name(),
            ums,
            rms,
        );
    }
    json.push_str("\n    }\n  },\n");
    let _ = write!(
        json,
        "  \"wall_seconds\": {:.1}\n}}\n",
        started.elapsed().as_secs_f64()
    );

    std::fs::write(&out_path, &json).expect("write BENCH_kpj.json");
    eprintln!(
        "wrote {out_path} in {:.1}s",
        started.elapsed().as_secs_f64()
    );

    if let (Some(path), Some(baseline)) = (&compare_path, &baseline) {
        let pct = std::env::var("BENCH_REGRESS_PCT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(25.0);
        let current = Json::parse(&json).expect("own report parses");
        let regressions = compare_reports(path, baseline, &current, pct);
        if regressions > 0 {
            eprintln!("bench-kpj: {regressions} cell(s) regressed beyond {pct:.0}% vs {path}");
            std::process::exit(1);
        }
        eprintln!("bench-kpj: no regression beyond {pct:.0}% vs {path}");
    }
}
