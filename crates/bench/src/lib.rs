//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every experiment of §7 needs the same scaffolding: a (scaled) synthetic
//! dataset, its POI categories, a landmark index, distance-stratified
//! query sets, and per-algorithm timing over a batch of queries. This
//! crate centralizes that so the Criterion benches (`benches/`, one per
//! figure) and the `repro` binary (paper-style tables on stdout) stay
//! small and consistent.
//!
//! Scaling: `cargo bench` uses reduced scales so a full run stays in the
//! minutes; `repro --full` uses the paper's exact dataset sizes. The
//! *shape* claims of the paper (who wins, by how much, trends in Q/k/|T|)
//! are scale-stable — see `EXPERIMENTS.md`.

use std::time::{Duration, Instant};

use kpj_core::{Algorithm, QueryEngine, QueryStats};
use kpj_graph::{CategoryIndex, Graph, NodeId};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_workload::datasets::DatasetSpec;
use kpj_workload::poi::{self, CalCategories, NestedPois};
use kpj_workload::queries::QuerySets;

/// The paper's default landmark count (§7 Eval-I).
pub const DEFAULT_LANDMARKS: usize = 16;

/// A fully prepared CAL-style environment (real-POI categories).
pub struct CalEnv {
    /// The road network.
    pub graph: Graph,
    /// 62 categories, four of which match the paper's cardinalities.
    pub categories: CategoryIndex,
    /// Handles to Glacier/Lake/Crater/Harbor.
    pub cal: CalCategories,
    /// The offline ALT index.
    pub landmarks: LandmarkIndex,
}

impl CalEnv {
    /// Build at `scale` with `lm` landmarks.
    pub fn new(scale: f64, lm: usize) -> CalEnv {
        let graph = kpj_workload::datasets::CAL.generate(scale);
        let mut categories = CategoryIndex::new();
        let cal = poi::generate_cal_categories(&mut categories, graph.node_count(), 0xCA11);
        let landmarks = LandmarkIndex::build(&graph, lm, SelectionStrategy::Farthest, 0xCA11);
        CalEnv {
            graph,
            categories,
            cal,
            landmarks,
        }
    }

    /// Query sets for one of the CAL categories.
    pub fn query_sets(&self, cat: kpj_graph::CategoryId, per_group: usize) -> QuerySets {
        QuerySets::generate(
            &self.graph,
            self.categories.members(cat),
            5,
            per_group,
            0xCA11,
        )
    }
}

/// A prepared environment for one Table 1 dataset with nested `T1..T4`.
pub struct NestedEnv {
    /// Which dataset (and its paper-scale size).
    pub spec: DatasetSpec,
    /// The road network at the chosen scale.
    pub graph: Graph,
    /// `T1 ⊂ T2 ⊂ T3 ⊂ T4`.
    pub categories: CategoryIndex,
    /// Handles to the four sets.
    pub pois: NestedPois,
    /// The offline ALT index.
    pub landmarks: LandmarkIndex,
}

impl NestedEnv {
    /// Build `spec` at `scale`.
    pub fn new(spec: DatasetSpec, scale: f64) -> NestedEnv {
        let graph = spec.generate(scale);
        let mut categories = CategoryIndex::new();
        let pois = poi::generate_nested_pois(&mut categories, graph.node_count(), 0x901);
        let landmarks = LandmarkIndex::build(
            &graph,
            DEFAULT_LANDMARKS,
            SelectionStrategy::Farthest,
            0x901,
        );
        NestedEnv {
            spec,
            graph,
            categories,
            pois,
            landmarks,
        }
    }

    /// Member nodes of `T_i` (1-based, as in the paper).
    pub fn t(&self, i: usize) -> &[NodeId] {
        self.categories.members(self.pois.t[i - 1])
    }

    /// Query sets against `T_i`.
    pub fn query_sets(&self, i: usize, per_group: usize) -> QuerySets {
        QuerySets::generate(&self.graph, self.t(i), 5, per_group, 0x901)
    }
}

/// Outcome of timing one algorithm over a batch of queries.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchResult {
    /// Queries executed.
    pub queries: usize,
    /// Total wall time.
    pub total: Duration,
    /// Aggregated counters.
    pub stats: QueryStats,
}

impl BatchResult {
    /// Mean processing time per query in milliseconds (the paper's y-axis).
    pub fn ms_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total.as_secs_f64() * 1e3 / self.queries as f64
        }
    }
}

/// Run `alg` for every source in `sources` against `targets`, top-`k`.
pub fn run_batch(
    engine: &mut QueryEngine<'_>,
    alg: Algorithm,
    sources: &[NodeId],
    targets: &[NodeId],
    k: usize,
) -> BatchResult {
    let mut out = BatchResult::default();
    for &s in sources {
        let t0 = Instant::now();
        let r = engine.query(alg, s, targets, k).expect("valid query");
        out.total += t0.elapsed();
        out.queries += 1;
        out.stats.absorb(&r.stats);
        assert!(r.paths.len() <= k);
    }
    out
}

/// Like [`run_batch`] but each "source" is a whole GKPJ source set.
pub fn run_batch_multi(
    engine: &mut QueryEngine<'_>,
    alg: Algorithm,
    source_sets: &[Vec<NodeId>],
    targets: &[NodeId],
    k: usize,
) -> BatchResult {
    let mut out = BatchResult::default();
    for set in source_sets {
        let t0 = Instant::now();
        let r = engine
            .query_multi(alg, set, targets, k)
            .expect("valid query");
        out.total += t0.elapsed();
        out.queries += 1;
        out.stats.absorb(&r.stats);
    }
    out
}

/// Pretty-print one table row: label + per-column mean milliseconds.
pub fn print_row(label: &str, cells: &[f64]) {
    print!("{label:>14}");
    for c in cells {
        print!(" {c:>10.3}");
    }
    println!();
}

/// Pretty-print the table header.
pub fn print_header(corner: &str, cols: &[String]) {
    print!("{corner:>14}");
    for c in cols {
        print!(" {c:>10}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envs_build_and_batches_run() {
        let env = NestedEnv::new(kpj_workload::datasets::SJ, 0.05);
        assert!(env.graph.node_count() > 500);
        assert!(!env.t(1).is_empty());
        let qs = env.query_sets(2, 2);
        let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
        let r = run_batch(
            &mut engine,
            Algorithm::IterBoundI,
            qs.group(3),
            env.t(2),
            10,
        );
        assert_eq!(r.queries, 2);
        assert!(r.ms_per_query() >= 0.0);
    }

    #[test]
    fn cal_env_has_paper_categories() {
        let env = CalEnv::new(0.02, 4);
        assert_eq!(env.categories.members(env.cal.glacier).len(), 1);
        assert_eq!(env.categories.members(env.cal.harbor).len(), 94);
        let qs = env.query_sets(env.cal.lake, 2);
        assert_eq!(qs.group_count(), 5);
    }
}
