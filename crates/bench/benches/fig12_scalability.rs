//! Fig. 12 — scalability of `IterBoundI`: (a) graph size SJ → COL at a
//! fixed scale factor, (b) very large `k` on COL.
//!
//! Paper shape: runtime grows far slower than graph size (the exploration
//! area depends on the k-shortest-path lengths, not on `n`), and grows
//! roughly linearly in `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpj_bench::{run_batch, NestedEnv};
use kpj_core::{Algorithm, QueryEngine};
use kpj_workload::datasets;

const QUERIES: usize = 3;

fn vary_graph_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12a_iterboundi_t2_q3_k20");
    group.sample_size(10);
    // Fixed scale across datasets preserves the paper's relative sizes
    // (SJ : SF : COL = 1 : 9.6 : 23.9 in nodes).
    for spec in [datasets::SJ, datasets::SF, datasets::COL] {
        let env = NestedEnv::new(spec, 0.1);
        let targets = env.t(2).to_vec();
        let qs = env.query_sets(2, QUERIES);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}_{}", spec.name, env.graph.node_count())),
            &(),
            |b, _| {
                let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
                b.iter(|| {
                    run_batch(
                        &mut engine,
                        Algorithm::IterBoundI,
                        qs.group(3),
                        &targets,
                        20,
                    )
                });
            },
        );
    }
    group.finish();
}

fn vary_large_k(c: &mut Criterion) {
    let env = NestedEnv::new(datasets::COL, 0.05);
    let targets = env.t(2).to_vec();
    let qs = env.query_sets(2, QUERIES);
    let mut group = c.benchmark_group("fig12b_iterboundi_col_t2_q3");
    group.sample_size(10);
    for k in [10usize, 50, 100, 200, 500] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
            b.iter(|| run_batch(&mut engine, Algorithm::IterBoundI, qs.group(3), &targets, k));
        });
    }
    group.finish();
}

criterion_group!(benches, vary_graph_size, vary_large_k);
criterion_main!(benches);
