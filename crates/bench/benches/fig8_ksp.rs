//! Fig. 8 — KSP on CAL: every algorithm in `Algorithm::ALL` on a singleton
//! category ("Glacier" has one physical node), demonstrating that the KPJ
//! machinery subsumes the classic k-shortest-simple-paths problem and
//! still beats the state-of-the-art `DA-SPT` by orders of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpj_bench::{run_batch, CalEnv};
use kpj_core::{Algorithm, QueryEngine};

const SCALE: f64 = 0.1;
const QUERIES: usize = 3;

fn ksp_algorithms(c: &mut Criterion) {
    let env = CalEnv::new(SCALE, 16);
    let targets = env.categories.members(env.cal.glacier).to_vec();
    assert_eq!(targets.len(), 1, "Glacier is the KSP workload");
    let qs = env.query_sets(env.cal.glacier, QUERIES);
    let mut group = c.benchmark_group("fig8_glacier_q3_k20");
    group.sample_size(10);
    for alg in Algorithm::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &a| {
            let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
            b.iter(|| run_batch(&mut engine, a, qs.group(3), &targets, 20));
        });
    }
    group.bench_function(BenchmarkId::from_parameter("IterBoundI-NL"), |b| {
        let mut engine = QueryEngine::new(&env.graph);
        b.iter(|| {
            run_batch(
                &mut engine,
                Algorithm::IterBoundI,
                qs.group(3),
                &targets,
                20,
            )
        });
    });
    group.finish();
}

fn ksp_vary_k(c: &mut Criterion) {
    let env = CalEnv::new(SCALE, 16);
    let targets = env.categories.members(env.cal.glacier).to_vec();
    let qs = env.query_sets(env.cal.glacier, QUERIES);
    let mut group = c.benchmark_group("fig8_glacier_q3_vary_k");
    group.sample_size(10);
    for k in [10usize, 20, 30, 50] {
        group.bench_with_input(BenchmarkId::new("IterBoundI", k), &k, |b, &k| {
            let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
            b.iter(|| run_batch(&mut engine, Algorithm::IterBoundI, qs.group(3), &targets, k));
        });
        group.bench_with_input(BenchmarkId::new("DA-SPT", k), &k, |b, &k| {
            let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
            b.iter(|| run_batch(&mut engine, Algorithm::DaSpt, qs.group(3), &targets, k));
        });
    }
    group.finish();
}

criterion_group!(benches, ksp_algorithms, ksp_vary_k);
criterion_main!(benches);
