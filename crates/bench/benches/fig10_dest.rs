//! Fig. 10 — sensitivity to the number of destination nodes `|T|`
//! (the nested POI sets `T1 ⊂ T2 ⊂ T3 ⊂ T4`) on SJ.
//!
//! Paper shape: processing time *decreases* as `|T|` grows (shortest
//! paths get shorter — Fig. 11), and `IterBoundI`'s advantage over the
//! other approaches widens with `|T|` (it prunes destinations via `SPT_I`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpj_bench::{run_batch, NestedEnv};
use kpj_core::{Algorithm, QueryEngine};
use kpj_workload::datasets;

const QUERIES: usize = 3;

fn vary_dest_count(c: &mut Criterion) {
    let env = NestedEnv::new(datasets::SJ, 0.3);
    for alg in [
        Algorithm::BestFirst,
        Algorithm::IterBound,
        Algorithm::IterBoundP,
        Algorithm::IterBoundI,
    ] {
        let mut group = c.benchmark_group(format!("fig10_sj_{}", alg.name().to_lowercase()));
        group.sample_size(10);
        for t in 1..=4usize {
            let targets = env.t(t).to_vec();
            let qs = env.query_sets(t, QUERIES);
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("T{t}_{}", targets.len())),
                &t,
                |b, _| {
                    let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
                    b.iter(|| run_batch(&mut engine, alg, qs.group(3), &targets, 20));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, vary_dest_count);
criterion_main!(benches);
