//! Fig. 9 — our four approaches against each other on SJ and COL
//! (`T = T2`, Q3, k = 20).
//!
//! Paper shape: `IterBoundI ≤ IterBoundP ≤ IterBound ≈ BestFirst`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpj_bench::{run_batch, NestedEnv};
use kpj_core::{Algorithm, QueryEngine};
use kpj_workload::datasets;

const QUERIES: usize = 3;
const OURS: [Algorithm; 4] = [
    Algorithm::BestFirst,
    Algorithm::IterBound,
    Algorithm::IterBoundP,
    Algorithm::IterBoundI,
];

fn our_approaches(c: &mut Criterion) {
    for (spec, scale) in [(datasets::SJ, 0.3), (datasets::COL, 0.05)] {
        let env = NestedEnv::new(spec, scale);
        let targets = env.t(2).to_vec();
        let qs = env.query_sets(2, QUERIES);
        let mut group = c.benchmark_group(format!("fig9_{}_t2_q3_k20", spec.name.to_lowercase()));
        group.sample_size(10);
        for alg in OURS {
            group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &a| {
                let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
                b.iter(|| run_batch(&mut engine, a, qs.group(3), &targets, 20));
            });
        }
        group.finish();
    }
}

fn vary_k_on_sj(c: &mut Criterion) {
    let env = NestedEnv::new(datasets::SJ, 0.3);
    let targets = env.t(2).to_vec();
    let qs = env.query_sets(2, QUERIES);
    let mut group = c.benchmark_group("fig9_sj_t2_q3_vary_k");
    group.sample_size(10);
    for k in [10usize, 20, 30, 50] {
        for alg in [Algorithm::BestFirst, Algorithm::IterBoundI] {
            group.bench_with_input(BenchmarkId::new(alg.name(), k), &k, |b, &k| {
                let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
                b.iter(|| run_batch(&mut engine, alg, qs.group(3), &targets, k));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, our_approaches, vary_k_on_sj);
criterion_main!(benches);
