//! Fig. 7 — KPJ on CAL: every algorithm in `Algorithm::ALL` against the
//! deviation baselines, across destination categories and query-k
//! settings.
//!
//! Paper shape: every best-first variant beats DA/DA-SPT, `IterBoundI`
//! wins overall, and `DA-SPT` loses exactly where the full-SPT build
//! dominates (near queries / large categories).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpj_bench::{run_batch, CalEnv};
use kpj_core::{Algorithm, QueryEngine};

const SCALE: f64 = 0.1;
const QUERIES: usize = 3;

fn algorithms_by_category(c: &mut Criterion) {
    let env = CalEnv::new(SCALE, 16);
    for (cat_name, cat) in [("lake", env.cal.lake), ("harbor", env.cal.harbor)] {
        let targets = env.categories.members(cat).to_vec();
        let qs = env.query_sets(cat, QUERIES);
        let mut group = c.benchmark_group(format!("fig7_{cat_name}_q3_k20"));
        group.sample_size(10);
        for alg in Algorithm::ALL {
            group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, &a| {
                let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
                b.iter(|| run_batch(&mut engine, a, qs.group(3), &targets, 20));
            });
        }
        // The seventh line: IterBoundI without landmarks.
        group.bench_function(BenchmarkId::from_parameter("IterBoundI-NL"), |b| {
            let mut engine = QueryEngine::new(&env.graph);
            b.iter(|| {
                run_batch(
                    &mut engine,
                    Algorithm::IterBoundI,
                    qs.group(3),
                    &targets,
                    20,
                )
            });
        });
        group.finish();
    }
}

fn vary_query_group(c: &mut Criterion) {
    let env = CalEnv::new(SCALE, 16);
    let targets = env.categories.members(env.cal.crater).to_vec();
    let qs = env.query_sets(env.cal.crater, QUERIES);
    let mut group = c.benchmark_group("fig7_crater_vary_q_k20_iterboundi");
    group.sample_size(10);
    for q in 1..=5usize {
        group.bench_with_input(BenchmarkId::from_parameter(format!("Q{q}")), &q, |b, &q| {
            let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
            b.iter(|| {
                run_batch(
                    &mut engine,
                    Algorithm::IterBoundI,
                    qs.group(q),
                    &targets,
                    20,
                )
            });
        });
    }
    group.finish();
}

fn vary_k(c: &mut Criterion) {
    let env = CalEnv::new(SCALE, 16);
    let targets = env.categories.members(env.cal.crater).to_vec();
    let qs = env.query_sets(env.cal.crater, QUERIES);
    let mut group = c.benchmark_group("fig7_crater_q3_vary_k_iterboundi");
    group.sample_size(10);
    for k in [10usize, 20, 30, 50] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
            b.iter(|| run_batch(&mut engine, Algorithm::IterBoundI, qs.group(3), &targets, k));
        });
    }
    group.finish();
}

criterion_group!(benches, algorithms_by_category, vary_query_group, vary_k);
criterion_main!(benches);
