//! Ablations for the design choices DESIGN.md calls out:
//!
//! * **Eq. (1) vs Eq. (2)** (§4.2): the naive `min_v max_w` bound costs
//!   `O(|L|·|V_T|)` per estimate vs Eq. (2)'s `O(|L|)` — the paper's
//!   reason for Eq. (2). Measured on raw bound evaluation throughput.
//! * **Landmark selection** (§7 footnote 3): Farthest-point vs uniform
//!   Random selection, measured end-to-end on `IterBoundI`.
//! * **Landmarks on/off for the whole pipeline** (§6): `IterBoundI` vs
//!   `IterBoundI-NL` on a KSP workload, where the bounds matter most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpj_bench::{run_batch, CalEnv, NestedEnv};
use kpj_core::{Algorithm, QueryEngine};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_workload::datasets;

fn eq1_vs_eq2(c: &mut Criterion) {
    let env = NestedEnv::new(datasets::SJ, 0.3);
    let targets = env.t(3).to_vec(); // a mid-size category
    let qb = env.landmarks.for_targets(&targets);
    let probe: Vec<u32> = (0..env.graph.node_count() as u32).step_by(37).collect();
    let mut group = c.benchmark_group("ablation_lb_to_targets");
    group.bench_function("eq2_per_landmark", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &probe {
                acc = acc.wrapping_add(std::hint::black_box(qb.lb_to_targets(v)));
            }
            acc
        })
    });
    group.bench_function("eq1_per_target_pair", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &v in &probe {
                acc = acc.wrapping_add(std::hint::black_box(qb.lb_to_targets_eq1(v, &targets)));
            }
            acc
        })
    });
    group.finish();
}

fn selection_strategy(c: &mut Criterion) {
    let env = NestedEnv::new(datasets::SJ, 0.3);
    let targets = env.t(2).to_vec();
    let qs = env.query_sets(2, 3);
    let mut group = c.benchmark_group("ablation_landmark_selection_iterboundi");
    group.sample_size(10);
    for strategy in [SelectionStrategy::Farthest, SelectionStrategy::Random] {
        let idx = LandmarkIndex::build(&env.graph, 16, strategy, 0x5e1);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &(),
            |b, _| {
                let mut engine = QueryEngine::new(&env.graph).with_landmarks(&idx);
                b.iter(|| {
                    run_batch(
                        &mut engine,
                        Algorithm::IterBoundI,
                        qs.group(3),
                        &targets,
                        20,
                    )
                });
            },
        );
    }
    group.finish();
}

fn landmarks_on_off_ksp(c: &mut Criterion) {
    let env = CalEnv::new(0.1, 16);
    let targets = env.categories.members(env.cal.glacier).to_vec();
    let qs = env.query_sets(env.cal.glacier, 3);
    let mut group = c.benchmark_group("ablation_landmarks_ksp_iterboundi");
    group.sample_size(10);
    group.bench_function("with_landmarks", |b| {
        let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
        b.iter(|| {
            run_batch(
                &mut engine,
                Algorithm::IterBoundI,
                qs.group(3),
                &targets,
                20,
            )
        });
    });
    group.bench_function("no_landmarks", |b| {
        let mut engine = QueryEngine::new(&env.graph);
        b.iter(|| {
            run_batch(
                &mut engine,
                Algorithm::IterBoundI,
                qs.group(3),
                &targets,
                20,
            )
        });
    });
    group.finish();
}

fn simple_vs_general_paths(c: &mut Criterion) {
    // The related-work contrast (§1, [12, 19]): top-k *general* paths
    // (cycles allowed) are classically easy; the simplicity constraint is
    // what the paper's machinery pays for.
    let env = NestedEnv::new(datasets::SJ, 0.3);
    let targets = env.t(2).to_vec();
    let qs = env.query_sets(2, 3);
    let sources = qs.group(3).to_vec();
    let mut group = c.benchmark_group("ablation_simple_vs_general_k50");
    group.sample_size(10);
    group.bench_function("general_walks", |b| {
        b.iter(|| {
            for &s in &sources {
                std::hint::black_box(kpj_core::general::top_k_walks(
                    &env.graph,
                    &[s],
                    &targets,
                    50,
                ));
            }
        })
    });
    group.bench_function("simple_iterboundi", |b| {
        let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
        b.iter(|| run_batch(&mut engine, Algorithm::IterBoundI, &sources, &targets, 50));
    });
    group.finish();
}

criterion_group!(
    benches,
    eq1_vs_eq2,
    selection_strategy,
    landmarks_on_off_ksp,
    simple_vs_general_paths
);
criterion_main!(benches);
