//! Fig. 13 — GKPJ (category-to-category) queries on COL: `DA-SPT` vs
//! `IterBoundI` with `|S| = 4` random source nodes.
//!
//! Paper shape: the gap grows to ~two orders of magnitude — with multiple
//! sources the k shortest paths get *shorter*, which shrinks
//! `IterBoundI`'s exploration area while `DA-SPT` still pays for its full
//! SPT and its `O(k·n)` candidates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpj_bench::{run_batch_multi, NestedEnv};
use kpj_core::{Algorithm, QueryEngine};
use kpj_graph::NodeId;
use kpj_workload::datasets;

fn source_sets(n: u32, how_many: usize) -> Vec<Vec<NodeId>> {
    (0..how_many as u64)
        .map(|i| {
            (0..4u64)
                .map(|j| ((i * 4 + j + 1).wrapping_mul(0x9E3779B97F4A7C15) % n as u64) as NodeId)
                .collect()
        })
        .collect()
}

fn gkpj_vary_dest(c: &mut Criterion) {
    let env = NestedEnv::new(datasets::COL, 0.05);
    let sets = source_sets(env.graph.node_count() as u32, 3);
    for alg in [Algorithm::DaSpt, Algorithm::IterBoundI] {
        let mut group = c.benchmark_group(format!("fig13a_col_{}", alg.name().to_lowercase()));
        group.sample_size(10);
        for t in 1..=4usize {
            let targets = env.t(t).to_vec();
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("T{t}_{}", targets.len())),
                &t,
                |b, _| {
                    let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
                    b.iter(|| run_batch_multi(&mut engine, alg, &sets, &targets, 20));
                },
            );
        }
        group.finish();
    }
}

fn gkpj_vary_k(c: &mut Criterion) {
    let env = NestedEnv::new(datasets::COL, 0.05);
    let sets = source_sets(env.graph.node_count() as u32, 3);
    let targets = env.t(2).to_vec();
    let mut group = c.benchmark_group("fig13b_col_t2_vary_k");
    group.sample_size(10);
    for k in [10usize, 20, 30, 50] {
        for alg in [Algorithm::DaSpt, Algorithm::IterBoundI] {
            group.bench_with_input(BenchmarkId::new(alg.name(), k), &k, |b, &k| {
                let mut engine = QueryEngine::new(&env.graph).with_landmarks(&env.landmarks);
                b.iter(|| run_batch_multi(&mut engine, alg, &sets, &targets, k));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, gkpj_vary_dest, gkpj_vary_k);
criterion_main!(benches);
