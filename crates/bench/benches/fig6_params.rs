//! Fig. 6 — parameter sensitivity of `IterBoundI` on CAL:
//! (a) landmark count `|L|`, (b) τ growth factor `α`.
//!
//! Paper shape: both curves are U-shaped with minima near `|L| = 16` and
//! `α = 1.1`. Run with `cargo bench -p kpj-bench --bench fig6_params`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kpj_bench::{run_batch, CalEnv};
use kpj_core::{Algorithm, QueryEngine};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};

const SCALE: f64 = 0.1;
const QUERIES: usize = 3;

fn fig6a_landmark_count(c: &mut Criterion) {
    let env = CalEnv::new(SCALE, 16);
    let targets = env.categories.members(env.cal.lake).to_vec();
    let qs = env.query_sets(env.cal.lake, QUERIES);
    let mut group = c.benchmark_group("fig6a_landmarks_lake_q3_k20");
    group.sample_size(10);
    for lm_count in [4usize, 8, 16, 32] {
        let landmarks =
            LandmarkIndex::build(&env.graph, lm_count, SelectionStrategy::Farthest, 0xCA11);
        group.bench_with_input(BenchmarkId::from_parameter(lm_count), &lm_count, |b, _| {
            let mut engine = QueryEngine::new(&env.graph).with_landmarks(&landmarks);
            b.iter(|| {
                run_batch(
                    &mut engine,
                    Algorithm::IterBoundI,
                    qs.group(3),
                    &targets,
                    20,
                )
            });
        });
    }
    group.finish();
}

fn fig6b_alpha(c: &mut Criterion) {
    let env = CalEnv::new(SCALE, 16);
    let targets = env.categories.members(env.cal.lake).to_vec();
    let qs = env.query_sets(env.cal.lake, QUERIES);
    let mut group = c.benchmark_group("fig6b_alpha_lake_q3_k20");
    group.sample_size(10);
    for alpha in [1.05f64, 1.1, 1.2, 1.5, 1.8] {
        group.bench_with_input(BenchmarkId::from_parameter(alpha), &alpha, |b, &a| {
            let mut engine = QueryEngine::new(&env.graph)
                .with_landmarks(&env.landmarks)
                .with_alpha(a);
            b.iter(|| {
                run_batch(
                    &mut engine,
                    Algorithm::IterBoundI,
                    qs.group(3),
                    &targets,
                    20,
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fig6a_landmark_count, fig6b_alpha);
criterion_main!(benches);
