//! Property-based tests for the workload generators: structural invariants
//! that must hold for *any* parameters, not just the paper's.

use kpj_sp::DenseDijkstra;
use kpj_workload::gene::GeneConfig;
use kpj_workload::poi::{generate_cal_categories, generate_nested_pois};
use kpj_workload::queries::QuerySets;
use kpj_workload::road::RoadConfig;
use kpj_workload::social::SocialConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Road networks: exact node count, clamped arc count, connectivity,
    /// degree bound, weight band — for any size/density/seed.
    #[test]
    fn road_network_invariants(
        nodes in 2usize..800,
        arcs_factor in 0u32..70, // ×0.1 of nodes
        seed in 0u64..1000,
    ) {
        let arcs = nodes * arcs_factor as usize / 10;
        let g = RoadConfig::new(nodes, arcs, seed).generate();
        prop_assert_eq!(g.node_count(), nodes);
        // Arc count: between the spanning-tree floor and the requested
        // target (subject to the lattice capacity ceiling).
        prop_assert!(g.edge_count() >= 2 * (nodes - 1));
        prop_assert!(g.edge_count() <= arcs.max(2 * (nodes - 1)) + 1);
        // Connected.
        let d = DenseDijkstra::from_source(&g, 0);
        prop_assert!(g.nodes().all(|v| d.reached(v)), "disconnected");
        // Lattice + diagonals bound the degree at 8.
        prop_assert!(g.nodes().all(|v| g.out_degree(v) <= 8));
        // Weights in the jitter band (rectilinear 750..1350, diagonal ×√2).
        for u in g.nodes() {
            for e in g.out_edges(u) {
                prop_assert!((750..=1910).contains(&e.weight), "weight {}", e.weight);
            }
        }
    }

    /// Nested POIs: sizes, nesting, determinism.
    #[test]
    fn nested_pois_invariants(n in 1usize..100_000, seed in 0u64..500) {
        let mut idx = kpj_graph::CategoryIndex::new();
        let pois = generate_nested_pois(&mut idx, n, seed);
        let sizes: Vec<usize> = pois.t.iter().map(|&c| idx.members(c).len()).collect();
        prop_assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "sizes not monotone: {sizes:?}");
        prop_assert!(sizes[0] >= 1);
        prop_assert!(sizes[3] <= n);
        for w in pois.t.windows(2) {
            let small = idx.members(w[0]);
            let large = idx.members(w[1]);
            prop_assert!(small.iter().all(|v| large.binary_search(v).is_ok()));
        }
        // Members are valid node ids.
        prop_assert!(idx.members(pois.t[3]).iter().all(|&v| (v as usize) < n));
    }

    /// CAL categories always have the paper's cardinalities when n allows.
    #[test]
    fn cal_categories_cardinalities(n in 200usize..50_000, seed in 0u64..200) {
        let mut idx = kpj_graph::CategoryIndex::new();
        let cal = generate_cal_categories(&mut idx, n, seed);
        prop_assert_eq!(idx.members(cal.glacier).len(), 1);
        prop_assert_eq!(idx.members(cal.lake).len(), 8);
        prop_assert_eq!(idx.members(cal.crater).len(), 14);
        prop_assert_eq!(idx.members(cal.harbor).len(), 94);
        prop_assert_eq!(idx.category_count(), 62);
    }

    /// Query sets: quantile groups are distance-ordered and only contain
    /// reachable nodes, regardless of group/size parameters.
    #[test]
    fn query_sets_invariants(
        nodes in 20usize..400,
        groups in 1usize..8,
        per_group in 1usize..30,
        seed in 0u64..100,
    ) {
        let g = RoadConfig::new(nodes, nodes * 3, seed).generate();
        let targets = [0u32, (nodes as u32) / 2];
        let qs = QuerySets::generate(&g, &targets, groups, per_group, seed);
        prop_assert_eq!(qs.group_count(), groups);
        let d = DenseDijkstra::to_targets(&g, &targets);
        // Every sampled node is reachable, every group respects its cap,
        // and the groups' distance ranges are ordered: max(Q_i) ≤ min(Q_j)
        // for i < j (quantile partition).
        let mut prev_max: Option<u64> = None;
        for grp in &qs.groups {
            prop_assert!(grp.len() <= per_group);
            for &v in grp {
                prop_assert!(d.reached(v));
            }
            if grp.is_empty() {
                continue;
            }
            let lo = grp.iter().map(|&v| d.dist(v)).min().expect("non-empty");
            let hi = grp.iter().map(|&v| d.dist(v)).max().expect("non-empty");
            if let Some(pm) = prev_max {
                prop_assert!(lo >= pm, "quantile groups out of order: {lo} < {pm}");
            }
            prev_max = Some(hi);
        }
    }

    /// Social networks stay connected (ring backbone) at any rewiring.
    #[test]
    fn social_network_connected(n in 2usize..500, p_milli in 0u64..1000, seed in 0u64..100) {
        let cfg = SocialConfig {
            nodes: n,
            neighbors: 3,
            rewire_p: p_milli as f64 / 1000.0,
            max_weight: 10,
            seed,
        };
        let g = cfg.generate();
        prop_assert_eq!(g.node_count(), n);
        // Rewiring can in principle disconnect; with k=3 neighbours the
        // backbone keeps ≥ 95% of nodes reachable in practice — assert a
        // conservative floor to catch generator regressions.
        let d = DenseDijkstra::from_source(&g, 0);
        let reached = g.nodes().filter(|&v| d.reached(v)).count();
        prop_assert!(reached * 10 >= n * 9, "only {reached}/{n} reachable");
    }

    /// Gene networks are layered DAGs: no edge skips or goes backward.
    #[test]
    fn gene_network_layered(layers in 2usize..6, per_layer in 1usize..40, seed in 0u64..100) {
        let cfg = GeneConfig::new(layers, per_layer, seed);
        let g = cfg.generate();
        prop_assert_eq!(g.node_count(), layers * per_layer);
        for v in g.nodes() {
            let lv = v as usize / per_layer;
            for e in g.out_edges(v) {
                let lw = e.to as usize / per_layer;
                prop_assert!(lw == lv || lw == lv + 1);
                prop_assert!(e.to != v, "self-loop");
            }
        }
    }
}
