//! Query workload generation (§7 "Queries").
//!
//! For a destination category `T`: sort all nodes by their shortest
//! distance `δ(v, T)`, partition the reachable ones into `group_count`
//! equal quantile groups, and draw `per_group` random sources from each.
//! Nodes in `Q_i` are closer to the destinations than nodes in `Q_j` for
//! `i < j`; the paper defaults to 5 groups × 100 sources with `Q3` as the
//! default set, and `k ∈ {10, 20, 30, 50}` with default 20.

use kpj_graph::{Graph, Length, NodeId};
use kpj_sp::DenseDijkstra;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The paper's `k` sweep.
pub const K_VALUES: [usize; 4] = [10, 20, 30, 50];

/// The paper's default `k`.
pub const DEFAULT_K: usize = 20;

/// Distance-stratified query source groups `Q1..Q_g`.
#[derive(Debug, Clone)]
pub struct QuerySets {
    /// `groups[i]` = the sources of `Q_{i+1}`.
    pub groups: Vec<Vec<NodeId>>,
}

impl QuerySets {
    /// Generate the workload for category `targets` on `g`.
    ///
    /// Only nodes that can reach `T` are eligible (the paper's real road
    /// networks are strongly connected; synthetic ones are too, but
    /// arbitrary graphs may not be). `per_group` is capped by group size.
    pub fn generate(
        g: &Graph,
        targets: &[NodeId],
        group_count: usize,
        per_group: usize,
        seed: u64,
    ) -> QuerySets {
        assert!(group_count > 0, "need at least one group");
        let d = DenseDijkstra::to_targets(g, targets);
        let mut nodes: Vec<(Length, NodeId)> = g
            .nodes()
            .filter(|&v| d.reached(v))
            .map(|v| (d.dist(v), v))
            .collect();
        nodes.sort_unstable();
        let mut rng = SmallRng::seed_from_u64(seed);
        let total = nodes.len();
        let mut groups = Vec::with_capacity(group_count);
        for i in 0..group_count {
            let lo = total * i / group_count;
            let hi = total * (i + 1) / group_count;
            let mut slice: Vec<NodeId> = nodes[lo..hi].iter().map(|&(_, v)| v).collect();
            slice.shuffle(&mut rng);
            slice.truncate(per_group);
            groups.push(slice);
        }
        QuerySets { groups }
    }

    /// The default group (`Q3` for the paper's 5 groups: index `g/2`).
    pub fn default_group(&self) -> &[NodeId] {
        &self.groups[self.groups.len() / 2]
    }

    /// `Q_i` (1-based, as in the paper).
    pub fn group(&self, i: usize) -> &[NodeId] {
        &self.groups[i - 1]
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadConfig;

    #[test]
    fn groups_are_ordered_by_distance() {
        let g = RoadConfig::new(2_000, 4_800, 11).generate();
        let targets = [3u32, 700, 1500];
        let qs = QuerySets::generate(&g, &targets, 5, 50, 1);
        assert_eq!(qs.group_count(), 5);
        let d = DenseDijkstra::to_targets(&g, &targets);
        // Mean distance must increase across groups.
        let means: Vec<f64> = qs
            .groups
            .iter()
            .map(|grp| grp.iter().map(|&v| d.dist(v) as f64).sum::<f64>() / grp.len() as f64)
            .collect();
        for w in means.windows(2) {
            assert!(w[0] <= w[1], "group means not monotone: {means:?}");
        }
        // Max of Qi ≤ min of Q(i+1) — quantiles are disjoint ranges.
        for i in 0..4 {
            let max_i = qs.groups[i].iter().map(|&v| d.dist(v)).max().unwrap();
            let min_j = qs.groups[i + 1].iter().map(|&v| d.dist(v)).min().unwrap();
            assert!(max_i <= min_j);
        }
    }

    #[test]
    fn per_group_is_respected_and_seeded() {
        let g = RoadConfig::new(500, 1_200, 2).generate();
        let a = QuerySets::generate(&g, &[7], 5, 20, 9);
        let b = QuerySets::generate(&g, &[7], 5, 20, 9);
        for grp in &a.groups {
            assert_eq!(grp.len(), 20);
        }
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.default_group(), a.group(3));
    }

    #[test]
    fn small_graphs_cap_group_sizes() {
        let g = RoadConfig::new(12, 26, 3).generate();
        let qs = QuerySets::generate(&g, &[0], 5, 100, 1);
        let total: usize = qs.groups.iter().map(Vec::len).sum();
        assert!(total <= 12);
        assert!(qs.groups.iter().all(|g| !g.is_empty()));
    }

    #[test]
    fn unreachable_nodes_excluded() {
        use kpj_graph::GraphBuilder;
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(2, 3, 1).unwrap();
        let g = b.build();
        let qs = QuerySets::generate(&g, &[0], 2, 10, 1);
        for grp in &qs.groups {
            for &v in grp {
                assert!(v < 2, "unreachable node {v} sampled");
            }
        }
    }
}
