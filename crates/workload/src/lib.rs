//! Workload generation for the `kpj` benchmarks and examples.
//!
//! The paper evaluates on six real road networks with real/synthetic POIs
//! (§7, Table 1). Those exact files are not redistributable, so this crate
//! builds *synthetic stand-ins with the same macroscopic statistics* — see
//! `DESIGN.md` §4 for the substitution argument:
//!
//! * [`road`] — near-planar road networks: a random spanning tree over a
//!   lattice (connectivity) plus random extra lattice edges up to the
//!   paper's exact arc/node ratio, with jittered Euclidean-style weights.
//! * [`huge`] — continental-scale stencil networks whose adjacency is a
//!   pure function of the node id, streamed straight to the v2 binary
//!   format in `O(1)` memory (the `gen-huge` binary).
//! * [`datasets`] — the Table 1 registry (CAL, SJ, SF, COL, FLA, USA) with
//!   a `scale` knob.
//! * [`poi`] — category (POI) assignment: the CAL categories used in the
//!   paper ("Glacier"=1, "Lake"=8, "Crater"=14, "Harbor"=94 nodes) and the
//!   nested synthetic sets `T1 ⊂ T2 ⊂ T3 ⊂ T4` of sizes
//!   `n·10⁻⁴·{1,5,10,15}`.
//! * [`queries`] — the query workload: nodes sorted by `δ(v, T)`, split
//!   into five quantile groups `Q1..Q5`, 100 random sources each.
//! * [`social`], [`gene`] — small-world and layered regulatory networks
//!   for the paper's motivating applications (examples).
//! * [`analysis`] — the Fig. 11 percentile analysis helpers.
//!
//! Everything is deterministic given a seed.

#![warn(missing_docs)]

pub mod analysis;
pub mod datasets;
pub mod gene;
pub mod huge;
pub mod poi;
pub mod queries;
pub mod road;
pub mod social;
