//! Small-world social-network generator (Watts–Strogatz).
//!
//! §1 of the paper motivates KPJ with social-network analysis: "detect
//! user accounts involved in the top-k shortest paths between two criminal
//! gangs". This generator produces the substrate for that example: a ring
//! lattice where each node connects to its `k` nearest neighbours, with
//! each edge rewired to a random endpoint with probability `p` — the
//! classic high-clustering / low-diameter small world.

use kpj_graph::{Graph, GraphBuilder, NodeId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a Watts–Strogatz small world.
#[derive(Debug, Clone)]
pub struct SocialConfig {
    /// Number of accounts.
    pub nodes: usize,
    /// Each node links to `neighbors` nearest ring neighbours on each
    /// side (so degree ≈ `2·neighbors` before rewiring).
    pub neighbors: usize,
    /// Rewiring probability.
    pub rewire_p: f64,
    /// Edge weights are drawn uniformly from `1..=max_weight`
    /// (interaction "distance": lower = stronger tie).
    pub max_weight: Weight,
    /// RNG seed.
    pub seed: u64,
}

impl SocialConfig {
    /// Sensible defaults: 4 neighbours, 10% rewiring, weights 1..=10.
    pub fn new(nodes: usize, seed: u64) -> Self {
        SocialConfig {
            nodes,
            neighbors: 4,
            rewire_p: 0.1,
            max_weight: 10,
            seed,
        }
    }

    /// Generate the network (bidirectional edges).
    pub fn generate(&self) -> Graph {
        let n = self.nodes;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut b = GraphBuilder::with_capacity(n, 2 * n * self.neighbors);
        if n < 2 {
            return b.build();
        }
        for v in 0..n {
            for j in 1..=self.neighbors.min(n - 1) {
                let mut w = (v + j) % n;
                if rng.gen_bool(self.rewire_p) {
                    // Rewire to a random endpoint (avoiding self-loops).
                    loop {
                        w = rng.gen_range(0..n);
                        if w != v {
                            break;
                        }
                    }
                }
                let weight = rng.gen_range(1..=self.max_weight);
                b.add_bidirectional(v as NodeId, w as NodeId, weight)
                    .expect("in range");
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_sp::DenseDijkstra;

    #[test]
    fn expected_size_and_connectivity() {
        let g = SocialConfig::new(500, 3).generate();
        assert_eq!(g.node_count(), 500);
        assert_eq!(g.edge_count(), 2 * 500 * 4);
        let d = DenseDijkstra::from_source(&g, 0);
        let reached = g.nodes().filter(|&v| d.reached(v)).count();
        assert_eq!(reached, 500, "ring backbone keeps it connected");
    }

    #[test]
    fn small_world_has_short_paths() {
        let g = SocialConfig::new(1_000, 9).generate();
        let d = DenseDijkstra::from_source(&g, 0);
        let max_hops = g
            .nodes()
            .map(|v| d.path_chain(v).map(|c| c.len()).unwrap_or(0))
            .max()
            .unwrap();
        // Without rewiring the ring needs ~125 hops; the small world
        // collapses that by an order of magnitude.
        assert!(
            max_hops < 60,
            "diameter-ish {max_hops} too large for a small world"
        );
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(SocialConfig::new(0, 1).generate().node_count(), 0);
        assert_eq!(SocialConfig::new(1, 1).generate().edge_count(), 0);
        let g = SocialConfig::new(3, 1).generate();
        assert!(g.edge_count() > 0);
    }
}
