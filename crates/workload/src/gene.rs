//! Layered gene-regulatory network generator.
//!
//! §1 of the paper cites Shih & Parthasarathy: "the lengths of top-k
//! shortest paths may be used to define the importance of a target gene
//! to a source gene" in gene networks. This generator produces a layered
//! regulatory DAG (transcription factors → intermediate regulators →
//! target genes) with a sprinkling of within-layer edges, the substrate
//! for the `gene_network` example.

use kpj_graph::{Graph, GraphBuilder, NodeId, Weight};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Parameters of a layered regulatory network.
#[derive(Debug, Clone)]
pub struct GeneConfig {
    /// Number of layers (≥ 2): layer 0 holds the source regulators, the
    /// last layer the terminal target genes.
    pub layers: usize,
    /// Genes per layer.
    pub per_layer: usize,
    /// Outgoing regulatory edges per gene towards the next layer.
    pub fan_out: usize,
    /// Probability of an extra within-layer edge per gene.
    pub lateral_p: f64,
    /// Edge weights (regulatory "cost") in `1..=max_weight`.
    pub max_weight: Weight,
    /// RNG seed.
    pub seed: u64,
}

impl GeneConfig {
    /// Defaults: fan-out 3, 20% lateral edges, weights 1..=100.
    pub fn new(layers: usize, per_layer: usize, seed: u64) -> Self {
        GeneConfig {
            layers,
            per_layer,
            fan_out: 3,
            lateral_p: 0.2,
            max_weight: 100,
            seed,
        }
    }

    /// Total number of genes.
    pub fn node_count(&self) -> usize {
        self.layers * self.per_layer
    }

    /// Nodes of layer `l` (0-based).
    pub fn layer(&self, l: usize) -> std::ops::Range<NodeId> {
        let lo = (l * self.per_layer) as NodeId;
        lo..lo + self.per_layer as NodeId
    }

    /// Generate the (directed) network.
    pub fn generate(&self) -> Graph {
        assert!(self.layers >= 2, "need at least source and target layers");
        assert!(self.per_layer >= 1);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let n = self.node_count();
        let mut b = GraphBuilder::with_capacity(n, n * (self.fan_out + 1));
        for l in 0..self.layers - 1 {
            for v in self.layer(l) {
                for _ in 0..self.fan_out {
                    let w = self.layer(l + 1).start + rng.gen_range(0..self.per_layer) as NodeId;
                    let wt = rng.gen_range(1..=self.max_weight);
                    b.add_edge(v, w, wt).expect("in range");
                }
                if self.per_layer > 1 && rng.gen_bool(self.lateral_p) {
                    let mut w = v;
                    while w == v {
                        w = self.layer(l).start + rng.gen_range(0..self.per_layer) as NodeId;
                    }
                    b.add_edge(v, w, rng.gen_range(1..=self.max_weight))
                        .expect("in range");
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_sp::DenseDijkstra;

    #[test]
    fn layered_structure() {
        let cfg = GeneConfig::new(4, 25, 5);
        let g = cfg.generate();
        assert_eq!(g.node_count(), 100);
        // Terminal layer has no outgoing edges.
        for v in cfg.layer(3) {
            assert_eq!(g.out_degree(v), 0);
        }
        // No backward edges: every edge goes to the same or next layer.
        for v in g.nodes() {
            let lv = v as usize / cfg.per_layer;
            for e in g.out_edges(v) {
                let lw = e.to as usize / cfg.per_layer;
                assert!(lw == lv || lw == lv + 1, "edge {v}->{} skips layers", e.to);
            }
        }
    }

    #[test]
    fn most_targets_reachable_from_layer0() {
        let cfg = GeneConfig::new(3, 30, 1);
        let g = cfg.generate();
        let sources: Vec<_> = cfg.layer(0).collect();
        let d = kpj_sp::DenseDijkstra::run(
            &g,
            kpj_sp::Direction::Forward,
            sources.into_iter().map(|s| (s, 0)),
        );
        let targets_reached = cfg.layer(2).filter(|&t| d.reached(t)).count();
        assert!(
            targets_reached * 10 >= cfg.per_layer * 9,
            "{targets_reached}/30 reached"
        );
    }

    #[test]
    fn deterministic() {
        let a = GeneConfig::new(3, 10, 2).generate();
        let b = GeneConfig::new(3, 10, 2).generate();
        assert_eq!(a.edge_count(), b.edge_count());
        let da = DenseDijkstra::from_source(&a, 0);
        let db = DenseDijkstra::from_source(&b, 0);
        assert_eq!(da.dist_slice(), db.dist_slice());
    }
}
