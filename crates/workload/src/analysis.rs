//! Helpers for the Fig. 11 analysis.
//!
//! Fig. 11 reports, per POI set `T_i`, "the longest length of shortest
//! paths from nodes to `T_i`", positioned as a percentile among "all
//! `n·n` shortest path lengths in the graph". Computing all pairs is
//! infeasible even for SJ, so — like any practical reproduction — we
//! estimate the percentile from the exact distance multiset of a random
//! sample of source nodes (each contributing its full single-source
//! distance vector). The max-distance-to-`T` side is exact.

use kpj_graph::{Graph, Length, NodeId};
use kpj_sp::DenseDijkstra;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The longest `δ(v, T)` over all nodes `v` that can reach `T` (exact).
pub fn max_distance_to_targets(g: &Graph, targets: &[NodeId]) -> Length {
    let d = DenseDijkstra::to_targets(g, targets);
    g.nodes()
        .filter(|&v| d.reached(v))
        .map(|v| d.dist(v))
        .max()
        .unwrap_or(0)
}

/// Percentile (in `[0, 100]`) of `value` within the distribution of all
/// finite pairwise shortest-path lengths, estimated from `sample_sources`
/// random single-source distance vectors.
pub fn distance_percentile(g: &Graph, value: Length, sample_sources: usize, seed: u64) -> f64 {
    let n = g.node_count();
    if n == 0 || sample_sources == 0 {
        return 0.0;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut below = 0u64;
    let mut total = 0u64;
    for _ in 0..sample_sources {
        let s = rng.gen_range(0..n) as NodeId;
        let d = DenseDijkstra::from_source(g, s);
        for v in g.nodes() {
            if d.reached(v) {
                total += 1;
                if d.dist(v) <= value {
                    below += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        100.0 * below as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadConfig;

    #[test]
    fn max_distance_shrinks_with_more_targets() {
        let g = RoadConfig::new(1_500, 3_600, 4).generate();
        let small = [10u32];
        let large = [10u32, 400, 800, 1200, 77, 300, 999, 1450];
        let m_small = max_distance_to_targets(&g, &small);
        let m_large = max_distance_to_targets(&g, &large);
        assert!(m_large <= m_small, "{m_large} > {m_small}");
        assert!(m_small > 0);
    }

    #[test]
    fn percentile_is_monotone_in_value() {
        let g = RoadConfig::new(800, 1_900, 6).generate();
        let p_small = distance_percentile(&g, 1_000, 8, 1);
        let p_large = distance_percentile(&g, 50_000, 8, 1);
        assert!(p_small <= p_large);
        assert!((0.0..=100.0).contains(&p_small));
        // The max distance over everything has percentile 100 when the
        // same sample is used… approximately; use a generous floor.
        let max_all = max_distance_to_targets(&g, &[0]);
        let p_max = distance_percentile(&g, max_all * 2, 8, 1);
        assert!(p_max > 99.0, "{p_max}");
    }

    #[test]
    fn empty_inputs() {
        let g = RoadConfig::new(10, 22, 1).generate();
        assert_eq!(distance_percentile(&g, 5, 0, 1), 0.0);
        assert!(max_distance_to_targets(&g, &[3]) > 0);
    }
}
