//! Continental-scale road-like stencil generator with O(1) memory.
//!
//! [`road`](crate::road) materialises every lattice edge, shuffles them and
//! runs Kruskal — three `O(m)` allocations that rule it out at the 24M-node
//! scale of the paper's USA graph. This module instead defines the network
//! as a *pure function of the node id*: the adjacency of any node is
//! computable in `O(1)` from `(nodes, seed)` alone, so a graph of any size
//! can be streamed straight into the v2 binary format without ever holding
//! an edge list in memory.
//!
//! The stencil keeps the macroscopic road-network statistics the paper's
//! datasets share (near-planar, average degree ≈ 2.5 arcs/node, high
//! diameter, jittered physical-length weights):
//!
//! * nodes form a `⌈√n⌉`-wide row-major grid; every node links to its
//!   left/right/up/down neighbours (the last row may be partial),
//! * every [`SHORTCUT_PERIOD`]-th node gets one long "highway" edge
//!   `v ↔ v + stride` with `stride = 5·width + 3`, mimicking the sparse
//!   long-range arterials of real road networks,
//! * each undirected edge `{u, v}` carries one weight
//!   `jitter(min(u,v), max(u,v), seed) ∈ [750, 1350]` (×5 for highways,
//!   which span about five grid rows), derived from a splitmix64 hash —
//!   deterministic, symmetric, and byte-for-byte reproducible across
//!   machines.
//!
//! Because each node's neighbours are emitted in ascending id order and
//! weights are symmetric, the out-CSR *is* the in-CSR: the streamed v2
//! file sets `FLAG_SYMMETRIC` and stores the adjacency once.

use kpj_graph::{Graph, GraphBuilder, NodeId, Weight};
use kpj_store::{StoreError, StreamWriter};
use std::io::{Seek, Write};

/// Every `SHORTCUT_PERIOD`-th node anchors one long-range "highway" edge.
pub const SHORTCUT_PERIOD: u64 = 97;

/// Parameters of a stencil network. See the module docs for the topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HugeConfig {
    /// Number of nodes `n` (must stay below `u32::MAX`).
    pub nodes: usize,
    /// Seed feeding the per-edge weight hash.
    pub seed: u64,
}

impl HugeConfig {
    /// A stencil network with `nodes` nodes and weight seed `seed`.
    pub fn new(nodes: usize, seed: u64) -> Self {
        assert!(
            (nodes as u64) < u32::MAX as u64,
            "node ids are u32; {nodes} nodes do not fit"
        );
        HugeConfig { nodes, seed }
    }

    /// Grid width `⌈√n⌉`.
    pub fn width(&self) -> usize {
        (self.nodes as f64).sqrt().ceil() as usize
    }

    /// Id distance spanned by a highway edge.
    pub fn stride(&self) -> usize {
        5 * self.width() + 3
    }

    /// Out-degree of `v` — also its in-degree (the stencil is symmetric).
    pub fn degree(&self, v: NodeId) -> u32 {
        let mut scratch = Vec::new();
        self.neighbors(v, &mut scratch);
        scratch.len() as u32
    }

    /// Fill `out` with `v`'s neighbours `(to, weight)` in ascending id
    /// order. `out` is cleared first; reuse one buffer across calls to
    /// stay allocation-free after the first node.
    pub fn neighbors(&self, v: NodeId, out: &mut Vec<(NodeId, Weight)>) {
        out.clear();
        let n = self.nodes;
        let (v_us, w, s) = (v as usize, self.width(), self.stride());
        debug_assert!(v_us < n, "node {v} out of range");
        let col = if w == 0 { 0 } else { v_us % w };
        if v_us >= s && ((v_us - s) as u64).is_multiple_of(SHORTCUT_PERIOD) {
            out.push((
                (v_us - s) as NodeId,
                self.edge_weight(v, (v_us - s) as NodeId),
            ));
        }
        if v_us >= w {
            out.push((
                (v_us - w) as NodeId,
                self.edge_weight(v, (v_us - w) as NodeId),
            ));
        }
        if col > 0 {
            out.push((v - 1, self.edge_weight(v, v - 1)));
        }
        if col + 1 < w && v_us + 1 < n {
            out.push((v + 1, self.edge_weight(v, v + 1)));
        }
        if v_us + w < n && w > 0 {
            out.push((
                (v_us + w) as NodeId,
                self.edge_weight(v, (v_us + w) as NodeId),
            ));
        }
        if (v_us as u64).is_multiple_of(SHORTCUT_PERIOD) && v_us + s < n {
            out.push((
                (v_us + s) as NodeId,
                self.edge_weight(v, (v_us + s) as NodeId),
            ));
        }
    }

    /// Total arc count (two per undirected edge). `O(n)` time, `O(1)`
    /// memory.
    pub fn arc_count(&self) -> u64 {
        let mut scratch = Vec::new();
        let mut m = 0u64;
        for v in 0..self.nodes as NodeId {
            self.neighbors(v, &mut scratch);
            m += scratch.len() as u64;
        }
        m
    }

    /// The symmetric per-edge weight: a splitmix64 hash of the unordered
    /// pair and the seed, jittered into `[750, 1350]` — highways (id
    /// distance = stride) get 5× since they span about five grid rows.
    pub fn edge_weight(&self, a: NodeId, b: NodeId) -> Weight {
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let h = splitmix64(((lo as u64) << 32 | hi as u64).wrapping_add(splitmix64(self.seed)));
        let jitter = 750 + (h % 601) as Weight;
        if (hi - lo) as usize == self.stride() {
            jitter * 5
        } else {
            jitter
        }
    }

    /// Materialise the stencil as an in-memory [`Graph`]. Intended for
    /// tests and small runs — allocates `O(n + m)`; use [`write_v2`] for
    /// the real thing.
    pub fn generate(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.nodes, 3 * self.nodes);
        let mut scratch = Vec::new();
        for v in 0..self.nodes as NodeId {
            self.neighbors(v, &mut scratch);
            for &(to, weight) in &scratch {
                b.add_edge(v, to, weight).expect("stencil ids in range");
            }
        }
        b.build()
    }

    /// Stream the stencil to the v2 binary format in three passes (count,
    /// degrees, edges) using `O(1)` memory regardless of `n`. The output
    /// is byte-for-byte a function of `(nodes, seed)`.
    pub fn write_v2<W: Write + Seek>(&self, w: W) -> Result<(), StoreError> {
        let n = self.nodes as u64;
        let mut sw = StreamWriter::new(w, n, self.arc_count())?;
        let mut scratch = Vec::new();
        for v in 0..self.nodes as NodeId {
            self.neighbors(v, &mut scratch);
            sw.push_degree(scratch.len() as u32)?;
        }
        sw.finish_degrees()?;
        for v in 0..self.nodes as NodeId {
            self.neighbors(v, &mut scratch);
            for &(to, weight) in &scratch {
                sw.push_edge(to, weight)?;
            }
        }
        sw.finish()
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_sp::DenseDijkstra;
    use std::io::Cursor;

    #[test]
    fn stencil_is_symmetric_and_sorted() {
        let cfg = HugeConfig::new(5_000, 11);
        let mut fwd = Vec::new();
        let mut chk = Vec::new();
        for v in 0..5_000u32 {
            cfg.neighbors(v, &mut fwd);
            assert!(fwd.windows(2).all(|w| w[0].0 < w[1].0), "unsorted at {v}");
            for &(to, weight) in &fwd {
                cfg.neighbors(to, &mut chk);
                assert!(
                    chk.contains(&(v, weight)),
                    "edge {v}->{to} has no mirror with equal weight"
                );
            }
        }
    }

    #[test]
    fn road_like_statistics_and_connectivity() {
        let cfg = HugeConfig::new(4_000, 3);
        let g = cfg.generate();
        assert_eq!(g.node_count(), 4_000);
        assert_eq!(g.edge_count() as u64, cfg.arc_count());
        let avg = g.edge_count() as f64 / g.node_count() as f64;
        assert!((3.5..4.2).contains(&avg), "arc ratio {avg}");
        let d = DenseDijkstra::from_source(&g, 0);
        assert!(g.nodes().all(|v| d.reached(v)), "stencil disconnected");
        let max_deg = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg <= 6, "degree bound violated: {max_deg}");
    }

    #[test]
    fn streamed_v2_is_byte_reproducible() {
        let render = |seed| {
            let mut buf = Cursor::new(Vec::new());
            HugeConfig::new(2_345, seed).write_v2(&mut buf).unwrap();
            buf.into_inner()
        };
        assert_eq!(render(7), render(7));
        assert_ne!(render(7), render(8));
    }

    #[test]
    fn streamed_v2_matches_in_memory_generate() {
        let cfg = HugeConfig::new(1_777, 42);
        let mut buf = Cursor::new(Vec::new());
        cfg.write_v2(&mut buf).unwrap();
        let dir = std::env::temp_dir().join(format!("kpj-huge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stencil.kpj");
        std::fs::write(&path, buf.into_inner()).unwrap();

        let bundle = kpj_store::open_v2(&path).unwrap();
        bundle.verify_data().unwrap();
        let (g, h) = (&bundle.graph, cfg.generate());
        assert_eq!(g.node_count(), h.node_count());
        assert_eq!(g.edge_count(), h.edge_count());
        for v in h.nodes() {
            assert_eq!(g.out_edges(v), h.out_edges(v), "out adjacency of {v}");
            // The stencil is symmetric, so the aliased in-CSR must carry
            // the same multiset of in-edges the builder derived.
            let mut a: Vec<_> = g.in_edges(v).iter().map(|e| (e.to, e.weight)).collect();
            let mut b: Vec<_> = h.in_edges(v).iter().map(|e| (e.to, e.weight)).collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "in adjacency of {v}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tiny_sizes() {
        for n in [0usize, 1, 2, 3, 7] {
            let cfg = HugeConfig::new(n, 1);
            let g = cfg.generate();
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count() as u64, cfg.arc_count());
            if n > 1 {
                let d = DenseDijkstra::from_source(&g, 0);
                assert!(g.nodes().all(|v| d.reached(v)), "n={n} disconnected");
            }
        }
    }
}
