//! POI / category assignment (§7 "POIs").

use kpj_graph::{CategoryId, CategoryIndex, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Handles to the nested synthetic categories `T1 ⊂ T2 ⊂ T3 ⊂ T4`.
#[derive(Debug, Clone, Copy)]
pub struct NestedPois {
    /// Category ids of `T1..T4`, in order.
    pub t: [CategoryId; 4],
}

/// Generate the paper's synthetic POI sets: sizes `n·10⁻⁴·{1, 5, 10, 15}`
/// (each at least 1), nested `T1 ⊂ T2 ⊂ T3 ⊂ T4`, placed uniformly at
/// random. Categories are appended to `idx` and named `"T1".."T4"`.
pub fn generate_nested_pois(idx: &mut CategoryIndex, n: usize, seed: u64) -> NestedPois {
    let mut rng = SmallRng::seed_from_u64(seed);
    let unit = n as f64 * 1e-4;
    let sizes: Vec<usize> = [1.0, 5.0, 10.0, 15.0]
        .iter()
        .map(|m| (((unit * m) as usize).max(1)).min(n))
        .collect();
    // Sample T4 (largest) without replacement; prefixes give the nesting.
    let t4: Vec<NodeId> = sample_distinct(&mut rng, n, sizes[3]);
    let mut ids = [0; 4];
    for (i, &sz) in sizes.iter().enumerate() {
        ids[i] = idx.add_category(format!("T{}", i + 1), t4[..sz].to_vec());
    }
    NestedPois { t: ids }
}

/// Handles to the four CAL categories the paper queries.
#[derive(Debug, Clone, Copy)]
pub struct CalCategories {
    /// "Glacier" — 1 physical node (the KSP workload of Fig. 8).
    pub glacier: CategoryId,
    /// "Lake" — 8 physical nodes.
    pub lake: CategoryId,
    /// "Crater" — 14 physical nodes.
    pub crater: CategoryId,
    /// "Harbor" — 94 physical nodes.
    pub harbor: CategoryId,
}

/// Generate a CAL-like POI assignment: 62 categories, of which the four
/// the paper queries have exactly its cardinalities (1, 8, 14, 94); the
/// remaining 58 get log-uniform random sizes in `[1, n/100]` as filler.
pub fn generate_cal_categories(idx: &mut CategoryIndex, n: usize, seed: u64) -> CalCategories {
    let mut rng = SmallRng::seed_from_u64(seed);
    let pick = |rng: &mut SmallRng, count: usize| sample_distinct(rng, n, count.min(n));

    let glacier = idx.add_category("Glacier", pick(&mut rng, 1));
    let lake = idx.add_category("Lake", pick(&mut rng, 8));
    let crater = idx.add_category("Crater", pick(&mut rng, 14));
    let harbor = idx.add_category("Harbor", pick(&mut rng, 94));
    let max_size = (n / 100).max(2) as f64;
    for i in 0..58 {
        let size = max_size.powf(rng.gen_range(0.0..1.0)) as usize;
        idx.add_category(format!("Cat{i:02}"), pick(&mut rng, size.max(1)));
    }
    CalCategories {
        glacier,
        lake,
        crater,
        harbor,
    }
}

/// `count` distinct node ids, uniform over `0..n`.
fn sample_distinct(rng: &mut SmallRng, n: usize, count: usize) -> Vec<NodeId> {
    debug_assert!(count <= n);
    if count * 20 >= n {
        // Dense case: shuffle a full permutation prefix.
        let mut all: Vec<NodeId> = (0..n as NodeId).collect();
        all.shuffle(rng);
        all.truncate(count);
        all
    } else {
        // Sparse case: rejection sampling.
        let mut seen = std::collections::HashSet::with_capacity(count * 2);
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let v = rng.gen_range(0..n) as NodeId;
            if seen.insert(v) {
                out.push(v);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_sets_have_paper_sizes_and_nesting() {
        let n = 435_666; // COL
        let mut idx = CategoryIndex::new();
        let pois = generate_nested_pois(&mut idx, n, 9);
        let sizes: Vec<usize> = pois.t.iter().map(|&c| idx.members(c).len()).collect();
        assert_eq!(sizes, vec![43, 217, 435, 653]);
        for w in pois.t.windows(2) {
            let small = idx.members(w[0]);
            let large = idx.members(w[1]);
            assert!(
                small.iter().all(|v| large.binary_search(v).is_ok()),
                "not nested"
            );
        }
    }

    #[test]
    fn nested_sets_never_empty_on_small_graphs() {
        let mut idx = CategoryIndex::new();
        let pois = generate_nested_pois(&mut idx, 50, 1);
        for &c in &pois.t {
            assert!(!idx.members(c).is_empty());
        }
    }

    #[test]
    fn cal_categories_have_exact_cardinalities() {
        let mut idx = CategoryIndex::new();
        let cal = generate_cal_categories(&mut idx, 106_337, 3);
        assert_eq!(idx.members(cal.glacier).len(), 1);
        assert_eq!(idx.members(cal.lake).len(), 8);
        assert_eq!(idx.members(cal.crater).len(), 14);
        assert_eq!(idx.members(cal.harbor).len(), 94);
        assert_eq!(idx.category_count(), 62);
    }

    #[test]
    fn sampling_is_distinct_and_seeded() {
        let mut rng = SmallRng::seed_from_u64(5);
        let s = sample_distinct(&mut rng, 1_000, 100);
        let mut d = s;
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 100);

        let mut idx1 = CategoryIndex::new();
        let mut idx2 = CategoryIndex::new();
        generate_nested_pois(&mut idx1, 10_000, 77);
        generate_nested_pois(&mut idx2, 10_000, 77);
        assert_eq!(idx1.members(0), idx2.members(0));
    }
}
