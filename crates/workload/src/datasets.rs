//! The Table 1 dataset registry.
//!
//! | name | #nodes | #edges (arcs) |
//! |------|--------|---------------|
//! | CAL  | 106,337 | 213,964 |
//! | SJ   | 18,263 | 47,594 |
//! | SF   | 174,956 | 443,604 |
//! | COL  | 435,666 | 1,042,400 |
//! | FLA  | 1,070,376 | 2,687,902 |
//! | USA  | 6,262,104 | 15,119,284 |
//!
//! [`DatasetSpec::generate`] instantiates the synthetic stand-in (see
//! `DESIGN.md` §4) at a given `scale ∈ (0, 1]` — `scale = 1` matches the
//! paper's node/arc counts exactly; the benches default to smaller scales
//! so `cargo bench` stays tractable.

use kpj_graph::Graph;

use crate::road::RoadConfig;

/// One road network of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// The paper's dataset name.
    pub name: &'static str,
    /// `n` at full scale.
    pub nodes: usize,
    /// The paper's `#Edges` figure at full scale (see `counts_are_arcs`).
    pub arcs: usize,
    /// How to read `arcs`: the DIMACS files (COL, FLA, USA) count each
    /// road segment as two directed arcs; the U. Utah files (CAL, SJ, SF)
    /// list each undirected edge once. Getting this right matters — the
    /// Utah networks would otherwise degenerate to near-trees with almost
    /// no alternative paths (see DESIGN.md §4).
    pub counts_are_arcs: bool,
}

/// California road network (with real POIs in the paper).
pub const CAL: DatasetSpec = DatasetSpec {
    name: "CAL",
    nodes: 106_337,
    arcs: 213_964,
    counts_are_arcs: false,
};
/// San Joaquin road network.
pub const SJ: DatasetSpec = DatasetSpec {
    name: "SJ",
    nodes: 18_263,
    arcs: 47_594,
    counts_are_arcs: false,
};
/// San Francisco road network.
pub const SF: DatasetSpec = DatasetSpec {
    name: "SF",
    nodes: 174_956,
    arcs: 443_604,
    counts_are_arcs: false,
};
/// Colorado road network (DIMACS).
pub const COL: DatasetSpec = DatasetSpec {
    name: "COL",
    nodes: 435_666,
    arcs: 1_042_400,
    counts_are_arcs: true,
};
/// Florida road network (DIMACS).
pub const FLA: DatasetSpec = DatasetSpec {
    name: "FLA",
    nodes: 1_070_376,
    arcs: 2_687_902,
    counts_are_arcs: true,
};
/// Western USA road network (DIMACS).
pub const USA: DatasetSpec = DatasetSpec {
    name: "USA",
    nodes: 6_262_104,
    arcs: 15_119_284,
    counts_are_arcs: true,
};

/// All Table 1 datasets in the paper's order.
pub const ALL: [DatasetSpec; 6] = [CAL, SJ, SF, COL, FLA, USA];

/// The five datasets of the Fig. 11/12 size sweeps (SJ → USA).
pub const SIZE_SWEEP: [DatasetSpec; 5] = [SJ, SF, COL, FLA, USA];

impl DatasetSpec {
    /// Look a dataset up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        ALL.iter()
            .copied()
            .find(|d| d.name.eq_ignore_ascii_case(name))
    }

    /// Node count at `scale`.
    pub fn nodes_at(&self, scale: f64) -> usize {
        ((self.nodes as f64 * scale) as usize).max(2)
    }

    /// Table-1 edge figure at `scale`.
    pub fn arcs_at(&self, scale: f64) -> usize {
        ((self.arcs as f64 * scale) as usize).max(2)
    }

    /// *Directed arc* target at `scale` (doubles the Utah edge counts).
    pub fn directed_arcs_at(&self, scale: f64) -> usize {
        let mult = if self.counts_are_arcs { 1 } else { 2 };
        self.arcs_at(scale) * mult
    }

    /// Instantiate the synthetic stand-in at `scale` (1.0 = paper size).
    ///
    /// The generator seed is derived from the dataset name so each dataset
    /// gets a distinct but reproducible topology.
    pub fn generate(&self, scale: f64) -> Graph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let seed = self.name.bytes().fold(0xcbf29ce484222325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100000001b3)
        });
        RoadConfig::new(self.nodes_at(scale), self.directed_arcs_at(scale), seed).generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_1() {
        assert_eq!(ALL.len(), 6);
        assert_eq!(CAL.nodes, 106_337);
        assert_eq!(USA.arcs, 15_119_284);
        assert_eq!(DatasetSpec::by_name("col"), Some(COL));
        assert_eq!(DatasetSpec::by_name("nope"), None);
    }

    #[test]
    fn generation_at_small_scale_matches_ratio() {
        let g = COL.generate(0.1);
        assert_eq!(g.node_count(), COL.nodes_at(0.1));
        // Arc count within the clamp band around the scaled target.
        let target = COL.directed_arcs_at(0.1);
        assert!((g.edge_count() as i64 - target as i64).unsigned_abs() <= 2);
    }

    #[test]
    fn utah_sets_double_their_edge_counts() {
        assert_eq!(SJ.directed_arcs_at(1.0), 2 * 47_594);
        assert_eq!(COL.directed_arcs_at(1.0), 1_042_400);
        let g = SJ.generate(0.1);
        // Dense enough that plenty of alternative paths exist
        // (arc ratio well above the 2(n−1)/n tree bound).
        let ratio = g.edge_count() as f64 / g.node_count() as f64;
        assert!(ratio > 3.0, "ratio {ratio}");
    }

    #[test]
    fn same_spec_same_graph() {
        let a = SJ.generate(0.05);
        let b = SJ.generate(0.05);
        assert_eq!(a.edge_count(), b.edge_count());
        assert_eq!(a.out_edges(0), b.out_edges(0));
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        let _ = SJ.generate(0.0);
    }
}
