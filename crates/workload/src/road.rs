//! Synthetic road-network generator.
//!
//! Real road networks are near-planar, low-degree, high-diameter graphs
//! with edge weights proportional to physical length. This generator
//! reproduces those properties on a `cols × rows` lattice:
//!
//! 1. enumerate all lattice edges (right/down neighbours, plus the two
//!    diagonals when the target density exceeds the rectilinear lattice's
//!    capacity — real road networks mix grid and diagonal streets),
//! 2. shuffle them and run Kruskal with union–find — the first `n−1`
//!    accepted edges form a *random spanning tree* (guaranteed
//!    connectivity, meandering road-like structure),
//! 3. add further shuffled lattice edges until the target *arc* count is
//!    reached (each undirected edge contributes two arcs, as in the DIMACS
//!    files of the paper),
//! 4. weight each edge with a jittered unit length
//!    (`base · U[0.75, 1.35]`), mimicking physical road lengths.

use kpj_graph::{Graph, GraphBuilder, Weight};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic road network.
#[derive(Debug, Clone)]
pub struct RoadConfig {
    /// Number of nodes `n`. The lattice is `⌈√n⌉` wide; the last row may
    /// be partial.
    pub nodes: usize,
    /// Target number of *arcs* `m` (two per undirected edge). Clamped to
    /// `[2(n−1), 2·#lattice-edges]`.
    pub arcs: usize,
    /// Base edge length before jitter (weights are
    /// `base · U[0.75, 1.35]`, at least 1).
    pub base_weight: Weight,
    /// RNG seed.
    pub seed: u64,
}

impl RoadConfig {
    /// A config with the paper's defaults for weights.
    pub fn new(nodes: usize, arcs: usize, seed: u64) -> Self {
        RoadConfig {
            nodes,
            arcs,
            base_weight: 1_000,
            seed,
        }
    }

    /// Generate the network.
    pub fn generate(&self) -> Graph {
        generate_road_network(self)
    }
}

/// See the module docs.
pub fn generate_road_network(cfg: &RoadConfig) -> Graph {
    let n = cfg.nodes;
    if n == 0 {
        return GraphBuilder::new(0).build();
    }
    if n == 1 {
        return GraphBuilder::new(1).build();
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let cols = (n as f64).sqrt().ceil() as usize;

    // Rectilinear lattice edges among the first n nodes (row-major layout),
    // flagged false; diagonal edges (weight × √2) flagged true and only
    // generated when the rectilinear lattice alone cannot reach the target
    // edge count.
    let rectilinear_capacity = {
        let mut c = 0usize;
        for v in 0..n {
            let col = v % cols;
            c += usize::from(col + 1 < cols && v + 1 < n);
            c += usize::from(v + cols < n);
        }
        c
    };
    let need_diagonals = cfg.arcs / 2 > rectilinear_capacity;
    let mut edges: Vec<(u32, u32, bool)> = Vec::with_capacity(4 * n);
    for v in 0..n {
        let col = v % cols;
        if col + 1 < cols && v + 1 < n {
            edges.push((v as u32, (v + 1) as u32, false));
        }
        if v + cols < n {
            edges.push((v as u32, (v + cols) as u32, false));
        }
        if need_diagonals {
            if col + 1 < cols && v + cols + 1 < n {
                edges.push((v as u32, (v + cols + 1) as u32, true));
            }
            if col > 0 && v + cols - 1 < n {
                edges.push((v as u32, (v + cols - 1) as u32, true));
            }
        }
    }
    edges.shuffle(&mut rng);

    // Kruskal over the shuffled order: a random spanning tree.
    let mut dsu = DisjointSets::new(n);
    let mut in_tree = vec![false; edges.len()];
    let mut tree_edges = 0usize;
    for (i, &(a, b, _)) in edges.iter().enumerate() {
        if dsu.union(a as usize, b as usize) {
            in_tree[i] = true;
            tree_edges += 1;
            if tree_edges == n - 1 {
                break;
            }
        }
    }
    debug_assert_eq!(tree_edges, n - 1, "lattice must be connected");

    // How many undirected edges in total?
    let want_undirected = (cfg.arcs / 2).clamp(n - 1, edges.len());
    let extra_needed = want_undirected - (n - 1);

    let mut b = GraphBuilder::with_capacity(n, 2 * want_undirected);
    let weight = |rng: &mut SmallRng, diagonal: bool| -> Weight {
        let jitter = rng.gen_range(0.75..1.35);
        let base = cfg.base_weight as f64
            * if diagonal {
                std::f64::consts::SQRT_2
            } else {
                1.0
            };
        ((base * jitter) as Weight).max(1)
    };
    let mut extra_left = extra_needed;
    for (&(a, b_, diag), &tree) in edges.iter().zip(&in_tree) {
        let take = tree
            || extra_left > 0 && {
                extra_left -= 1;
                true
            };
        if take {
            let w = weight(&mut rng, diag);
            b.add_bidirectional(a, b_, w)
                .expect("lattice nodes in range");
        }
    }
    b.build()
}

/// Union–find with path halving and union by size.
struct DisjointSets {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl DisjointSets {
    fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        x
    }

    /// Returns true if the two sets were merged (were distinct).
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_sp::DenseDijkstra;

    #[test]
    fn generates_requested_sizes() {
        let g = RoadConfig::new(1_000, 2_400, 42).generate();
        assert_eq!(g.node_count(), 1_000);
        assert_eq!(g.edge_count(), 2_400);
    }

    #[test]
    fn arc_count_clamped_to_spanning_tree_minimum() {
        let g = RoadConfig::new(100, 10, 1).generate();
        assert_eq!(g.edge_count(), 2 * 99);
    }

    #[test]
    fn is_connected() {
        for seed in 0..5 {
            let g = RoadConfig::new(500, 1_100, seed).generate();
            let d = DenseDijkstra::from_source(&g, 0);
            assert!(g.nodes().all(|v| d.reached(v)), "seed {seed} disconnected");
        }
    }

    #[test]
    fn weights_are_jittered_around_base() {
        let g = RoadConfig::new(400, 1_000, 7).generate();
        let (mut lo, mut hi) = (u32::MAX, 0u32);
        for u in g.nodes() {
            for e in g.out_edges(u) {
                lo = lo.min(e.weight);
                hi = hi.max(e.weight);
            }
        }
        assert!(lo >= 750 && hi <= 1_350, "weights {lo}..{hi} out of band");
        assert!(hi > lo, "no jitter");
    }

    #[test]
    fn degree_stays_road_like() {
        let g = RoadConfig::new(2_000, 4_800, 3).generate();
        let max_deg = g.nodes().map(|v| g.out_degree(v)).max().unwrap();
        assert!(max_deg <= 4, "lattice degree bound violated: {max_deg}");
        let avg = g.edge_count() as f64 / g.node_count() as f64;
        assert!((2.3..2.5).contains(&avg), "arc ratio {avg}");
    }

    #[test]
    fn deterministic_per_seed_and_varies_across_seeds() {
        let a = RoadConfig::new(300, 700, 5).generate();
        let b = RoadConfig::new(300, 700, 5).generate();
        let c = RoadConfig::new(300, 700, 6).generate();
        let fingerprint = |g: &Graph| {
            g.nodes()
                .flat_map(|u| {
                    g.out_edges(u)
                        .iter()
                        .map(|e| (u, e.to, e.weight))
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(fingerprint(&a), fingerprint(&b));
        assert_ne!(fingerprint(&a), fingerprint(&c));
    }

    #[test]
    fn tiny_networks() {
        assert_eq!(RoadConfig::new(0, 0, 1).generate().node_count(), 0);
        assert_eq!(RoadConfig::new(1, 0, 1).generate().node_count(), 1);
        let g = RoadConfig::new(2, 2, 1).generate();
        assert_eq!(g.edge_count(), 2);
    }
}
