//! `gen-huge` — stream a continental-scale stencil road network straight
//! to the v2 (mmap) binary format in `O(1)` memory.
//!
//! ```sh
//! gen-huge --nodes 24000000 --seed 42 --out usa-like.kpj2
//! ```
//!
//! The output is byte-for-byte a function of `(--nodes, --seed)`: two runs
//! with the same arguments produce identical files on any machine. See
//! `kpj_workload::huge` for the stencil definition and DESIGN.md §13 for
//! the file format.

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use kpj_workload::huge::HugeConfig;

const USAGE: &str = "\
gen-huge — stream an N-node stencil road network to a v2 graph file

usage: gen-huge --nodes N --out FILE [--seed S]

The generator uses O(1) memory: adjacency is a pure function of the node
id, so any size that fits in u32 node ids works. Output is deterministic
per (nodes, seed).";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return Ok(());
    }
    let mut nodes = None;
    let mut seed = 42u64;
    let mut out = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = || {
            it.next()
                .map(|v| v.as_str())
                .ok_or_else(|| format!("missing value for {a}"))
        };
        match a.as_str() {
            "--nodes" => {
                nodes = Some(
                    value()?
                        .parse::<usize>()
                        .map_err(|e| format!("--nodes: {e}"))?,
                )
            }
            "--seed" => {
                seed = value()?
                    .parse::<u64>()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => out = Some(value()?.to_string()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let nodes = nodes.ok_or("--nodes is required")?;
    let out = out.ok_or("--out is required")?;

    let cfg = HugeConfig::new(nodes, seed);
    let arcs = cfg.arc_count();
    let start = std::time::Instant::now();
    let file = File::create(&out).map_err(|e| format!("create {out}: {e}"))?;
    cfg.write_v2(BufWriter::new(file))
        .map_err(|e| format!("write {out}: {e}"))?;
    eprintln!(
        "gen-huge: {nodes} nodes, {arcs} arcs, seed {seed} -> {out} in {:.1}s",
        start.elapsed().as_secs_f64()
    );
    Ok(())
}
