//! A minimal benchmarking harness, API-compatible with the subset of
//! `criterion` 0.5 this workspace's benches use.
//!
//! The build environment is fully offline, so `kpj-bench` consumes this
//! crate under the dependency name `criterion`
//! (`criterion = { package = "kpj-criterion", path = … }`). Supported
//! surface: [`Criterion::benchmark_group`], group
//! [`sample_size`](BenchmarkGroup::sample_size) /
//! [`bench_function`](BenchmarkGroup::bench_function) /
//! [`bench_with_input`](BenchmarkGroup::bench_with_input) /
//! [`finish`](BenchmarkGroup::finish), [`Bencher::iter`],
//! [`BenchmarkId`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`].
//!
//! Instead of criterion's full statistical machinery it times
//! `sample_size` executions of the closure and prints mean / min /
//! total. That is enough to read the paper's *shape* claims (who wins,
//! by how much) off the output; it does not do outlier analysis or
//! HTML reports.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The harness entry point; collects benchmark groups.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks. Accepts `&str` or
    /// `String` like criterion's `S: Into<String>` bound.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        println!("\ngroup {}", name.into());
        BenchmarkGroup {
            sample_size: self.sample_size,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed executions per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id, |b| f(b, input));
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            total: Duration::ZERO,
            min: Duration::MAX,
            iters: 0,
        };
        // One untimed warm-up, then the timed samples.
        f(&mut b);
        b.total = Duration::ZERO;
        b.min = Duration::MAX;
        b.iters = 0;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        if b.iters == 0 {
            println!("  {:40} (no iterations)", id.0);
            return;
        }
        let mean = b.total / b.iters as u32;
        println!(
            "  {:40} mean {:>12.3?}  min {:>12.3?}  ({} iters, total {:.3?})",
            id.0, mean, b.min, b.iters, b.total
        );
    }
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    total: Duration,
    min: Duration,
    iters: u64,
}

impl Bencher {
    /// Time one execution of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        let dt = start.elapsed();
        self.total += dt;
        self.min = self.min.min(dt);
        self.iters += 1;
    }
}

/// A benchmark's display label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
