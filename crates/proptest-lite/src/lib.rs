//! A minimal property-based testing harness, API-compatible with the
//! subset of `proptest` 1.x this workspace's tests use.
//!
//! The build environment is fully offline, so the workspace consumes
//! this crate under the dependency name `proptest`
//! (`proptest = { package = "kpj-proptest", path = … }`). Supported
//! surface:
//!
//! * [`Strategy`] with [`prop_map`](Strategy::prop_map) /
//!   [`prop_flat_map`](Strategy::prop_flat_map);
//! * integer range strategies (`0..n`, `0..=n`), tuple strategies (arity
//!   2–4), [`collection::vec`], [`any::<bool>()`](any);
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test's name), there is
//! **no shrinking** — a failing case panics with the usual assertion
//! message and the case index — and `.proptest-regressions` files are
//! ignored.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Runner configuration (the `cases` knob only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test (default 64).
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy for a type with a canonical generator (`bool` only).
pub trait Arbitrary {
    /// Draw one value.
    fn arbitrary(rng: &mut SmallRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(core::marker::PhantomData)
}

/// See [`any`].
pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// A `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// An inclusive element-count band for [`collection::vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Greedy test-case minimization.
///
/// Real proptest shrinks through the strategy tree; this harness keeps
/// generation and shrinking separate so domain crates can shrink rich
/// structures (graphs, queries) with domain-specific candidate moves. The
/// driver is a greedy fixed point: propose candidates, accept the first
/// one that still fails, repeat until no candidate fails or the step
/// budget runs out. With deterministic `candidates` and `fails` the
/// result is deterministic.
pub mod shrink {
    /// Minimize `start` while `fails` keeps returning `true`.
    ///
    /// * `candidates` proposes strictly-smaller variants of the current
    ///   value, most aggressive first (e.g. "drop half the edges" before
    ///   "drop one edge") — returning an empty list ends the search;
    /// * `fails` re-runs the failing property: `true` means the candidate
    ///   still exhibits the bug and becomes the new current value;
    /// * `max_steps` bounds the total number of `fails` evaluations (the
    ///   property may be expensive).
    ///
    /// Returns the smallest failing value reached and the number of
    /// `fails` evaluations spent.
    pub fn minimize<T>(
        start: T,
        candidates: impl Fn(&T) -> Vec<T>,
        mut fails: impl FnMut(&T) -> bool,
        max_steps: usize,
    ) -> (T, usize) {
        let mut current = start;
        let mut steps = 0usize;
        'outer: loop {
            for cand in candidates(&current) {
                if steps >= max_steps {
                    return (current, steps);
                }
                steps += 1;
                if fails(&cand) {
                    current = cand;
                    continue 'outer;
                }
            }
            return (current, steps);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::minimize;

        /// Candidate moves for a Vec: drop one element at each position.
        fn drop_one(v: &[u32]) -> Vec<Vec<u32>> {
            (0..v.len())
                .map(|i| {
                    let mut c = v.to_vec();
                    c.remove(i);
                    c
                })
                .collect()
        }

        #[test]
        fn shrinks_to_a_minimal_failing_vector() {
            let start = vec![3, 200, 7, 150, 9];
            let (min, _steps) = minimize(
                start,
                |v: &Vec<u32>| drop_one(v),
                |v: &Vec<u32>| v.iter().any(|&x| x > 100),
                10_000,
            );
            // One offending element survives; everything irrelevant is gone.
            assert_eq!(min.len(), 1);
            assert!(min[0] > 100);
        }

        #[test]
        fn respects_the_step_budget() {
            let start: Vec<u32> = (0..100).map(|i| i + 200).collect();
            let (min, steps) = minimize(
                start,
                |v: &Vec<u32>| drop_one(v),
                |v: &Vec<u32>| !v.is_empty(),
                5,
            );
            assert_eq!(steps, 5);
            assert!(!min.is_empty(), "budget exhausted before empty");
        }

        #[test]
        fn fixed_point_when_nothing_shrinks() {
            let (min, steps) = minimize(
                vec![42u32],
                |v: &Vec<u32>| drop_one(v),
                |v: &Vec<u32>| v.contains(&42),
                100,
            );
            assert_eq!(min, vec![42]);
            // The single candidate (empty vec) was tried once and rejected.
            assert_eq!(steps, 1);
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// FNV-1a over the test name: a stable per-test seed.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[doc(hidden)]
pub fn fresh_rng(name: &str) -> SmallRng {
    SmallRng::seed_from_u64(seed_for(name))
}

/// Assert inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a property test (panics; no shrinking).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declare property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` running `cases` random cases from a
/// deterministic, per-test-name seed. A failing case panics with the
/// case index in the message.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        cfg = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::fresh_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    let __run = || {
                        $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                        $body
                    };
                    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (seed {:#x})",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}
