//! Intra-query parallelism: a persistent worker pool that fans one *round
//! batch* of independent subspace searches across threads and merges the
//! results deterministically.
//!
//! # The round-batch model
//!
//! Both query paradigms naturally produce batches of independent work:
//!
//! * the deviation baselines recompute a candidate path for every vertex
//!   of `scratch.affected` after each emission (Alg. 1 line 6), and
//! * the best-first / iter-bound loops, when the queue head is an
//!   *unsolved* subspace, can drain every consecutive unsolved entry
//!   (all of whose keys are ≤ every remaining key) and search them as one
//!   round (capped at [`PAR_BATCH_MAX`]).
//!
//! Each task in a round is a pure function of the query context, the
//! pseudo-tree (fully divided *before* the round), and private scratch —
//! searches push chains into a path arena but never read one. So a round
//! can run tasks in any order on any thread, as long as the *merge* is
//! performed in batch order: chains are re-pushed into the main arena and
//! results re-enqueued exactly as the sequential loop would have done.
//! Sequential and parallel execution therefore produce bit-identical
//! arenas, heaps, emitted paths and work counters — the property
//! `kpj-oracle` enforces (see `par_matches_sequential` in
//! `crates/oracle/src/invariants.rs` and DESIGN.md §12).
//!
//! # Zero allocations at steady state
//!
//! The pool spawns its OS threads once (on the engine's first parallel
//! query) and parks them on a condvar between rounds; per-round dispatch
//! is an epoch bump under a futex-backed mutex — no channels, no boxing,
//! no per-round allocation. Tasks are assigned by a *static stride*
//! (worker `i` runs tasks `i, i + limit, i + 2·limit, …`) rather than
//! work-stealing: the assignment is then a pure function of the batch, so
//! a warmed engine's per-worker scratch capacities are deterministic and
//! repeat queries stay allocation-free. Worker scratch
//! ([`WorkerScratch`]) is pre-allocated per thread; the result slots and
//! the chain-copy buffer are pooled on the pool itself and grow only
//! while the engine warms up. The `count-alloc` gate proves a warmed
//! engine with `par_threads > 0` still answers queries with zero heap
//! allocations.

use std::cell::{Cell, UnsafeCell};
use std::sync::{Arc, Condvar, Mutex};

use kpj_graph::{Length, NodeId, PathId, PathStore};

use crate::deviation::CandidateScratch;
use crate::search_core::{FoundPath, SubspaceScratch, SubspaceSearch};
use crate::stats::QueryStats;

/// Maximum round-batch size drained from the paradigm queues.
///
/// This constant is part of the *canonical* algorithm: sequential and
/// parallel runs drain identically sized batches, so thread count never
/// changes the work schedule — only who executes it. Bounding the batch
/// bounds the speculative overshoot at the termination boundary: at most
/// `PAR_BATCH_MAX - 1` searches of the final batch can be wasted, once
/// per query.
pub(crate) const PAR_BATCH_MAX: usize = 16;

/// Per-thread private state: everything one task needs to run a subspace
/// or candidate search without touching another thread's memory.
pub(crate) struct WorkerScratch {
    /// Searcher + buffers, same shape as the engine's own scratch. Its
    /// trace is never `begin`-ed, so span recording is inert on workers.
    pub scratch: SubspaceScratch,
    /// `DA-SPT` candidate-search scratch.
    pub cand: CandidateScratch,
    /// Worker-local path arena; found chains are copied into the main
    /// arena during the merge, then this is reset before the next round.
    pub store: PathStore,
    /// Work counters, absorbed into the query's stats after each round
    /// (absorption is order-insensitive: sums and maxes).
    pub stats: QueryStats,
}

impl WorkerScratch {
    fn new(n: usize) -> Self {
        WorkerScratch {
            scratch: SubspaceScratch::new(n),
            cand: CandidateScratch::new(n),
            store: PathStore::new(),
            stats: QueryStats::default(),
        }
    }
}

/// One task's outcome plus the worker whose arena holds its chain.
#[derive(Clone, Copy)]
pub(crate) struct TaskSlot {
    /// Index of the worker that executed the task.
    pub worker: u32,
    /// The search outcome; a `Found` handle points into that worker's
    /// [`WorkerScratch::store`].
    pub outcome: SubspaceSearch,
}

/// Type-erased round job: a monomorphized trampoline plus a pointer to
/// the caller's stack-allocated [`FanCtx`], valid while the dispatching
/// thread blocks in [`ParPool::fan_out`].
#[derive(Clone, Copy)]
struct Job {
    run: unsafe fn(*const (), usize, u32, &mut WorkerScratch),
    data: *const (),
    tasks: usize,
    /// Workers with index ≥ `limit` sit this round out (the engine's
    /// current `par_threads` grant may be below the pool size).
    limit: usize,
}

// SAFETY: `data` points into the dispatcher's stack frame, which outlives
// the round because `fan_out` blocks until every worker is done; the
// pointee (`FanCtx`) only exposes `Sync` data plus disjoint result slots.
unsafe impl Send for Job {}

struct Ctrl {
    epoch: u64,
    job: Option<Job>,
    /// Workers still running the current round.
    active: usize,
    shutdown: bool,
}

/// A worker's scratch slot. Exclusive access is protocol-enforced: worker
/// `i` touches slot `i` only between its job pickup and its `active`
/// decrement; the dispatcher touches slots only while `active == 0`.
struct SlotCell(UnsafeCell<WorkerScratch>);

// SAFETY: see the access protocol on the type.
unsafe impl Sync for SlotCell {}

struct Shared {
    ctrl: Mutex<Ctrl>,
    /// Workers wait here for an epoch bump.
    start: Condvar,
    /// The dispatcher waits here for `active == 0`.
    done: Condvar,
    slots: Box<[SlotCell]>,
}

/// Typed context of one fan-out round, erased behind [`Job::data`].
struct FanCtx<'a, T, F> {
    items: &'a [T],
    f: &'a F,
    results: *mut TaskSlot,
}

unsafe fn run_task<T, F>(data: *const (), task: usize, worker: u32, ws: &mut WorkerScratch)
where
    F: Fn(usize, &T, &mut WorkerScratch) -> SubspaceSearch,
{
    let ctx = unsafe { &*(data as *const FanCtx<'_, T, F>) };
    let outcome = (ctx.f)(task, &ctx.items[task], ws);
    // SAFETY: the static stride assigns each task index to exactly one
    // worker, so result slots are written without overlap.
    unsafe { *ctx.results.add(task) = TaskSlot { worker, outcome } };
}

/// Typed context of one scatter round (side-effecting tasks, no result
/// slots), erased behind [`Job::data`].
struct ScatterCtx<'a, T, F> {
    items: &'a [T],
    f: &'a F,
}

unsafe fn run_scatter<T, F>(data: *const (), task: usize, _worker: u32, _ws: &mut WorkerScratch)
where
    F: Fn(usize, &T),
{
    let ctx = unsafe { &*(data as *const ScatterCtx<'_, T, F>) };
    (ctx.f)(task, &ctx.items[task]);
}

/// The engine-owned intra-query thread pool. Created lazily on the first
/// parallel query; `!Sync` (single dispatcher) but `Send` with its engine.
pub(crate) struct ParPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Current round-participation limit (`par_threads` of the query).
    limit: Cell<usize>,
    /// Pooled result slots, indexed by task. Workers write disjoint
    /// entries during a round; only the dispatcher touches it otherwise.
    results: UnsafeCell<Vec<TaskSlot>>,
    /// Pooled `(node, cumulative length)` staging for chain copies.
    copy_buf: UnsafeCell<Vec<(NodeId, Length)>>,
}

impl ParPool {
    /// Spawn `workers` threads, each owning scratch sized for a graph of
    /// `n` nodes. The only allocations the pool ever performs happen here
    /// and in the warm-up growth of the pooled buffers.
    pub(crate) fn new(workers: usize, n: usize) -> Self {
        let workers = workers.max(1);
        let slots: Box<[SlotCell]> = (0..workers)
            .map(|_| SlotCell(UnsafeCell::new(WorkerScratch::new(n))))
            .collect();
        let shared = Arc::new(Shared {
            ctrl: Mutex::new(Ctrl {
                epoch: 0,
                job: None,
                active: 0,
                shutdown: false,
            }),
            start: Condvar::new(),
            done: Condvar::new(),
            slots,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kpj-par-{i}"))
                    .spawn(move || worker_main(shared, i))
                    .expect("spawn intra-query worker")
            })
            .collect();
        ParPool {
            shared,
            handles,
            limit: Cell::new(workers),
            results: UnsafeCell::new(Vec::new()),
            copy_buf: UnsafeCell::new(Vec::new()),
        }
    }

    /// Number of spawned worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Cap the number of workers that claim tasks in subsequent rounds
    /// (the per-query `par_threads` grant; excess workers wake, claim
    /// nothing, and go back to sleep). Output is independent of the cap.
    pub(crate) fn set_limit(&self, n: usize) {
        self.limit.set(n.clamp(1, self.workers()));
    }

    /// Execute `f` over every item of the round and return the outcomes
    /// in item order. Blocks until the round is complete; worker arenas
    /// are reset at round start and hold the found chains on return
    /// (copy them out with [`copy_chain`](ParPool::copy_chain) before the
    /// next round).
    pub(crate) fn fan_out<'a, T, F>(&'a self, items: &[T], f: F) -> &'a [TaskSlot]
    where
        T: Sync,
        F: Fn(usize, &T, &mut WorkerScratch) -> SubspaceSearch + Sync,
    {
        debug_assert!(!self.handles.is_empty());
        // Workers are parked between rounds, so the dispatcher has
        // exclusive slot access here.
        for slot in self.shared.slots.iter() {
            let ws = unsafe { &mut *slot.0.get() };
            ws.store.reset();
        }
        let results = unsafe { &mut *self.results.get() };
        results.clear();
        results.resize(
            items.len(),
            TaskSlot {
                worker: 0,
                outcome: SubspaceSearch::Empty,
            },
        );
        let fan = FanCtx {
            items,
            f: &f,
            results: results.as_mut_ptr(),
        };
        self.run_round(run_task::<T, F>, (&raw const fan).cast(), items.len());
        // SAFETY: every slot was written exactly once (all task indices
        // claimed and completed before `active` hit 0); the borrow is
        // invalidated only by the next `fan_out`, which requires `&self`
        // again after the caller drops this slice.
        unsafe { std::slice::from_raw_parts(results.as_ptr(), items.len()) }
    }

    /// Run `f(i, &items[i])` for every item across the pool and block
    /// until all complete. Unlike [`fan_out`](ParPool::fan_out) this
    /// collects nothing and leaves worker arenas untouched — the offline
    /// entry point for embarrassingly parallel side-effecting work
    /// (e.g. landmark table rows, where each task owns a disjoint output
    /// chunk).
    pub(crate) fn scatter<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        debug_assert!(!self.handles.is_empty());
        let ctx = ScatterCtx { items, f: &f };
        self.run_round(run_scatter::<T, F>, (&raw const ctx).cast(), items.len());
    }

    /// Dispatch one type-erased round and block until every worker has
    /// finished it. `data` must outlive this call (it points into the
    /// caller's stack frame).
    fn run_round(
        &self,
        run: unsafe fn(*const (), usize, u32, &mut WorkerScratch),
        data: *const (),
        tasks: usize,
    ) {
        {
            let mut c = self.shared.ctrl.lock().unwrap();
            c.job = Some(Job {
                run,
                data,
                tasks,
                limit: self.limit.get(),
            });
            c.active = self.handles.len();
            c.epoch = c.epoch.wrapping_add(1);
            self.shared.start.notify_all();
        }
        let mut c = self.shared.ctrl.lock().unwrap();
        while c.active > 0 {
            c = self.shared.done.wait(c).unwrap();
        }
        c.job = None;
    }

    /// Re-push the chain behind `f` (living in `worker`'s arena) into the
    /// main arena, preserving nodes and cumulative lengths, and return
    /// the re-based handle. Chains are linear (each entry parents the
    /// previous), so the copy reproduces exactly the pushes the
    /// sequential loop would have performed.
    pub(crate) fn copy_chain(&self, worker: u32, f: FoundPath, store: &mut PathStore) -> FoundPath {
        let ws = unsafe { &*self.shared.slots[worker as usize].0.get() };
        let buf = unsafe { &mut *self.copy_buf.get() };
        buf.clear();
        let mut cur = Some(f.tail);
        while let Some(id) = cur {
            buf.push((ws.store.node(id), ws.store.length(id)));
            cur = ws.store.parent(id);
        }
        let mut id: Option<PathId> = None;
        for &(node, len) in buf.iter().rev() {
            id = Some(store.push(id, node, len));
        }
        FoundPath {
            tail: id.expect("chain has at least one node"),
            ..f
        }
    }

    /// Fold every worker's round counters into `stats` and zero them.
    /// [`QueryStats::absorb`] is order-insensitive, so the totals equal
    /// the sequential counts regardless of which worker ran which task.
    pub(crate) fn absorb_worker_stats(&self, stats: &mut QueryStats) {
        for slot in self.shared.slots.iter() {
            let ws = unsafe { &mut *slot.0.get() };
            stats.absorb(&ws.stats);
            ws.stats = QueryStats::default();
        }
    }
}

impl Drop for ParPool {
    fn drop(&mut self) {
        {
            let mut c = self.shared.ctrl.lock().unwrap();
            c.shutdown = true;
            self.shared.start.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_main(shared: Arc<Shared>, idx: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut c = shared.ctrl.lock().unwrap();
            loop {
                if c.shutdown {
                    return;
                }
                if c.epoch != seen {
                    seen = c.epoch;
                    break c.job.expect("epoch bumped with a job installed");
                }
                c = shared.start.wait(c).unwrap();
            }
        };
        if idx < job.limit {
            // SAFETY: slot `idx` belongs to this worker until it
            // decrements `active` below.
            let ws = unsafe { &mut *shared.slots[idx].0.get() };
            // Static stride: the task→worker map is a pure function of
            // (batch size, limit), keeping warmed scratch capacities
            // deterministic (the zero-allocation steady state).
            let mut t = idx;
            while t < job.tasks {
                // SAFETY: `job.data` outlives the round (see `Job`).
                unsafe { (job.run)(job.data, t, idx as u32, ws) };
                t += job.limit;
            }
        }
        let mut c = shared.ctrl.lock().unwrap();
        c.active -= 1;
        if c.active == 0 {
            shared.done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pseudo_tree::ROOT;

    /// A task that pushes a 2-node chain into its worker arena.
    fn push_chain(ws: &mut WorkerScratch, a: NodeId, b: NodeId, len: Length) -> SubspaceSearch {
        let first = ws.store.push(None, a, 0);
        let tail = ws.store.push(Some(first), b, len);
        ws.stats.shortest_path_computations += 1;
        SubspaceSearch::Found(FoundPath {
            tail,
            length: len,
            vertex: ROOT,
            suffix_len: 1,
        })
    }

    #[test]
    fn fan_out_covers_every_task_and_merge_preserves_order() {
        let pool = ParPool::new(3, 8);
        let items: Vec<u32> = (0..40).collect();
        for _round in 0..5 {
            let results = pool.fan_out(&items, |i, &x, ws| {
                assert_eq!(i as u32, x);
                push_chain(ws, x, x + 100, x as Length * 7)
            });
            assert_eq!(results.len(), items.len());
            // Merge in batch order into a main arena.
            let mut main = PathStore::new();
            let mut lengths = Vec::new();
            for (i, r) in results.iter().enumerate() {
                let SubspaceSearch::Found(f) = r.outcome else {
                    panic!("task {i} not Found")
                };
                let f = pool.copy_chain(r.worker, f, &mut main);
                assert_eq!(main.node(f.tail), i as u32 + 100);
                assert_eq!(main.length(f.tail), i as Length * 7);
                lengths.push(f.length);
            }
            assert_eq!(lengths, (0..40).map(|x| x * 7).collect::<Vec<_>>());
            // Main-arena layout is deterministic: 2 entries per task, in
            // task order.
            assert_eq!(main.len(), 80);
            let mut stats = QueryStats::default();
            pool.absorb_worker_stats(&mut stats);
            assert_eq!(stats.shortest_path_computations, 40);
        }
    }

    #[test]
    fn limit_caps_participation_without_changing_output() {
        let pool = ParPool::new(4, 4);
        let items: Vec<u32> = (0..9).collect();
        for limit in [1, 2, 4] {
            pool.set_limit(limit);
            let results = pool.fan_out(&items, |_, &x, ws| push_chain(ws, x, x, 1));
            assert!(results.iter().all(|r| (r.worker as usize) < limit));
            assert!(results
                .iter()
                .all(|r| matches!(r.outcome, SubspaceSearch::Found(_))));
            let mut stats = QueryStats::default();
            pool.absorb_worker_stats(&mut stats);
            assert_eq!(stats.shortest_path_computations, 9);
        }
    }

    #[test]
    fn empty_round_and_drop_join() {
        let pool = ParPool::new(2, 2);
        let results = pool.fan_out(&[] as &[u32], |_, _, _| SubspaceSearch::Empty);
        assert!(results.is_empty());
        drop(pool); // must not hang
    }

    #[test]
    fn scatter_runs_every_task_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let pool = ParPool::new(3, 0);
        let counters: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        let items: Vec<usize> = (0..50).collect();
        for _round in 0..3 {
            pool.scatter(&items, |i, &x| {
                assert_eq!(i, x);
                counters[x].fetch_add(1, Ordering::Relaxed);
            });
        }
        assert!(counters.iter().all(|c| c.load(Ordering::Relaxed) == 3));
        // Interleaves fine with fan_out rounds on the same pool.
        let results = pool.fan_out(&items[..4], |_, &x, ws| push_chain(ws, x as u32, 0, 1));
        assert_eq!(results.len(), 4);
        let mut stats = QueryStats::default();
        pool.absorb_worker_stats(&mut stats);
        assert_eq!(stats.shortest_path_computations, 4);
    }
}
