//! Per-query deadlines: cooperative cancellation for the serving layer.
//!
//! A [`Deadline`] is a cheap, copyable wall-clock budget checked at the
//! coarse-grained decision points of a query — the paradigm loop heads —
//! and, via the searcher's cancel hook, every
//! [`CANCEL_POLL_STRIDE`](kpj_sp::CANCEL_POLL_STRIDE) settled nodes inside
//! each subspace search. One-shot index constructions (the full reverse
//! SPT of `DA-SPT`, `SPT_P`/`SPT_I` growth steps) run to completion before
//! the next check, so expiry can overshoot by at most one such step.
//!
//! Expiry is detected *inside* the engine only to stop wasting work; the
//! authoritative check happens once at the end of the query, so a query
//! that finishes just under its budget is never spuriously failed by a
//! mid-run poll.

use std::time::{Duration, Instant};

/// A wall-clock deadline for one query. `Copy`, so it threads through the
/// per-query context by value; [`Deadline::none`] disables all checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline: [`expired`](Deadline::expired) is always `false`.
    pub const fn none() -> Self {
        Deadline { at: None }
    }

    /// Expire at the given instant.
    pub const fn at(instant: Instant) -> Self {
        Deadline { at: Some(instant) }
    }

    /// Expire `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Deadline {
            at: Some(Instant::now() + timeout),
        }
    }

    /// True if a deadline is set (expired or not).
    pub const fn is_set(&self) -> bool {
        self.at.is_some()
    }

    /// The raw expiry instant, if set.
    pub const fn instant(&self) -> Option<Instant> {
        self.at
    }

    /// True once the deadline has passed. Reads the clock on every call;
    /// callers are expected to throttle (the searcher polls once per
    /// [`CANCEL_POLL_STRIDE`](kpj_sp::CANCEL_POLL_STRIDE) settles).
    #[inline]
    pub fn expired(&self) -> bool {
        match self.at {
            Some(t) => Instant::now() >= t,
            None => false,
        }
    }

    /// Time left, if a deadline is set (`None` = unbounded). Saturates at
    /// zero once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.at.map(|t| t.saturating_duration_since(Instant::now()))
    }
}

impl Default for Deadline {
    fn default() -> Self {
        Deadline::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_expires() {
        let d = Deadline::none();
        assert!(!d.is_set());
        assert!(!d.expired());
        assert_eq!(d.remaining(), None);
    }

    #[test]
    fn past_instant_is_expired() {
        let d = Deadline::at(Instant::now() - Duration::from_millis(1));
        assert!(d.is_set());
        assert!(d.expired());
        assert_eq!(d.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn generous_timeout_is_not_expired() {
        let d = Deadline::after(Duration::from_secs(3600));
        assert!(!d.expired());
        assert!(d.remaining().unwrap() > Duration::from_secs(3000));
    }
}
