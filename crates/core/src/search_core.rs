//! Direction-agnostic subspace machinery shared by every algorithm:
//! subspace shortest-path search (`CompSP` / `TestLB` / candidate paths),
//! subspace lower bounds (`CompLB` / `CompLB-SPTI`), and path assembly /
//! division plumbing.
//!
//! A *mode* fixes the orientation once per query:
//!
//! * **forward** (`DA`, `DA-SPT`, `BestFirst`, `IterBound`, `IterBound-SPTP`):
//!   the tree root is the source side (a real source or the GKPJ virtual
//!   source), searches expand out-edges, and the goal set is `V_T`.
//! * **reverse** (`IterBound-SPTI`, §5.3): the tree root is the virtual
//!   target `t`, searches expand in-edges, and the goal set is the source
//!   set `V_S` (usually `{s}`).
//!
//! Everything below is parameterized by [`Direction`], the root fan-out set
//! (sources forward / targets reverse; virtual edges weigh 0), and the goal
//! set, so the two orientations share one implementation.
//!
//! Path data model: a found path is never materialized into an owned
//! `Vec<NodeId>` on the hot path. Producers push the search chain into the
//! query's [`PathStore`] arena and hand around a Copy [`FoundPath`] handle;
//! division reads the suffix straight out of the arena
//! ([`PseudoTree::divide_from_store`]) and emission rebuilds the node
//! sequence into a pooled buffer ([`emit_found`]).

use kpj_graph::scratch::TimestampedSet;
use kpj_graph::{Graph, Length, NodeId, PathId, PathRef, PathSet, PathStore, INFINITE_LENGTH};
use kpj_heap::MinHeap;
use kpj_obs::{QueryTrace, Stage};
use kpj_sp::{Direction, Estimate, SearchOrder, SearchOutcome, Searcher};

use crate::deadline::Deadline;
use crate::pseudo_tree::{PseudoTree, VertexId, ROOT, VIRTUAL_NODE};
use crate::stats::QueryStats;

/// Consumer of result paths, in non-decreasing length order.
///
/// `nodes` is borrowed from the caller's emission buffer — sinks copy what
/// they keep. [`emit`](PathSink::emit) returns `false` to stop the query
/// early — the anytime interface behind [`QueryEngine::query_visit`]
/// (`QueryEngine` collects into a bounded [`PathSet`] through the same
/// trait).
///
/// [`QueryEngine::query_visit`]: crate::QueryEngine::query_visit
pub(crate) trait PathSink {
    /// Deliver the next path; return `true` to keep the query running.
    fn emit(&mut self, nodes: &[NodeId], length: Length) -> bool;
}

/// The standard sink: collect up to `k` paths into a caller-owned
/// [`PathSet`] (flat storage — one copy into pooled buffers, no per-path
/// allocation at steady state).
pub(crate) struct CollectSink<'a> {
    pub out: &'a mut PathSet,
    pub k: usize,
}

impl PathSink for CollectSink<'_> {
    fn emit(&mut self, nodes: &[NodeId], length: Length) -> bool {
        debug_assert!(self.out.len() < self.k);
        self.out.push(nodes, length);
        self.out.len() < self.k
    }
}

/// Adapter for user callbacks with a `k` cap.
pub(crate) struct VisitSink<F: for<'a> FnMut(PathRef<'a>) -> bool> {
    pub f: F,
    pub remaining: usize,
}

impl<F: for<'a> FnMut(PathRef<'a>) -> bool> PathSink for VisitSink<F> {
    fn emit(&mut self, nodes: &[NodeId], length: Length) -> bool {
        debug_assert!(self.remaining > 0);
        self.remaining -= 1;
        (self.f)(PathRef { nodes, length }) && self.remaining > 0
    }
}

/// A path found in a subspace, ready for emission and division: a Copy
/// handle into the query's [`PathStore`].
///
/// The arena chain ending at [`tail`](FoundPath::tail) holds the *search
/// chain* in tree orientation — from the subspace seed (the subspace
/// vertex's node, or a fan-out endpoint under a virtual root) to the goal
/// node — with each entry's `length` the cumulative path length up to and
/// including that node. The tree prefix above the vertex is not duplicated
/// here; emission walks it out of the [`PseudoTree`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct FoundPath {
    /// Arena entry of the goal-side end of the search chain.
    pub tail: PathId,
    /// Total length `ω(P)`.
    pub length: Length,
    /// The vertex whose subspace this path was found in.
    pub vertex: VertexId,
    /// How many entries, walking back from `tail`, form the suffix *after*
    /// the vertex — what [`PseudoTree::divide_from_store`] consumes. Equals
    /// the chain node count minus one for a real-rooted chain (the seed is
    /// the vertex's own node), or the full count under a virtual root.
    pub suffix_len: u32,
}

/// Result of a subspace search.
#[derive(Debug, Clone, Copy)]
pub(crate) enum SubspaceSearch {
    /// The subspace's shortest path (always when unbounded and non-empty;
    /// when bounded, only if `ω(sp(S)) ≤ τ` — Lemma 5.1).
    Found(FoundPath),
    /// Bounded run proved `ω(sp(S)) > τ`.
    Bounded,
    /// The subspace contains no path at all — drop it (DESIGN.md §3).
    Empty,
    /// The query deadline fired mid-search; the caller must stop the query
    /// and discard its results.
    Aborted,
}

/// Per-query context shared by the subspace primitives.
pub(crate) struct SubspaceCtx<'q> {
    /// The graph.
    pub g: &'q Graph,
    /// Search orientation (see module docs).
    pub direction: Direction,
    /// Root fan-out endpoints reached by 0-weight virtual edges: the
    /// sources (forward) or the targets (reverse). Only consulted when the
    /// tree root is virtual.
    pub fanout: &'q [NodeId],
    /// Membership set of the goal side (`V_T` forward, `V_S` reverse).
    pub goal_set: &'q TimestampedSet,
    /// Number of goal-side nodes (`|V_T|` forward / `|V_S|` reverse);
    /// used for the single-goal terminal-subspace optimization.
    pub goal_count: usize,
    /// Heap discipline of the subspace searches. Must be
    /// [`SearchOrder::Dijkstra`] whenever the query's estimate is
    /// admissible but not consistent (`IterBound-SPT_P`'s mix of exact
    /// partial-SPT distances and Eq. (2) fallbacks).
    pub order: SearchOrder,
    /// The query's deadline, polled inside every subspace search and at
    /// the paradigm loop heads. [`Deadline::none()`] disables it.
    pub deadline: Deadline,
}

/// Mutable scratch for the subspace primitives, owned by the engine. All
/// buffers keep their capacity across queries, so a warmed engine runs the
/// subspace machinery without heap allocation.
pub(crate) struct SubspaceScratch {
    /// The shared constrained searcher.
    pub searcher: Searcher,
    /// Prefix membership marks, re-marked per primitive call.
    pub prefix_set: TimestampedSet,
    /// Seed list of the current subspace search.
    pub seed_buf: Vec<(NodeId, Length)>,
    /// Parent-chain staging (goal → seed) during assembly.
    pub chain_buf: Vec<NodeId>,
    /// Node buffer the emitted path is rebuilt into.
    pub emit_buf: Vec<NodeId>,
    /// Vertices affected by the last division.
    pub affected: Vec<VertexId>,
    /// Pooled candidate heap of the deviation baselines (taken with
    /// `mem::take` for the duration of a run, then put back).
    pub dev_heap: MinHeap<Length, FoundPath>,
    /// Pooled subspace queue of the best-first / iter-bound paradigms.
    pub para_heap: MinHeap<Length, (VertexId, Option<FoundPath>)>,
    /// Pooled round batch drained from `para_heap` (the `(key, vertex)`
    /// pairs of consecutive unsolved subspaces — see `crate::par`).
    pub round_batch: Vec<(Length, VertexId)>,
    /// The query tracer: a pre-allocated span ring, threaded here so every
    /// primitive and paradigm can record stage spans without new
    /// parameters. A no-op ZST when the `trace` feature is off.
    pub trace: QueryTrace,
}

impl SubspaceScratch {
    pub(crate) fn new(n: usize) -> Self {
        SubspaceScratch {
            searcher: Searcher::new(n),
            prefix_set: TimestampedSet::new(n),
            seed_buf: Vec::new(),
            chain_buf: Vec::new(),
            emit_buf: Vec::new(),
            affected: Vec::new(),
            dev_heap: MinHeap::new(),
            para_heap: MinHeap::new(),
            round_batch: Vec::new(),
            trace: QueryTrace::new(kpj_obs::trace::DEFAULT_SPAN_CAPACITY),
        }
    }
}

/// Mark the prefix nodes of `vertex` into `prefix_set`.
fn mark_prefix(tree: &PseudoTree, vertex: VertexId, prefix_set: &mut TimestampedSet) {
    prefix_set.clear();
    for n in tree.prefix_nodes(vertex) {
        prefix_set.insert(n as usize);
    }
}

/// `CompLB` (Alg. 3) / `CompLB-SPTI` (Alg. 8): a lower bound on the length
/// of every path in the subspace at `vertex`, from one-hop look-ahead:
/// `min over valid continuations (u,v): ω(prefix) + ω(u,v) + lb_num(v)`,
/// additionally admitting the prefix itself when it already ends on the
/// goal side and has not been emitted (a case Alg. 3 misses — DESIGN.md §3).
///
/// Returns [`INFINITE_LENGTH`] when the subspace is provably empty.
pub(crate) fn comp_lb(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    tree: &PseudoTree,
    vertex: VertexId,
    lb_num: &mut impl FnMut(NodeId) -> Length,
    stats: &mut QueryStats,
) -> Length {
    stats.lower_bound_computations += 1;
    mark_prefix(tree, vertex, &mut scratch.prefix_set);
    let u = tree.node(vertex);
    let plen = tree.prefix_len(vertex);
    let mut lb = INFINITE_LENGTH;
    if u != VIRTUAL_NODE && ctx.goal_set.contains(u as usize) && !tree.emitted(vertex) {
        lb = plen;
    }
    if u == VIRTUAL_NODE {
        for &f in ctx.fanout {
            if !tree.is_excluded(vertex, f) {
                lb = lb.min(lb_num(f));
            }
        }
    } else {
        for e in ctx.direction.edges(ctx.g, u) {
            if scratch.prefix_set.contains(e.to as usize) || tree.is_excluded(vertex, e.to) {
                continue;
            }
            lb = lb.min(
                plen.saturating_add(e.weight as Length)
                    .saturating_add(lb_num(e.to)),
            );
        }
    }
    lb
}

/// `CompSP` (unbounded, `bound = None`) and `TestLB` (Alg. 5,
/// `bound = Some(τ)`) in one: the constrained best-first search inside the
/// subspace at `vertex`. On success the found chain is pushed into `store`.
///
/// `estimate` supplies the heuristic / admissibility verdict per node (see
/// [`Estimate`]); `Estimate::Deferred` implements the `SPT_I` pruning of
/// §5.3 and keeps the outcome `Bounded` so the subspace is retried at a
/// larger τ.
#[allow(clippy::too_many_arguments)]
pub(crate) fn subspace_search(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    store: &mut PathStore,
    tree: &PseudoTree,
    vertex: VertexId,
    estimate: &mut impl FnMut(NodeId) -> Estimate,
    bound: Option<Length>,
    stats: &mut QueryStats,
) -> SubspaceSearch {
    if bound.is_some() {
        stats.testlb_calls += 1;
    } else {
        stats.shortest_path_computations += 1;
    }
    mark_prefix(tree, vertex, &mut scratch.prefix_set);
    let u = tree.node(vertex);
    let plen = tree.prefix_len(vertex);
    let allow_trivial = !tree.emitted(vertex);

    // Seeds: the vertex itself, or — for a virtual root — the non-excluded
    // fan-out endpoints across 0-weight virtual edges.
    scratch.seed_buf.clear();
    if u == VIRTUAL_NODE {
        scratch.seed_buf.extend(
            ctx.fanout
                .iter()
                .filter(|&&f| !tree.is_excluded(vertex, f))
                .map(|&f| (f, 0)),
        );
    } else {
        scratch.seed_buf.push((u, plen));
    }

    // Span only the full CompSP runs: bounded TestLB probes are numerous
    // and cheap, and timing each would eat the <2% tracing budget.
    let tick = if bound.is_none() {
        Some(scratch.trace.start())
    } else {
        None
    };
    let prefix_set = &scratch.prefix_set;
    let goal_set = ctx.goal_set;
    let deadline = ctx.deadline;
    let outcome = scratch.searcher.search_ctl(
        ctx.g,
        ctx.direction,
        scratch.seed_buf.iter().copied(),
        |from, e| {
            !prefix_set.contains(e.to as usize) && (from != u || !tree.is_excluded(vertex, e.to))
        },
        &mut *estimate,
        |v| goal_set.contains(v as usize) && (v != u || allow_trivial),
        bound,
        ctx.order,
        || deadline.expired(),
    );
    stats.nodes_settled += scratch.searcher.settled_count();
    stats.edges_relaxed += scratch.searcher.relaxed_edges();
    // Every settle popped the search heap once.
    stats.heap_pops += scratch.searcher.settled_count();
    stats.lb_prunes += scratch.searcher.pruned_count();
    if let Some(tick) = tick {
        scratch.trace.record(Stage::SpSearch, tick);
    }

    match outcome {
        SearchOutcome::Found { node, dist } => {
            SubspaceSearch::Found(assemble(scratch, store, tree, vertex, node, dist))
        }
        SearchOutcome::ExhaustedBounded => {
            stats.testlb_bounded += 1;
            SubspaceSearch::Bounded
        }
        SearchOutcome::ExhaustedComplete => {
            // The subspace is provably pathless: callers drop it.
            stats.subspaces_skipped += 1;
            SubspaceSearch::Empty
        }
        SearchOutcome::Aborted => SubspaceSearch::Aborted,
    }
}

/// Push the searcher's chain for goal node `goal` (settled at `dist`) into
/// the arena and return the [`FoundPath`] handle, relative to the subspace
/// at `vertex`.
fn assemble(
    scratch: &mut SubspaceScratch,
    store: &mut PathStore,
    tree: &PseudoTree,
    vertex: VertexId,
    goal: NodeId,
    dist: Length,
) -> FoundPath {
    let u = tree.node(vertex);
    scratch.chain_buf.clear();
    // chain_buf: goal, …, seed (seed == u for real vertices; a fan-out
    // endpoint for a virtual root).
    let count = scratch
        .searcher
        .extend_chain_to_root(goal, &mut scratch.chain_buf);
    // Arena chains are parent-linked towards the seed, so push seed-first.
    let mut id: Option<PathId> = None;
    for &x in scratch.chain_buf.iter().rev() {
        id = Some(store.push(id, x, scratch.searcher.dist(x)));
    }
    let skip = u32::from(u != VIRTUAL_NODE);
    FoundPath {
        tail: id.expect("chain has at least one node"),
        length: dist,
        vertex,
        suffix_len: count as u32 - skip,
    }
}

/// Divide the subspace of `found` into `scratch.affected` (the vertices to
/// (re)enqueue), skipping provably useless emitted-terminal subspaces when
/// the goal side is a single node — such a subspace could only extend
/// *through* that node back to itself, which is never simple.
pub(crate) fn divide_subspace(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    store: &PathStore,
    tree: &mut PseudoTree,
    found: FoundPath,
    stats: &mut QueryStats,
) {
    scratch.affected.clear();
    tree.divide_from_store(
        found.vertex,
        store,
        found.tail,
        found.suffix_len,
        &mut scratch.affected,
    );
    stats.subspaces_created += scratch.affected.len().saturating_sub(1);
    if ctx.goal_count == 1 {
        let affected = &mut scratch.affected;
        let before = affected.len();
        affected.retain(|&v| !tree.emitted(v));
        stats.subspaces_skipped += before - affected.len();
    }
}

/// Rebuild `found`'s full node sequence (tree prefix + arena chain) into
/// `scratch.emit_buf` and deliver it to `sink`. Safe to call after
/// [`divide_subspace`] — division only appends tree vertices, never
/// rewrites the prefix chain. Returns the sink's continue/stop verdict.
pub(crate) fn emit_found(
    scratch: &mut SubspaceScratch,
    store: &PathStore,
    tree: &PseudoTree,
    found: FoundPath,
    reverse_output: bool,
    sink: &mut dyn PathSink,
) -> bool {
    let buf = &mut scratch.emit_buf;
    buf.clear();
    // Chain, goal side first.
    let mut cur = Some(found.tail);
    while let Some(id) = cur {
        buf.push(store.node(id));
        cur = store.parent(id);
    }
    // Tree prefix strictly above the vertex (the chain already holds the
    // vertex's own node for real-rooted subspaces; a virtual-rooted
    // subspace is the root and has no prefix).
    if found.vertex != ROOT {
        buf.extend(tree.prefix_nodes(tree.parent(found.vertex)));
    }
    // buf is now the full path in *reversed* tree orientation — which is
    // exactly source-first for reverse mode (SPT_I); forward mode flips.
    if !reverse_output {
        buf.reverse();
    }
    sink.emit(buf, found.length)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pseudo_tree::ROOT;
    use kpj_graph::GraphBuilder;

    /// Line 0-1-2-3 (unit weights, bidirectional) with targets {3}.
    fn fixture() -> (Graph, TimestampedSet) {
        let mut b = GraphBuilder::new(4);
        for i in 0..3u32 {
            b.add_bidirectional(i, i + 1, 1).unwrap();
        }
        let g = b.build();
        let mut goal = TimestampedSet::new(4);
        goal.insert(3);
        (g, goal)
    }

    fn zero_est(_: NodeId) -> Estimate {
        Estimate::Bound(0)
    }

    /// Materialize a [`FoundPath`]'s full node sequence for assertions.
    fn found_nodes(
        scratch: &mut SubspaceScratch,
        store: &PathStore,
        tree: &PseudoTree,
        found: FoundPath,
        reverse_output: bool,
    ) -> (Vec<NodeId>, Length) {
        struct Grab(Vec<NodeId>, Length);
        impl PathSink for Grab {
            fn emit(&mut self, nodes: &[NodeId], length: Length) -> bool {
                self.0 = nodes.to_vec();
                self.1 = length;
                false
            }
        }
        let mut grab = Grab(Vec::new(), 0);
        emit_found(scratch, store, tree, found, reverse_output, &mut grab);
        (grab.0, grab.1)
    }

    /// The suffix pairs `(node, cumulative length)` read from the arena.
    fn found_suffix(store: &PathStore, found: FoundPath) -> Vec<(NodeId, Length)> {
        let mut out = Vec::new();
        let mut cur = Some(found.tail);
        for _ in 0..found.suffix_len {
            let id = cur.unwrap();
            out.push((store.node(id), store.length(id)));
            cur = store.parent(id);
        }
        out.reverse();
        out
    }

    #[test]
    fn comp_sp_finds_path_and_assembles_suffix() {
        let (g, goal_set) = fixture();
        let ctx = SubspaceCtx {
            g: &g,
            direction: Direction::Forward,
            fanout: &[],
            goal_set: &goal_set,
            goal_count: 1,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut store = PathStore::new();
        let tree = PseudoTree::new(0);
        let mut stats = QueryStats::default();
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            None,
            &mut stats,
        );
        let SubspaceSearch::Found(f) = r else {
            panic!("expected Found, got {r:?}")
        };
        let (nodes, length) = found_nodes(&mut scratch, &store, &tree, f, false);
        assert_eq!(nodes, vec![0, 1, 2, 3]);
        assert_eq!(length, 3);
        assert_eq!(f.length, 3);
        assert_eq!(found_suffix(&store, f), vec![(1, 1), (2, 2), (3, 3)]);
        assert_eq!(stats.shortest_path_computations, 1);
    }

    #[test]
    fn testlb_bounded_vs_found_vs_empty() {
        let (g, goal_set) = fixture();
        let ctx = SubspaceCtx {
            g: &g,
            direction: Direction::Forward,
            fanout: &[],
            goal_set: &goal_set,
            goal_count: 1,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut store = PathStore::new();
        let tree = PseudoTree::new(0);
        let mut stats = QueryStats::default();
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            Some(2),
            &mut stats,
        );
        assert!(matches!(r, SubspaceSearch::Bounded), "{r:?}");
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            Some(3),
            &mut stats,
        );
        assert!(matches!(r, SubspaceSearch::Found(_)), "{r:?}");

        // Unreachable goal set: search a tree rooted at an isolated node.
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1, 1).unwrap(); // keep node 1 non-trivial
        let g2 = b.build();
        let mut goal2 = TimestampedSet::new(2);
        goal2.insert(1);
        let ctx2 = SubspaceCtx {
            g: &g2,
            direction: Direction::Forward,
            fanout: &[],
            goal_set: &goal2,
            goal_count: 1,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let tree2 = PseudoTree::new(0);
        let r = subspace_search(
            &ctx2,
            &mut scratch,
            &mut store,
            &tree2,
            ROOT,
            &mut zero_est,
            Some(100),
            &mut stats,
        );
        assert!(matches!(r, SubspaceSearch::Empty), "{r:?}");
    }

    #[test]
    fn emitted_vertex_suppresses_trivial_path() {
        let (g, mut goal_set) = fixture();
        goal_set.insert(0); // source is also a target
        let ctx = SubspaceCtx {
            g: &g,
            direction: Direction::Forward,
            fanout: &[],
            goal_set: &goal_set,
            goal_count: 2,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut store = PathStore::new();
        let mut tree = PseudoTree::new(0);
        let mut stats = QueryStats::default();
        // First search finds the zero-length trivial path (0).
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            None,
            &mut stats,
        );
        let SubspaceSearch::Found(f) = r else {
            panic!("{r:?}")
        };
        let (nodes, length) = found_nodes(&mut scratch, &store, &tree, f, false);
        assert_eq!(nodes, vec![0]);
        assert_eq!(length, 0);
        assert_eq!(f.suffix_len, 0);
        // Divide (marks ROOT emitted) and search again: now the next path.
        divide_subspace(&ctx, &mut scratch, &store, &mut tree, f, &mut stats);
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            None,
            &mut stats,
        );
        let SubspaceSearch::Found(f2) = r else {
            panic!("{r:?}")
        };
        let (nodes, _) = found_nodes(&mut scratch, &store, &tree, f2, false);
        assert_eq!(nodes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn virtual_root_fanout_seeds_and_assembly() {
        let (g, goal_set) = fixture();
        let fanout = [0u32, 2];
        let ctx = SubspaceCtx {
            g: &g,
            direction: Direction::Forward,
            fanout: &fanout,
            goal_set: &goal_set,
            goal_count: 1,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut store = PathStore::new();
        let tree = PseudoTree::new(VIRTUAL_NODE);
        let mut stats = QueryStats::default();
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            None,
            &mut stats,
        );
        let SubspaceSearch::Found(f) = r else {
            panic!("{r:?}")
        };
        // Nearer source 2 wins: path 2 → 3.
        let (nodes, length) = found_nodes(&mut scratch, &store, &tree, f, false);
        assert_eq!(nodes, vec![2, 3]);
        assert_eq!(length, 1);
        assert_eq!(found_suffix(&store, f), vec![(2, 0), (3, 1)]);
    }

    #[test]
    fn excluded_fanout_is_not_seeded() {
        let (g, goal_set) = fixture();
        let fanout = [0u32, 2];
        let ctx = SubspaceCtx {
            g: &g,
            direction: Direction::Forward,
            fanout: &fanout,
            goal_set: &goal_set,
            goal_count: 1,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut store = PathStore::new();
        let mut tree = PseudoTree::new(VIRTUAL_NODE);
        // Simulate having taken first-hop 2 already.
        let mut affected = Vec::new();
        tree.divide(ROOT, &[(2, 0), (3, 1)], &mut affected);
        let mut stats = QueryStats::default();
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            None,
            &mut stats,
        );
        let SubspaceSearch::Found(f) = r else {
            panic!("{r:?}")
        };
        let (nodes, length) = found_nodes(&mut scratch, &store, &tree, f, false);
        assert_eq!(nodes, vec![0, 1, 2, 3]);
        assert_eq!(length, 3);
    }

    #[test]
    fn comp_lb_one_hop_bound_and_trivial() {
        let (g, goal_set) = fixture();
        let ctx = SubspaceCtx {
            g: &g,
            direction: Direction::Forward,
            fanout: &[],
            goal_set: &goal_set,
            goal_count: 1,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let tree = PseudoTree::new(0);
        let mut stats = QueryStats::default();
        // lb_num = exact remaining distances: lb must equal true sp length.
        let exact = [3u64, 2, 1, 0];
        let lb = comp_lb(
            &ctx,
            &mut scratch,
            &tree,
            ROOT,
            &mut |v| exact[v as usize],
            &mut stats,
        );
        assert_eq!(lb, 3);
        // With zero bounds: one-hop look-ahead gives weight of first edge.
        let lb0 = comp_lb(&ctx, &mut scratch, &tree, ROOT, &mut |_| 0, &mut stats);
        assert_eq!(lb0, 1);

        // Trivial membership: root at a goal node, not yet emitted.
        let tree3 = PseudoTree::new(3);
        let lb3 = comp_lb(&ctx, &mut scratch, &tree3, ROOT, &mut |_| 0, &mut stats);
        assert_eq!(lb3, 0);
    }

    #[test]
    fn reverse_direction_search_reaches_sources() {
        let (g, _) = fixture();
        let mut goal = TimestampedSet::new(4);
        goal.insert(0); // goal side = source {0}
        let fanout = [3u32]; // virtual target fan-out = V_T
        let ctx = SubspaceCtx {
            g: &g,
            direction: Direction::Backward,
            fanout: &fanout,
            goal_set: &goal,
            goal_count: 1,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut store = PathStore::new();
        let tree = PseudoTree::new(VIRTUAL_NODE);
        let mut stats = QueryStats::default();
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            None,
            &mut stats,
        );
        let SubspaceSearch::Found(f) = r else {
            panic!("{r:?}")
        };
        // Tree orientation: target-first; flipped on output.
        let (nodes, _) = found_nodes(&mut scratch, &store, &tree, f, false);
        assert_eq!(nodes, vec![3, 2, 1, 0]);
        let (nodes, length) = found_nodes(&mut scratch, &store, &tree, f, true);
        assert_eq!(nodes, vec![0, 1, 2, 3]);
        assert_eq!(length, 3);
    }

    #[test]
    fn divide_subspace_skips_single_goal_terminals() {
        let (g, goal_set) = fixture();
        let ctx = SubspaceCtx {
            g: &g,
            direction: Direction::Forward,
            fanout: &[],
            goal_set: &goal_set,
            goal_count: 1,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut store = PathStore::new();
        let mut tree = PseudoTree::new(0);
        let mut stats = QueryStats::default();
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            None,
            &mut stats,
        );
        let SubspaceSearch::Found(f) = r else {
            panic!("{r:?}")
        };
        divide_subspace(&ctx, &mut scratch, &store, &mut tree, f, &mut stats);
        // Path 0-1-2-3 creates vertices for 1,2,3 plus re-queues ROOT; the
        // terminal (emitted, single goal) is skipped → ROOT, v1, v2.
        assert_eq!(scratch.affected.len(), 3);
        assert_eq!(scratch.affected[0], ROOT);
        assert_eq!(stats.subspaces_created, 3);
    }

    #[test]
    fn emission_after_division_from_interior_vertex() {
        // Regression for the divide-before-emit ordering: emission reads
        // the tree prefix after divide has appended new vertices.
        let (g, goal_set) = fixture();
        let ctx = SubspaceCtx {
            g: &g,
            direction: Direction::Forward,
            fanout: &[],
            goal_set: &goal_set,
            goal_count: 1,
            order: SearchOrder::Astar,
            deadline: Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut store = PathStore::new();
        let mut tree = PseudoTree::new(0);
        let mut stats = QueryStats::default();
        let r = subspace_search(
            &ctx,
            &mut scratch,
            &mut store,
            &tree,
            ROOT,
            &mut zero_est,
            None,
            &mut stats,
        );
        let SubspaceSearch::Found(f) = r else {
            panic!("{r:?}")
        };
        divide_subspace(&ctx, &mut scratch, &store, &mut tree, f, &mut stats);
        let (nodes, length) = found_nodes(&mut scratch, &store, &tree, f, false);
        assert_eq!(nodes, vec![0, 1, 2, 3]);
        assert_eq!(length, 3);
    }
}
