//! Lower-bound oracles used by the query algorithms.
//!
//! Two directions of bounds appear in the paper:
//!
//! * **towards the targets** — `lb(v, V_T)` (Eq. (2)); used as the A\*
//!   heuristic of every forward search and as the `SPT_I` growth key.
//! * **from the source side** — `lb(s, v)` (single source) or
//!   `lb(V_S, v) = max_w ( δ(w,v) − max_{s ∈ V_S} δ(w,s) )` (GKPJ virtual
//!   source); used by the reverse-graph searches of the `SPT_I` approach
//!   and as the heuristic of `PartialSPT` (Alg. 6).
//!
//! Every oracle has a `Zero` variant implementing §6's "computing without
//! landmark": all estimates degrade to 0 and A\* becomes Dijkstra.

use kpj_graph::{Length, NodeId, INFINITE_LENGTH};
use kpj_landmark::{LandmarkIndex, QueryBounds};

/// Lower bounds `lb(v, V_T)` towards the destination side.
#[derive(Debug, Clone)]
pub enum TargetsLb<'q> {
    /// No landmarks: every bound is 0 (§6, the `-NL` variants).
    Zero,
    /// Landmark Eq. (2) bounds, preprocessed for one target set.
    Alt(QueryBounds<'q>),
}

impl TargetsLb<'_> {
    /// `lb(v, V_T)`; [`INFINITE_LENGTH`] when `V_T` is provably
    /// unreachable from `v`.
    #[inline]
    pub fn lb(&self, v: NodeId) -> Length {
        match self {
            TargetsLb::Zero => 0,
            TargetsLb::Alt(qb) => qb.lb_to_targets(v),
        }
    }
}

/// Lower bounds `lb(source side, v)` from the source side.
#[derive(Debug, Clone)]
pub enum SourceLb<'q> {
    /// No landmarks: every bound is 0.
    Zero,
    /// Single source `s`: `lb(s, v)` straight from the landmark index.
    Single(&'q LandmarkIndex, NodeId),
    /// GKPJ virtual source over `V_S`: per-landmark `max_{s} δ(w, s)` is
    /// precomputed once per query (`O(|L|·|V_S|)`), after which each bound
    /// costs `O(|L|)` — the virtual-source analogue of Eq. (2).
    Multi {
        /// The offline landmark index.
        index: &'q LandmarkIndex,
        /// `max_dist[l] = max_{s ∈ V_S} δ(w_l, s)`; [`INFINITE_LENGTH`]
        /// when some source is unreachable from the landmark (the landmark
        /// then proves nothing and is skipped).
        max_dist: Vec<Length>,
    },
}

impl<'q> SourceLb<'q> {
    /// Build the oracle for a source specification.
    pub fn new(index: Option<&'q LandmarkIndex>, sources: &[NodeId]) -> Self {
        match (index, sources) {
            (None, _) => SourceLb::Zero,
            (Some(idx), [s]) => SourceLb::Single(idx, *s),
            (Some(idx), _) => {
                let max_dist = (0..idx.len())
                    .map(|l| {
                        sources
                            .iter()
                            .map(|&s| idx.landmark_distance(l, s))
                            .max()
                            .unwrap_or(INFINITE_LENGTH)
                    })
                    .collect();
                SourceLb::Multi {
                    index: idx,
                    max_dist,
                }
            }
        }
    }

    /// A lower bound on `min_{s ∈ V_S} δ(s, v)`; [`INFINITE_LENGTH`] when
    /// `v` is provably unreachable from every source.
    #[inline]
    pub fn lb(&self, v: NodeId) -> Length {
        match self {
            SourceLb::Zero => 0,
            SourceLb::Single(idx, s) => idx.lower_bound(*s, v),
            SourceLb::Multi { index, max_dist } => {
                let mut lb: Length = 0;
                for (l, &ms) in max_dist.iter().enumerate() {
                    if ms == INFINITE_LENGTH {
                        continue;
                    }
                    let dv = index.landmark_distance(l, v);
                    if dv == INFINITE_LENGTH {
                        // Every source is reachable from this landmark, so
                        // if v were reachable from some source the landmark
                        // would reach v through it.
                        return INFINITE_LENGTH;
                    }
                    lb = lb.max(dv.saturating_sub(ms));
                }
                lb
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::{Graph, GraphBuilder};
    use kpj_landmark::SelectionStrategy;
    use kpj_sp::DenseDijkstra;

    fn path_graph(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize);
        for i in 0..n - 1 {
            b.add_bidirectional(i, i + 1, (i + 1) % 5 + 1).unwrap();
        }
        b.build()
    }

    #[test]
    fn zero_oracles_return_zero() {
        assert_eq!(TargetsLb::Zero.lb(3), 0);
        let s = SourceLb::new(None, &[1, 2]);
        assert_eq!(s.lb(3), 0);
    }

    #[test]
    fn single_source_lb_is_valid() {
        let g = path_graph(10);
        let idx = LandmarkIndex::build(&g, 3, SelectionStrategy::Farthest, 1);
        let s = 2u32;
        let oracle = SourceLb::new(Some(&idx), &[s]);
        let d = DenseDijkstra::from_source(&g, s);
        for v in g.nodes() {
            assert!(oracle.lb(v) <= d.dist(v), "lb({s},{v}) too large");
        }
    }

    #[test]
    fn multi_source_lb_is_valid_and_sometimes_positive() {
        let g = path_graph(12);
        let idx = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 2);
        let sources = [0u32, 1];
        let oracle = SourceLb::new(Some(&idx), &sources);
        let best: Vec<_> = {
            let d0 = DenseDijkstra::from_source(&g, 0);
            let d1 = DenseDijkstra::from_source(&g, 1);
            g.nodes().map(|v| d0.dist(v).min(d1.dist(v))).collect()
        };
        let mut any_positive = false;
        for v in g.nodes() {
            let lb = oracle.lb(v);
            assert!(
                lb <= best[v as usize],
                "lb(VS,{v}) = {lb} exceeds true {}",
                best[v as usize]
            );
            any_positive |= lb > 0;
        }
        assert!(
            any_positive,
            "bound should not be trivially zero everywhere"
        );
    }

    #[test]
    fn multi_source_detects_unreachable() {
        // Two components: sources in one, v in the other.
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(2, 3, 1).unwrap();
        let g = b.build();
        let idx = LandmarkIndex::build(&g, 2, SelectionStrategy::Farthest, 3);
        let oracle = SourceLb::new(Some(&idx), &[0, 1]);
        assert_eq!(oracle.lb(2), INFINITE_LENGTH);
    }
}
