//! The partial shortest-path tree `SPT_P` (§5.2, Alg. 6).
//!
//! `PartialSPT` is the A\* search computing the query's *initial* shortest
//! path from the source side to `V_T`, run on the reverse graph from all of
//! `V_T` (multi-source, 0-initial) with the source-side landmark bound
//! `lb(s, w)` as heuristic — and instrumented to *keep* every settled node.
//! For settled `v` the label is the exact `δ(v, V_T)` (Prop. 5.1), giving a
//! tighter `lb(v, V_T)` than Eq. (2) for the rest of the query; for other
//! nodes Eq. (2) remains the fallback.
//!
//! The store is owned by the engine and reset per query in `O(1)`
//! (epoch-stamped arrays), so — as the paper stresses — `SPT_P` really is a
//! by-product of work the query does anyway.
//!
//! **Parallel rounds.** Once built, `SPT_P` is immutable for the rest of
//! the query, so fanned-out candidate searches (`par_threads >= 2`) share
//! it by `&`-reference across threads — the `Sync` bound on the oracle
//! closures in `paradigms.rs` is exactly this read-only sharing contract.

use kpj_graph::scratch::{TimestampedMap, TimestampedSet};
use kpj_graph::{Graph, Length, NodeId, PathId, PathStore, INFINITE_LENGTH};
use kpj_heap::IndexedMinHeap;
use kpj_sp::NO_PARENT;

use crate::bounds::SourceLb;
use crate::pseudo_tree::{PseudoTree, ROOT, VIRTUAL_NODE};
use crate::search_core::FoundPath;
use crate::stats::QueryStats;

/// Engine-owned `SPT_P` scratch (see module docs).
#[derive(Debug)]
pub(crate) struct SptpStore {
    heap: IndexedMinHeap<Length>,
    /// Exact `δ(v, V_T)` for settled nodes.
    dist: TimestampedMap<Length>,
    /// Next hop of the shortest `v → V_T` path (tree parent).
    parent: TimestampedMap<NodeId>,
    settled: TimestampedSet,
    settled_count: usize,
}

impl SptpStore {
    pub(crate) fn new(n: usize) -> Self {
        SptpStore {
            heap: IndexedMinHeap::new(n),
            dist: TimestampedMap::new(n, INFINITE_LENGTH),
            parent: TimestampedMap::new(n, NO_PARENT),
            settled: TimestampedSet::new(n),
            settled_count: 0,
        }
    }

    /// Alg. 6: run the initial-path A\* and retain the partial SPT.
    ///
    /// `source_set` marks the goal side (the query sources); `tree` must be
    /// the freshly created forward pseudo-tree (its root tells us whether
    /// the source is real or a GKPJ virtual node). Returns the initial
    /// shortest path as a [`FoundPath`] anchored at the tree root, or
    /// `None` when `V_T` is unreachable.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        &mut self,
        g: &Graph,
        targets: &[NodeId],
        source_set: &TimestampedSet,
        source_lb: &SourceLb<'_>,
        path_store: &mut PathStore,
        tree: &PseudoTree,
        stats: &mut QueryStats,
    ) -> Option<FoundPath> {
        self.heap.clear();
        self.dist.reset();
        self.parent.reset();
        self.settled.clear();
        self.settled_count = 0;

        for &t in targets {
            let h = source_lb.lb(t);
            if h == INFINITE_LENGTH {
                continue;
            }
            if self.dist.get(t as usize) > 0 {
                self.dist.set(t as usize, 0);
                self.heap.push_or_decrease(t as usize, h);
            }
        }

        let mut goal: Option<NodeId> = None;
        while let Some((u, _)) = self.heap.pop() {
            self.settled.insert(u);
            self.settled_count += 1;
            let du = self.dist.get(u);
            if source_set.contains(u) {
                goal = Some(u as NodeId);
                break;
            }
            for e in g.in_edges(u as NodeId) {
                let w = e.to as usize;
                if self.settled.contains(w) {
                    continue;
                }
                let nd = du.saturating_add(e.weight as Length);
                if nd < self.dist.get(w) {
                    let h = source_lb.lb(e.to);
                    if h == INFINITE_LENGTH {
                        continue;
                    }
                    self.dist.set(w, nd);
                    self.parent.set(w, u as NodeId);
                    self.heap.push_or_decrease(w, nd.saturating_add(h));
                }
            }
        }
        stats.nodes_settled += self.settled_count;
        stats.spt_nodes = stats.spt_nodes.max(self.settled_count);

        let s = goal?;
        // Forward path s → … → d along SPT parents, pushed into the arena
        // with cumulative lengths measured from the source side. The walk
        // order (s first, then its SPT parents towards `V_T`) is already
        // the tree orientation, so no staging buffer is needed.
        let total = self.dist.get(s as usize);
        let mut id: Option<PathId> = None;
        let mut count = 0u32;
        let mut cur = s;
        loop {
            id = Some(path_store.push(id, cur, total - self.dist.get(cur as usize)));
            count += 1;
            let p = self.parent.get(cur as usize);
            if p == NO_PARENT {
                break;
            }
            cur = p;
        }
        let skip = u32::from(tree.node(ROOT) != VIRTUAL_NODE);
        Some(FoundPath {
            tail: id.expect("chain has at least one node"),
            length: total,
            vertex: ROOT,
            suffix_len: count - skip,
        })
    }

    /// Exact `δ(v, V_T)` if `v` is in the partial SPT.
    #[inline]
    pub(crate) fn exact_dist(&self, v: NodeId) -> Option<Length> {
        if self.settled.contains(v as usize) {
            Some(self.dist.get(v as usize))
        } else {
            None
        }
    }

    /// Number of nodes in the partial SPT.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn len(&self) -> usize {
        self.settled_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;

    /// 0—1—2—3 line (unit weights) plus a far branch 1—4—5.
    fn fixture() -> Graph {
        let mut b = GraphBuilder::new(6);
        for i in 0..3u32 {
            b.add_bidirectional(i, i + 1, 1).unwrap();
        }
        b.add_bidirectional(1, 4, 10).unwrap();
        b.add_bidirectional(4, 5, 10).unwrap();
        b.build()
    }

    fn source_set(n: usize, s: NodeId) -> TimestampedSet {
        let mut set = TimestampedSet::new(n);
        set.insert(s as usize);
        set
    }

    /// Full chain nodes (source-first) of a build() result.
    fn chain_nodes(ps: &PathStore, f: &FoundPath) -> Vec<NodeId> {
        ps.materialize(f.tail).nodes
    }

    /// The suffix pairs `(node, cumulative length)` read from the arena.
    fn suffix(ps: &PathStore, f: &FoundPath) -> Vec<(NodeId, Length)> {
        let mut out = Vec::new();
        let mut cur = Some(f.tail);
        for _ in 0..f.suffix_len {
            let id = cur.unwrap();
            out.push((ps.node(id), ps.length(id)));
            cur = ps.parent(id);
        }
        out.reverse();
        out
    }

    #[test]
    fn builds_initial_path_and_exact_distances() {
        let g = fixture();
        let mut store = SptpStore::new(6);
        let mut ps = PathStore::new();
        let tree = PseudoTree::new(0);
        let ss = source_set(6, 0);
        let mut stats = QueryStats::default();
        let f = store
            .build(&g, &[3], &ss, &SourceLb::Zero, &mut ps, &tree, &mut stats)
            .expect("path exists");
        assert_eq!(chain_nodes(&ps, &f), vec![0, 1, 2, 3]);
        assert_eq!(f.length, 3);
        assert_eq!(suffix(&ps, &f), vec![(1, 1), (2, 2), (3, 3)]);
        // Settled nodes carry exact δ(v, {3}).
        assert_eq!(store.exact_dist(3), Some(0));
        assert_eq!(store.exact_dist(2), Some(1));
        assert_eq!(store.exact_dist(0), Some(3));
        // The far branch was never settled (Dijkstra stops at the source).
        assert_eq!(store.exact_dist(5), None);
        assert!(store.len() >= 4);
        assert_eq!(stats.spt_nodes, store.len());
    }

    #[test]
    fn unreachable_targets_yield_none() {
        let mut b = GraphBuilder::new(3);
        b.add_bidirectional(0, 1, 1).unwrap();
        let g = b.build();
        let mut store = SptpStore::new(3);
        let mut ps = PathStore::new();
        let tree = PseudoTree::new(0);
        let ss = source_set(3, 0);
        let mut stats = QueryStats::default();
        assert!(store
            .build(&g, &[2], &ss, &SourceLb::Zero, &mut ps, &tree, &mut stats)
            .is_none());
    }

    #[test]
    fn multi_target_picks_nearest() {
        let g = fixture();
        let mut store = SptpStore::new(6);
        let mut ps = PathStore::new();
        let tree = PseudoTree::new(0);
        let ss = source_set(6, 0);
        let mut stats = QueryStats::default();
        let f = store
            .build(
                &g,
                &[3, 1],
                &ss,
                &SourceLb::Zero,
                &mut ps,
                &tree,
                &mut stats,
            )
            .expect("path exists");
        assert_eq!(chain_nodes(&ps, &f), vec![0, 1]);
        assert_eq!(f.length, 1);
    }

    #[test]
    fn virtual_root_includes_seed_in_suffix() {
        let g = fixture();
        let mut store = SptpStore::new(6);
        let mut ps = PathStore::new();
        let tree = PseudoTree::new(VIRTUAL_NODE);
        let mut ss = TimestampedSet::new(6);
        ss.insert(2);
        ss.insert(5);
        let mut stats = QueryStats::default();
        let f = store
            .build(&g, &[3], &ss, &SourceLb::Zero, &mut ps, &tree, &mut stats)
            .expect("path exists");
        assert_eq!(chain_nodes(&ps, &f), vec![2, 3]);
        assert_eq!(suffix(&ps, &f), vec![(2, 0), (3, 1)]);
    }

    #[test]
    fn source_equal_to_target_gives_trivial_path() {
        let g = fixture();
        let mut store = SptpStore::new(6);
        let mut ps = PathStore::new();
        let tree = PseudoTree::new(2);
        let ss = source_set(6, 2);
        let mut stats = QueryStats::default();
        let f = store
            .build(&g, &[2], &ss, &SourceLb::Zero, &mut ps, &tree, &mut stats)
            .expect("trivial path");
        assert_eq!(chain_nodes(&ps, &f), vec![2]);
        assert_eq!(f.length, 0);
        assert_eq!(f.suffix_len, 0);
    }
}
