//! The pseudo-tree (§3) — the trie of chosen paths — doubling as the
//! subspace store of the best-first paradigm (§4.1).
//!
//! Each tree *vertex* `v` (the paper distinguishes tree vertices from graph
//! nodes, since a graph node can appear many times) identifies the subspace
//! `⟨P_{root,v}, X_v⟩` of Def. 4.1:
//!
//! * `P_{root,v}` — the node path from the tree root to `v` (the subspace
//!   prefix). The root may be a *virtual* node (the virtual source of GKPJ
//!   §6, or the virtual target `t` when the search runs on the reverse
//!   graph in the `SPT_I` approach §5.3); virtual roots contribute no graph
//!   node and no length.
//! * `X_v` — the excluded continuation edges at `v`, stored as the set of
//!   opposite endpoints (heads in forward mode, tails in reverse mode).
//!   These are exactly the tree edges out of `v`, plus — via the
//!   [`emitted`](PseudoTree::emitted) flag — the "edge to the virtual
//!   terminal" that marks the prefix itself as already output.
//!
//! [`PseudoTree::divide`] implements the subspace division of §4.1: after
//! the shortest path of the subspace at `u` is chosen, the subspace splits
//! into the singleton (dropped), the regrown subspace at `u`, and one
//! subspace per suffix node; `divide` performs the tree surgery and returns
//! every vertex whose subspace must be (re)enqueued.

use kpj_graph::{Length, NodeId};

/// Sentinel graph node for virtual roots (never a valid id: the builder
/// caps real graphs below `u32::MAX` nodes).
pub const VIRTUAL_NODE: NodeId = NodeId::MAX;

/// Identifier of a pseudo-tree vertex.
pub type VertexId = u32;

/// The root vertex id.
pub const ROOT: VertexId = 0;

/// See the module docs.
#[derive(Debug, Clone)]
pub struct PseudoTree {
    node: Vec<NodeId>,
    parent: Vec<VertexId>,
    /// Length of the path from the root to this vertex.
    prefix_len: Vec<Length>,
    /// Depth in *graph nodes* (virtual root has depth 0, its children 1…).
    depth: Vec<u32>,
    /// `X_v`: opposite endpoints of excluded continuation edges.
    excluded: Vec<Vec<NodeId>>,
    /// True once the exact root→v path has been output as a result, i.e.
    /// the "virtual terminal edge" at `v` is excluded.
    emitted: Vec<bool>,
}

impl PseudoTree {
    /// A tree containing only the root vertex for `root_node`
    /// (pass [`VIRTUAL_NODE`] for a virtual root).
    pub fn new(root_node: NodeId) -> Self {
        let depth0 = u32::from(root_node != VIRTUAL_NODE);
        PseudoTree {
            node: vec![root_node],
            parent: vec![VertexId::MAX],
            prefix_len: vec![0],
            depth: vec![depth0],
            excluded: vec![Vec::new()],
            emitted: vec![false],
        }
    }

    /// Number of vertices (== number of subspaces ever created).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.node.len()
    }

    /// True if only the root exists.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.node.len() == 1
    }

    /// Graph node of vertex `v` ([`VIRTUAL_NODE`] for a virtual root).
    #[inline]
    pub fn node(&self, v: VertexId) -> NodeId {
        self.node[v as usize]
    }

    /// Length of the root→`v` path.
    #[inline]
    pub fn prefix_len(&self, v: VertexId) -> Length {
        self.prefix_len[v as usize]
    }

    /// Number of *graph* nodes on the root→`v` path.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v as usize]
    }

    /// The excluded continuation endpoints `X_v`.
    #[inline]
    pub fn excluded(&self, v: VertexId) -> &[NodeId] {
        &self.excluded[v as usize]
    }

    /// Whether the exact root→`v` path has already been output.
    #[inline]
    pub fn emitted(&self, v: VertexId) -> bool {
        self.emitted[v as usize]
    }

    /// The graph nodes of the root→`v` path, root side first, excluding a
    /// virtual root.
    pub fn path_nodes(&self, v: VertexId) -> Vec<NodeId> {
        let mut nodes = Vec::with_capacity(self.depth[v as usize] as usize);
        let mut cur = v;
        loop {
            let n = self.node[cur as usize];
            if n != VIRTUAL_NODE {
                nodes.push(n);
            }
            if cur == ROOT {
                break;
            }
            cur = self.parent[cur as usize];
        }
        nodes.reverse();
        nodes
    }

    /// Divide the subspace at `u` by its chosen shortest path (§4.1).
    ///
    /// `suffix` holds the path's nodes *after* `u` (empty when the chosen
    /// path is exactly the prefix of `u`), each with the cumulative length
    /// of the path up to and including that node. The division:
    ///
    /// 1. excludes the first suffix node at `u` (the subspace
    ///    `⟨P_{s,u}, X_u ∪ {(u,w)}⟩`),
    /// 2. grows a chain of new vertices for the suffix, each excluding its
    ///    own continuation,
    /// 3. marks the terminal vertex `emitted` (the singleton subspace
    ///    `S_1 = {P}` is thereby removed from the search space).
    ///
    /// Returns the vertices whose subspaces must now be (re)enqueued: `u`
    /// itself followed by every new vertex — the paper's "one subspace per
    /// node of the subpath from `u` to the destination".
    pub fn divide(&mut self, u: VertexId, suffix: &[(NodeId, Length)]) -> Vec<VertexId> {
        let mut affected = Vec::with_capacity(suffix.len() + 1);
        affected.push(u);
        if suffix.is_empty() {
            // The chosen path is the prefix itself: exclude only the
            // virtual terminal edge.
            debug_assert!(
                !self.emitted[u as usize],
                "path emitted twice from vertex {u}"
            );
            self.emitted[u as usize] = true;
            return affected;
        }
        self.excluded[u as usize].push(suffix[0].0);
        let mut parent = u;
        for &(node, len) in suffix {
            let id = self.node.len() as VertexId;
            self.node.push(node);
            self.parent.push(parent);
            self.prefix_len.push(len);
            self.depth.push(self.depth[parent as usize] + 1);
            self.excluded.push(Vec::new());
            self.emitted.push(false);
            affected.push(id);
            parent = id;
        }
        // Terminal vertex: its prefix is exactly the chosen path.
        let last = *affected.last().expect("suffix non-empty");
        self.emitted[last as usize] = true;
        // Exclude each internal suffix vertex's continuation.
        for w in affected[1..].windows(2) {
            let (v, next) = (w[0], w[1]);
            let next_node = self.node[next as usize];
            self.excluded[v as usize].push(next_node);
        }
        affected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_root() {
        let t = PseudoTree::new(5);
        assert_eq!(t.node(ROOT), 5);
        assert_eq!(t.prefix_len(ROOT), 0);
        assert_eq!(t.depth(ROOT), 1);
        assert_eq!(t.path_nodes(ROOT), vec![5]);
        assert!(!t.emitted(ROOT));
        assert!(t.is_empty());
    }

    #[test]
    fn virtual_root_contributes_no_node() {
        let t = PseudoTree::new(VIRTUAL_NODE);
        assert_eq!(t.depth(ROOT), 0);
        assert!(t.path_nodes(ROOT).is_empty());
    }

    #[test]
    fn divide_builds_chain_and_exclusions() {
        // Root s=0; chosen path 0 →(2) 1 →(5) 2.
        let mut t = PseudoTree::new(0);
        let affected = t.divide(ROOT, &[(1, 2), (2, 5)]);
        assert_eq!(affected.len(), 3);
        assert_eq!(affected[0], ROOT);
        let v1 = affected[1];
        let v2 = affected[2];
        // Root now excludes the taken first hop.
        assert_eq!(t.excluded(ROOT), &[1]);
        // v1 excludes its continuation to node 2.
        assert_eq!(t.node(v1), 1);
        assert_eq!(t.excluded(v1), &[2]);
        assert_eq!(t.prefix_len(v1), 2);
        assert_eq!(t.depth(v1), 2);
        // Terminal vertex is emitted with no exclusions.
        assert_eq!(t.node(v2), 2);
        assert!(t.excluded(v2).is_empty());
        assert!(t.emitted(v2));
        assert_eq!(t.prefix_len(v2), 5);
        assert_eq!(t.path_nodes(v2), vec![0, 1, 2]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn divide_by_trivial_path_sets_emitted() {
        let mut t = PseudoTree::new(3);
        let affected = t.divide(ROOT, &[]);
        assert_eq!(affected, vec![ROOT]);
        assert!(t.emitted(ROOT));
        assert!(t.excluded(ROOT).is_empty());
    }

    #[test]
    fn second_division_at_same_vertex_grows_exclusions() {
        let mut t = PseudoTree::new(0);
        t.divide(ROOT, &[(1, 1)]);
        t.divide(ROOT, &[(2, 4), (3, 6)]);
        assert_eq!(t.excluded(ROOT), &[1, 2]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn division_from_interior_vertex_inherits_prefix() {
        let mut t = PseudoTree::new(0);
        let a = t.divide(ROOT, &[(1, 1), (2, 3)]);
        let v1 = a[1];
        // Divide v1's subspace by path prefix(v1) + (4, len 8).
        let b = t.divide(v1, &[(4, 8)]);
        let v4 = b[1];
        assert_eq!(t.path_nodes(v4), vec![0, 1, 4]);
        assert_eq!(t.prefix_len(v4), 8);
        assert_eq!(t.depth(v4), 3);
        assert_eq!(t.excluded(v1), &[2, 4]);
        assert!(t.emitted(v4));
    }

    #[test]
    fn repeated_graph_node_in_tree_is_fine() {
        // The same graph node may appear at several tree vertices.
        let mut t = PseudoTree::new(0);
        let a = t.divide(ROOT, &[(1, 1), (9, 2)]);
        let b = t.divide(ROOT, &[(2, 1), (9, 2)]);
        assert_eq!(t.node(a[2]), 9);
        assert_eq!(t.node(b[2]), 9);
        assert_ne!(a[2], b[2]);
    }
}
