//! The pseudo-tree (§3) — the trie of chosen paths — doubling as the
//! subspace store of the best-first paradigm (§4.1).
//!
//! Each tree *vertex* `v` (the paper distinguishes tree vertices from graph
//! nodes, since a graph node can appear many times) identifies the subspace
//! `⟨P_{root,v}, X_v⟩` of Def. 4.1:
//!
//! * `P_{root,v}` — the node path from the tree root to `v` (the subspace
//!   prefix). The root may be a *virtual* node (the virtual source of GKPJ
//!   §6, or the virtual target `t` when the search runs on the reverse
//!   graph in the `SPT_I` approach §5.3); virtual roots contribute no graph
//!   node and no length.
//! * `X_v` — the excluded continuation edges at `v`, stored as the set of
//!   opposite endpoints (heads in forward mode, tails in reverse mode).
//!   These are exactly the tree edges out of `v`, plus — via the
//!   [`emitted`](PseudoTree::emitted) flag — the "edge to the virtual
//!   terminal" that marks the prefix itself as already output.
//!
//! Storage: every per-vertex collection lives in a flat column; the
//! exclusion sets share one pooled buffer threaded as intrusive singly
//! linked lists (`excl_head[v]` → pool chain). Inserts deduplicate, so a
//! high-degree deviation node divided many times keeps `|X_v|` equal to
//! the number of *distinct* endpoints instead of growing per division.
//! [`PseudoTree::reset`] truncates everything while keeping capacity, so
//! an engine-owned tree performs no allocations at steady state.
//!
//! [`PseudoTree::divide`] implements the subspace division of §4.1: after
//! the shortest path of the subspace at `u` is chosen, the subspace splits
//! into the singleton (dropped), the regrown subspace at `u`, and one
//! subspace per suffix node; `divide` performs the tree surgery and pushes
//! every vertex whose subspace must be (re)enqueued into the caller's
//! buffer.

use kpj_graph::{Length, NodeId, PathId, PathStore};

/// Sentinel graph node for virtual roots (never a valid id: the builder
/// caps real graphs below `u32::MAX` nodes).
pub const VIRTUAL_NODE: NodeId = NodeId::MAX;

/// Identifier of a pseudo-tree vertex.
pub type VertexId = u32;

/// The root vertex id.
pub const ROOT: VertexId = 0;

/// Pool-chain terminator.
const NO_ENTRY: u32 = u32::MAX;

/// See the module docs.
#[derive(Debug, Clone)]
pub struct PseudoTree {
    node: Vec<NodeId>,
    parent: Vec<VertexId>,
    /// Length of the path from the root to this vertex.
    prefix_len: Vec<Length>,
    /// Depth in *graph nodes* (virtual root has depth 0, its children 1…).
    depth: Vec<u32>,
    /// Head of `X_v`'s chain in `excl_pool` (`NO_ENTRY` when empty).
    excl_head: Vec<u32>,
    /// Pooled exclusion entries: `(endpoint, next index in chain)`.
    excl_pool: Vec<(NodeId, u32)>,
    /// True once the exact root→v path has been output as a result, i.e.
    /// the "virtual terminal edge" at `v` is excluded.
    emitted: Vec<bool>,
    /// Reversal scratch for [`divide_from_store`](PseudoTree::divide_from_store).
    suffix_scratch: Vec<(NodeId, Length)>,
}

impl Default for PseudoTree {
    /// A rootless shell — only useful as a `mem::take` placeholder; call
    /// [`reset`](PseudoTree::reset) before any other method.
    fn default() -> Self {
        PseudoTree {
            node: Vec::new(),
            parent: Vec::new(),
            prefix_len: Vec::new(),
            depth: Vec::new(),
            excl_head: Vec::new(),
            excl_pool: Vec::new(),
            emitted: Vec::new(),
            suffix_scratch: Vec::new(),
        }
    }
}

impl PseudoTree {
    /// A tree containing only the root vertex for `root_node`
    /// (pass [`VIRTUAL_NODE`] for a virtual root).
    pub fn new(root_node: NodeId) -> Self {
        let mut t = PseudoTree::default();
        t.reset(root_node);
        t
    }

    /// Shrink back to a single root vertex for `root_node`, keeping every
    /// allocation — the per-query reset of an engine-owned tree.
    pub fn reset(&mut self, root_node: NodeId) {
        self.node.clear();
        self.parent.clear();
        self.prefix_len.clear();
        self.depth.clear();
        self.excl_head.clear();
        self.excl_pool.clear();
        self.emitted.clear();
        self.node.push(root_node);
        self.parent.push(VertexId::MAX);
        self.prefix_len.push(0);
        self.depth.push(u32::from(root_node != VIRTUAL_NODE));
        self.excl_head.push(NO_ENTRY);
        self.emitted.push(false);
    }

    /// Number of vertices (== number of subspaces ever created).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.node.len()
    }

    /// True if only the root exists.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.node.len() == 1
    }

    /// Graph node of vertex `v` ([`VIRTUAL_NODE`] for a virtual root).
    #[inline]
    pub fn node(&self, v: VertexId) -> NodeId {
        self.node[v as usize]
    }

    /// Parent vertex of `v` (`VertexId::MAX` for the root).
    #[inline]
    pub fn parent(&self, v: VertexId) -> VertexId {
        self.parent[v as usize]
    }

    /// Length of the root→`v` path.
    #[inline]
    pub fn prefix_len(&self, v: VertexId) -> Length {
        self.prefix_len[v as usize]
    }

    /// Number of *graph* nodes on the root→`v` path.
    #[cfg_attr(not(test), allow(dead_code))]
    #[inline]
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v as usize]
    }

    /// True when `node` is an excluded continuation endpoint in `X_v`.
    #[inline]
    pub fn is_excluded(&self, v: VertexId, node: NodeId) -> bool {
        let mut cur = self.excl_head[v as usize];
        while cur != NO_ENTRY {
            let (n, next) = self.excl_pool[cur as usize];
            if n == node {
                return true;
            }
            cur = next;
        }
        false
    }

    /// Iterate the excluded continuation endpoints `X_v` (arbitrary order).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn excluded_iter(&self, v: VertexId) -> ExcludedIter<'_> {
        ExcludedIter {
            tree: self,
            cur: self.excl_head[v as usize],
        }
    }

    /// Insert `node` into `X_v` unless already present.
    fn exclude(&mut self, v: VertexId, node: NodeId) {
        if self.is_excluded(v, node) {
            return;
        }
        let head = self.excl_head[v as usize];
        self.excl_pool.push((node, head));
        self.excl_head[v as usize] = (self.excl_pool.len() - 1) as u32;
    }

    /// Whether the exact root→`v` path has already been output.
    #[inline]
    pub fn emitted(&self, v: VertexId) -> bool {
        self.emitted[v as usize]
    }

    /// The graph nodes of the root→`v` path, root side first, excluding a
    /// virtual root. Allocating — tests and cold paths only; hot paths
    /// walk [`parent`](PseudoTree::parent) / [`prefix_nodes`] instead.
    ///
    /// [`prefix_nodes`]: PseudoTree::prefix_nodes
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn path_nodes(&self, v: VertexId) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.prefix_nodes(v).collect();
        nodes.reverse();
        nodes
    }

    /// The graph nodes of the root→`v` path in *v-side-first* order,
    /// excluding a virtual root. Allocation-free.
    pub fn prefix_nodes(&self, v: VertexId) -> impl Iterator<Item = NodeId> + '_ {
        let mut cur = v;
        let mut done = false;
        std::iter::from_fn(move || loop {
            if done {
                return None;
            }
            let n = self.node[cur as usize];
            if cur == ROOT {
                done = true;
            } else {
                cur = self.parent[cur as usize];
            }
            if n != VIRTUAL_NODE {
                return Some(n);
            }
            if done {
                return None;
            }
        })
    }

    /// Divide the subspace at `u` by its chosen shortest path (§4.1).
    ///
    /// `suffix` holds the path's nodes *after* `u` (empty when the chosen
    /// path is exactly the prefix of `u`), each with the cumulative length
    /// of the path up to and including that node. The division:
    ///
    /// 1. excludes the first suffix node at `u` (the subspace
    ///    `⟨P_{s,u}, X_u ∪ {(u,w)}⟩`),
    /// 2. grows a chain of new vertices for the suffix, each excluding its
    ///    own continuation,
    /// 3. marks the terminal vertex `emitted` (the singleton subspace
    ///    `S_1 = {P}` is thereby removed from the search space).
    ///
    /// Pushes the vertices whose subspaces must now be (re)enqueued into
    /// `affected`: `u` itself followed by every new vertex — the paper's
    /// "one subspace per node of the subpath from `u` to the destination".
    pub fn divide(
        &mut self,
        u: VertexId,
        suffix: &[(NodeId, Length)],
        affected: &mut Vec<VertexId>,
    ) {
        let base = affected.len();
        affected.push(u);
        if suffix.is_empty() {
            // The chosen path is the prefix itself: exclude only the
            // virtual terminal edge.
            debug_assert!(
                !self.emitted[u as usize],
                "path emitted twice from vertex {u}"
            );
            self.emitted[u as usize] = true;
            return;
        }
        self.exclude(u, suffix[0].0);
        let mut parent = u;
        for &(node, len) in suffix {
            let id = self.node.len() as VertexId;
            self.node.push(node);
            self.parent.push(parent);
            self.prefix_len.push(len);
            self.depth.push(self.depth[parent as usize] + 1);
            self.excl_head.push(NO_ENTRY);
            self.emitted.push(false);
            affected.push(id);
            parent = id;
        }
        // Terminal vertex: its prefix is exactly the chosen path.
        let last = *affected.last().expect("suffix non-empty");
        self.emitted[last as usize] = true;
        // Exclude each internal suffix vertex's continuation.
        for i in base + 1..affected.len() - 1 {
            let (v, next) = (affected[i], affected[i + 1]);
            let next_node = self.node[next as usize];
            self.exclude(v, next_node);
        }
    }

    /// [`divide`](PseudoTree::divide) with the suffix read from a
    /// [`PathStore`] chain: the last `suffix_len` entries walking back
    /// from `tail` are the suffix in reverse order.
    pub fn divide_from_store(
        &mut self,
        u: VertexId,
        store: &PathStore,
        tail: PathId,
        suffix_len: u32,
        affected: &mut Vec<VertexId>,
    ) {
        let mut scratch = std::mem::take(&mut self.suffix_scratch);
        scratch.clear();
        let mut cur = Some(tail);
        for _ in 0..suffix_len {
            let id = cur.expect("suffix_len exceeds chain length");
            scratch.push((store.node(id), store.length(id)));
            cur = store.parent(id);
        }
        scratch.reverse();
        self.divide(u, &scratch, affected);
        self.suffix_scratch = scratch;
    }
}

/// Iterator over one vertex's exclusion set.
#[cfg_attr(not(test), allow(dead_code))]
#[derive(Debug, Clone)]
pub struct ExcludedIter<'a> {
    tree: &'a PseudoTree,
    cur: u32,
}

impl Iterator for ExcludedIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.cur == NO_ENTRY {
            return None;
        }
        let (n, next) = self.tree.excl_pool[self.cur as usize];
        self.cur = next;
        Some(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Collected, sorted `X_v` (pool order is reverse insertion).
    fn excl(t: &PseudoTree, v: VertexId) -> Vec<NodeId> {
        let mut x: Vec<NodeId> = t.excluded_iter(v).collect();
        x.sort_unstable();
        x
    }

    fn divide(t: &mut PseudoTree, u: VertexId, suffix: &[(NodeId, Length)]) -> Vec<VertexId> {
        let mut affected = Vec::new();
        t.divide(u, suffix, &mut affected);
        affected
    }

    #[test]
    fn real_root() {
        let t = PseudoTree::new(5);
        assert_eq!(t.node(ROOT), 5);
        assert_eq!(t.prefix_len(ROOT), 0);
        assert_eq!(t.depth(ROOT), 1);
        assert_eq!(t.path_nodes(ROOT), vec![5]);
        assert!(!t.emitted(ROOT));
        assert!(t.is_empty());
    }

    #[test]
    fn virtual_root_contributes_no_node() {
        let t = PseudoTree::new(VIRTUAL_NODE);
        assert_eq!(t.depth(ROOT), 0);
        assert!(t.path_nodes(ROOT).is_empty());
        assert_eq!(t.prefix_nodes(ROOT).count(), 0);
    }

    #[test]
    fn divide_builds_chain_and_exclusions() {
        // Root s=0; chosen path 0 →(2) 1 →(5) 2.
        let mut t = PseudoTree::new(0);
        let affected = divide(&mut t, ROOT, &[(1, 2), (2, 5)]);
        assert_eq!(affected.len(), 3);
        assert_eq!(affected[0], ROOT);
        let v1 = affected[1];
        let v2 = affected[2];
        // Root now excludes the taken first hop.
        assert_eq!(excl(&t, ROOT), vec![1]);
        assert!(t.is_excluded(ROOT, 1));
        assert!(!t.is_excluded(ROOT, 2));
        // v1 excludes its continuation to node 2.
        assert_eq!(t.node(v1), 1);
        assert_eq!(excl(&t, v1), vec![2]);
        assert_eq!(t.prefix_len(v1), 2);
        assert_eq!(t.depth(v1), 2);
        // Terminal vertex is emitted with no exclusions.
        assert_eq!(t.node(v2), 2);
        assert_eq!(excl(&t, v2), Vec::<NodeId>::new());
        assert!(t.emitted(v2));
        assert_eq!(t.prefix_len(v2), 5);
        assert_eq!(t.path_nodes(v2), vec![0, 1, 2]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn divide_by_trivial_path_sets_emitted() {
        let mut t = PseudoTree::new(3);
        let affected = divide(&mut t, ROOT, &[]);
        assert_eq!(affected, vec![ROOT]);
        assert!(t.emitted(ROOT));
        assert_eq!(excl(&t, ROOT), Vec::<NodeId>::new());
    }

    #[test]
    fn second_division_at_same_vertex_grows_exclusions() {
        let mut t = PseudoTree::new(0);
        divide(&mut t, ROOT, &[(1, 1)]);
        divide(&mut t, ROOT, &[(2, 4), (3, 6)]);
        assert_eq!(excl(&t, ROOT), vec![1, 2]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn division_from_interior_vertex_inherits_prefix() {
        let mut t = PseudoTree::new(0);
        let a = divide(&mut t, ROOT, &[(1, 1), (2, 3)]);
        let v1 = a[1];
        // Divide v1's subspace by path prefix(v1) + (4, len 8).
        let b = divide(&mut t, v1, &[(4, 8)]);
        let v4 = b[1];
        assert_eq!(t.path_nodes(v4), vec![0, 1, 4]);
        assert_eq!(t.prefix_len(v4), 8);
        assert_eq!(t.depth(v4), 3);
        assert_eq!(excl(&t, v1), vec![2, 4]);
        assert!(t.emitted(v4));
    }

    #[test]
    fn repeated_graph_node_in_tree_is_fine() {
        // The same graph node may appear at several tree vertices.
        let mut t = PseudoTree::new(0);
        let a = divide(&mut t, ROOT, &[(1, 1), (9, 2)]);
        let b = divide(&mut t, ROOT, &[(2, 1), (9, 2)]);
        assert_eq!(t.node(a[2]), 9);
        assert_eq!(t.node(b[2]), 9);
        assert_ne!(a[2], b[2]);
    }

    #[test]
    fn exclusions_dedup_on_insert_at_high_degree_vertex() {
        // A deviation node divided once per incident edge: re-excluding an
        // endpoint that is already in X_u (as happens when a later
        // division chooses a path through a previously excluded-then-
        // regrown continuation) must not grow the pool. |X_u| stays the
        // number of distinct endpoints — the fix for the latent quadratic.
        let mut t = PseudoTree::new(0);
        for round in 0..50 {
            for hub_exit in 1..=20 {
                divide(&mut t, ROOT, &[(hub_exit, round * 20 + hub_exit as u64)]);
            }
        }
        assert_eq!(t.excluded_iter(ROOT).count(), 20, "dedup on insert");
        assert_eq!(
            excl(&t, ROOT),
            (1..=20).collect::<Vec<NodeId>>(),
            "all distinct endpoints present"
        );
    }

    #[test]
    fn reset_restores_fresh_root_keeping_capacity() {
        let mut t = PseudoTree::new(0);
        divide(&mut t, ROOT, &[(1, 1), (2, 3)]);
        divide(&mut t, ROOT, &[(3, 2)]);
        let node_cap = t.node.capacity();
        let pool_cap = t.excl_pool.capacity();
        t.reset(VIRTUAL_NODE);
        assert!(t.is_empty());
        assert_eq!(t.node(ROOT), VIRTUAL_NODE);
        assert_eq!(t.depth(ROOT), 0);
        assert!(!t.emitted(ROOT));
        assert_eq!(t.excluded_iter(ROOT).count(), 0);
        assert_eq!(t.node.capacity(), node_cap);
        assert_eq!(t.excl_pool.capacity(), pool_cap);
    }

    #[test]
    fn divide_from_store_matches_slice_divide() {
        let mut store = PathStore::new();
        let a = store.push(None, 1, 2);
        let b = store.push(Some(a), 2, 5);
        let mut via_store = PseudoTree::new(0);
        let mut affected = Vec::new();
        via_store.divide_from_store(ROOT, &store, b, 2, &mut affected);
        let mut via_slice = PseudoTree::new(0);
        let expect = divide(&mut via_slice, ROOT, &[(1, 2), (2, 5)]);
        assert_eq!(affected, expect);
        assert_eq!(excl(&via_store, ROOT), excl(&via_slice, ROOT));
        assert_eq!(via_store.path_nodes(affected[2]), vec![0, 1, 2]);
        assert_eq!(via_store.prefix_len(affected[2]), 5);
    }
}
