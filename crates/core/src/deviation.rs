//! The deviation-paradigm baselines (§3): `DA` (Alg. 1, Yen's paradigm
//! [28] applied to the virtual-target reduction of [15]) and `DA-SPT`
//! (the state of the art for KSP [14, 15, 24], which builds a full reverse
//! shortest-path tree online and uses it both as an exact A\* potential and
//! for the Pascoal/Gao "concatenate-with-SPT-tail" early termination).
//!
//! Both maintain, for *every* pseudo-tree vertex, its candidate path — the
//! shortest path in the vertex's subspace — eagerly (Lemma 3.1). That is
//! exactly the `O(k·n)` shortest-path computations the best-first paradigm
//! avoids, and the reason these serve as the paper's baselines.
//!
//! Candidates are Copy [`FoundPath`] arena handles; the candidate heap
//! holds handles, not node vectors, so maintaining `O(k·n)` eager
//! candidates costs no per-candidate allocation.

use kpj_graph::scratch::{TimestampedMap, TimestampedSet};
use kpj_graph::{Length, NodeId, PathId, PathStore, INFINITE_LENGTH};
use kpj_heap::IndexedMinHeap;
use kpj_obs::Stage;
use kpj_sp::{DenseDijkstra, Estimate, NO_PARENT};

use crate::par::ParPool;
use crate::pseudo_tree::{PseudoTree, VertexId, ROOT, VIRTUAL_NODE};
use crate::search_core::{
    divide_subspace, emit_found, subspace_search, FoundPath, PathSink, SubspaceCtx,
    SubspaceScratch, SubspaceSearch,
};
use crate::stats::QueryStats;

/// Which deviation baseline to run.
#[derive(Clone, Copy)]
pub(crate) enum DeviationMode<'a> {
    /// `DA` [28, 15]: plain constrained Dijkstra per candidate.
    Plain,
    /// Pascoal's optimization [24]: try the single best one-hop splice
    /// onto the full reverse SPT; if the spliced path is simple it is the
    /// candidate in `O(path)` time, otherwise fall back to a full
    /// constrained (SPT-guided) shortest-path computation.
    Pascoal(&'a DenseDijkstra),
    /// Gao et al.'s improvement [14, 15] (`DA-SPT`, the state of the art):
    /// run the constrained A\* and test the splice at *every* settled
    /// node, stopping at the first simple completion.
    Gao(&'a DenseDijkstra),
}

impl<'a> DeviationMode<'a> {
    fn spt(&self) -> Option<&'a DenseDijkstra> {
        match *self {
            DeviationMode::Plain => None,
            DeviationMode::Pascoal(s) | DeviationMode::Gao(s) => Some(s),
        }
    }
}

/// Scratch for the `DA-SPT` candidate search (engine-owned).
#[derive(Debug)]
pub(crate) struct CandidateScratch {
    heap: IndexedMinHeap<Length>,
    dist: TimestampedMap<Length>,
    parent: TimestampedMap<NodeId>,
    settled: TimestampedSet,
    /// Marks the search chain during tail-simplicity tests.
    chain_mark: TimestampedSet,
}

impl CandidateScratch {
    pub(crate) fn new(n: usize) -> Self {
        CandidateScratch {
            heap: IndexedMinHeap::new(n),
            dist: TimestampedMap::new(n, INFINITE_LENGTH),
            parent: TimestampedMap::new(n, NO_PARENT),
            settled: TimestampedSet::new(n),
            chain_mark: TimestampedSet::new(n),
        }
    }
}

/// Run `DA` (`spt = None`) or `DA-SPT` (`spt = Some(full reverse SPT)`).
///
/// The full reverse SPT for `DA-SPT` is built by the engine (reusing its
/// pooled [`DenseDijkstra`]) — the paper's "full SPT built online", whose
/// construction cost dominates exactly when the k paths are short.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_deviation(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    cand: &mut CandidateScratch,
    store: &mut PathStore,
    tree: &mut PseudoTree,
    mode: DeviationMode<'_>,
    sink: &mut dyn PathSink,
    par: Option<&ParPool>,
    stats: &mut QueryStats,
) {
    let mut c = std::mem::take(&mut scratch.dev_heap);
    c.clear();
    if let Some(f) = candidate(ctx, scratch, cand, store, tree, mode, ROOT, stats) {
        c.push(f.length, f);
    }
    let mut more = true;
    while more {
        if ctx.deadline.expired() {
            break;
        }
        let Some((_, found)) = c.pop() else { break };
        stats.heap_pops += 1;
        let tick = scratch.trace.start();
        divide_subspace(ctx, scratch, store, tree, found, stats);
        more = emit_found(scratch, store, tree, found, false, sink);
        // Alg. 1 line 6: recompute/compute candidates for every vertex of
        // the chosen path from the deviation vertex to the destination.
        // (Even when the sink stops us, the divide above has already
        // happened; skipping the candidate recomputation is safe because
        // the loop exits.)
        if more {
            let affected = std::mem::take(&mut scratch.affected);
            match par {
                // One candidate search per affected vertex is an
                // embarrassingly parallel round: the tree was fully
                // divided above, searches never read the arena, and the
                // merge below re-pushes chains and heap entries in
                // affected order — exactly the sequential schedule.
                Some(pool) if affected.len() >= 2 && pool.workers() >= 2 => {
                    stats.rounds_parallel += 1;
                    stats.candidates_stolen += affected.len();
                    let ftick = scratch.trace.start();
                    let results = pool.fan_out(&affected, |_, &v, ws| {
                        match candidate(
                            ctx,
                            &mut ws.scratch,
                            &mut ws.cand,
                            &mut ws.store,
                            tree,
                            mode,
                            v,
                            &mut ws.stats,
                        ) {
                            Some(f) => SubspaceSearch::Found(f),
                            None => SubspaceSearch::Empty,
                        }
                    });
                    for r in results {
                        if let SubspaceSearch::Found(f) = r.outcome {
                            let f = pool.copy_chain(r.worker, f, store);
                            c.push(f.length, f);
                        }
                    }
                    pool.absorb_worker_stats(stats);
                    scratch.trace.record(Stage::ParFanout, ftick);
                }
                _ => {
                    for &v in &affected {
                        if let Some(f) = candidate(ctx, scratch, cand, store, tree, mode, v, stats)
                        {
                            c.push(f.length, f);
                        }
                    }
                }
            }
            scratch.affected = affected;
        }
        scratch.trace.record(Stage::DeviationRound, tick);
    }
    scratch.dev_heap = c;
    if let Some(spt) = mode.spt() {
        let reached = spt
            .dist_slice()
            .iter()
            .filter(|&&d| d != INFINITE_LENGTH)
            .count();
        stats.spt_nodes = stats.spt_nodes.max(reached);
    }
}

/// Compute `c(u)`: the shortest path in the subspace at `vertex`.
#[allow(clippy::too_many_arguments)]
fn candidate(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    cand: &mut CandidateScratch,
    store: &mut PathStore,
    tree: &PseudoTree,
    mode: DeviationMode<'_>,
    vertex: VertexId,
    stats: &mut QueryStats,
) -> Option<FoundPath> {
    match mode {
        DeviationMode::Plain => {
            // Plain constrained Dijkstra (DA computes candidates "by
            // traversing the graph exhaustively").
            match subspace_search(
                ctx,
                scratch,
                store,
                tree,
                vertex,
                &mut |_| Estimate::Bound(0),
                None,
                stats,
            ) {
                SubspaceSearch::Found(f) => Some(f),
                _ => None,
            }
        }
        DeviationMode::Pascoal(spt) => candidate_with_spt(
            ctx, scratch, cand, store, tree, spt, vertex, /*lazy=*/ false, stats,
        ),
        DeviationMode::Gao(spt) => candidate_with_spt(
            ctx, scratch, cand, store, tree, spt, vertex, /*lazy=*/ true, stats,
        ),
    }
}

/// The SPT-guided candidate search: constrained A\* from the vertex using
/// the exact SPT distances `δ(v, V_T)` as potential, settling nodes in
/// order of total completed length.
///
/// With `lazy_test = true` (Gao et al. — `DA-SPT`) the SPT-tail splice is
/// tested at *every* settled node and the search stops at the first simple
/// completion. With `lazy_test = false` (Pascoal) only the seed's splice
/// is tested in `O(1)`-ish; on failure the search degenerates to a full
/// constrained computation that terminates at a settled destination.
#[allow(clippy::too_many_arguments)]
fn candidate_with_spt(
    ctx: &SubspaceCtx<'_>,
    scratch: &mut SubspaceScratch,
    cand: &mut CandidateScratch,
    store: &mut PathStore,
    tree: &PseudoTree,
    spt: &DenseDijkstra,
    vertex: VertexId,
    lazy_test: bool,
    stats: &mut QueryStats,
) -> Option<FoundPath> {
    stats.shortest_path_computations += 1;
    scratch.prefix_set.clear();
    for n in tree.prefix_nodes(vertex) {
        scratch.prefix_set.insert(n as usize);
    }
    let u = tree.node(vertex);
    let plen = tree.prefix_len(vertex);
    let allow_trivial = !tree.emitted(vertex);

    cand.heap.clear();
    cand.dist.reset();
    cand.parent.reset();
    cand.settled.clear();

    // Seed exactly like `subspace_search`.
    if u == VIRTUAL_NODE {
        for &f in ctx.fanout {
            if !tree.is_excluded(vertex, f) && spt.reached(f) {
                cand.dist.set(f as usize, 0);
                cand.heap.push_or_decrease(f as usize, spt.dist(f));
            }
        }
    } else if spt.reached(u) {
        cand.dist.set(u as usize, plen);
        cand.heap
            .push_or_decrease(u as usize, plen.saturating_add(spt.dist(u)));
    }

    let mut settled_count = 0usize;
    let mut relaxed = 0usize;
    let mut first_pop = true;
    let result = loop {
        let Some((vu, _)) = cand.heap.pop() else {
            break None;
        };
        let v = vu as NodeId;
        cand.settled.insert(vu);
        settled_count += 1;
        if settled_count.is_multiple_of(kpj_sp::CANCEL_POLL_STRIDE) && ctx.deadline.expired() {
            break None;
        }
        let dv = cand.dist.get(vu);

        // Splice test: Gao tests every settled node; Pascoal only the
        // first pop(s) (the seeds — after that the splice test is off and
        // the search runs to a settled destination). A tail starting at
        // the subspace vertex itself must respect the excluded set X_u.
        let test_splice = lazy_test || first_pop;
        first_pop = false;
        if test_splice {
            if let Some(tail_len) = tail_len_if_simple(scratch, cand, spt, v) {
                let uses_excluded =
                    v == u && tail_len >= 2 && tree.is_excluded(vertex, spt.parent(v));
                let trivial = v == u && tail_len == 1 && dv == plen;
                if !uses_excluded && (!trivial || allow_trivial) {
                    break Some(assemble_with_tail(
                        scratch, cand, store, tree, spt, vertex, v, dv, tail_len,
                    ));
                }
            }
        } else if ctx.goal_set.contains(vu) && (v != u || allow_trivial) {
            // Pascoal fallback: plain goal test at settled destinations.
            break Some(assemble_with_tail(
                scratch, cand, store, tree, spt, vertex, v, dv, 1,
            ));
        }

        // Relax constrained out-edges (forward mode only — the deviation
        // baselines never run on the reverse graph).
        for e in ctx.g.out_edges(v) {
            relaxed += 1;
            let w = e.to as usize;
            if cand.settled.contains(w)
                || scratch.prefix_set.contains(w)
                || (v == u && tree.is_excluded(vertex, e.to))
                || !spt.reached(e.to)
            {
                continue;
            }
            let nd = dv.saturating_add(e.weight as Length);
            if nd < cand.dist.get(w) {
                cand.dist.set(w, nd);
                cand.parent.set(w, v);
                cand.heap
                    .push_or_decrease(w, nd.saturating_add(spt.dist(e.to)));
            }
        }
    };
    stats.nodes_settled += settled_count;
    stats.edges_relaxed += relaxed;
    stats.heap_pops += settled_count;
    if result.is_none() {
        // Heap exhausted (or deadline): the subspace holds no simple path,
        // so it is dropped without ever entering the candidate queue.
        stats.subspaces_skipped += 1;
    }
    result
}

/// If the SPT tail of `v` (its shortest path to `V_T`) is node-disjoint
/// from the current search chain and subspace prefix, return its node
/// count (including `v` itself).
fn tail_len_if_simple(
    scratch: &SubspaceScratch,
    cand: &mut CandidateScratch,
    spt: &DenseDijkstra,
    v: NodeId,
) -> Option<usize> {
    debug_assert!(spt.reached(v));
    // Mark the chain v → … → seed.
    cand.chain_mark.clear();
    let mut cur = v;
    loop {
        cand.chain_mark.insert(cur as usize);
        let p = cand.parent.get(cur as usize);
        if p == NO_PARENT {
            break;
        }
        cur = p;
    }
    // Walk the SPT tail, rejecting any overlap beyond v itself.
    let mut len = 1;
    let mut cur = v;
    loop {
        let p = spt.parent(cur);
        if p == NO_PARENT {
            break;
        }
        if cand.chain_mark.contains(p as usize) || scratch.prefix_set.contains(p as usize) {
            return None;
        }
        len += 1;
        cur = p;
    }
    Some(len)
}

/// Push chain(seed → v) + SPT tail(v → V_T) into the arena and return the
/// [`FoundPath`] handle. `tail_len` counts the tail nodes including `v`.
#[allow(clippy::too_many_arguments)]
fn assemble_with_tail(
    scratch: &mut SubspaceScratch,
    cand: &CandidateScratch,
    store: &mut PathStore,
    tree: &PseudoTree,
    spt: &DenseDijkstra,
    vertex: VertexId,
    v: NodeId,
    dv: Length,
    tail_len: usize,
) -> FoundPath {
    let u = tree.node(vertex);
    let total = dv.saturating_add(spt.dist(v));

    // chain_buf: v → … → seed; pushed into the arena seed-first.
    scratch.chain_buf.clear();
    scratch.chain_buf.push(v);
    let mut cur = v;
    while cand.parent.get(cur as usize) != NO_PARENT {
        cur = cand.parent.get(cur as usize);
        scratch.chain_buf.push(cur);
    }
    let chain_len = scratch.chain_buf.len();
    let mut id: Option<PathId> = None;
    for &x in scratch.chain_buf.iter().rev() {
        id = Some(store.push(id, x, cand.dist.get(x as usize)));
    }
    // SPT tail after v, cumulative lengths measured from the path start.
    let mut cur = v;
    for _ in 1..tail_len {
        cur = spt.parent(cur);
        id = Some(store.push(id, cur, total - spt.dist(cur)));
    }

    let skip = usize::from(u != VIRTUAL_NODE);
    FoundPath {
        tail: id.expect("chain has at least one node"),
        length: total,
        vertex,
        suffix_len: (chain_len - skip + tail_len - 1) as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::{Graph, GraphBuilder, PathSet};

    /// Diamond with a detour: paths 0→1→3 (3), 0→2→3 (7), 0→1→2→3 (8).
    fn fixture() -> (Graph, TimestampedSet) {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 3, 2).unwrap();
        b.add_edge(0, 2, 3).unwrap();
        b.add_edge(2, 3, 4).unwrap();
        b.add_edge(1, 2, 3).unwrap();
        let g = b.build();
        let mut ts = TimestampedSet::new(4);
        ts.insert(3);
        (g, ts)
    }

    fn run(spt_mode: bool, k: usize) -> PathSet {
        let (g, ts) = fixture();
        let ctx = SubspaceCtx {
            g: &g,
            direction: kpj_sp::Direction::Forward,
            fanout: &[],
            goal_set: &ts,
            goal_count: 1,
            order: kpj_sp::SearchOrder::Astar,
            deadline: crate::deadline::Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut cand = CandidateScratch::new(4);
        let mut store = PathStore::new();
        let mut tree = PseudoTree::new(0);
        let mut stats = QueryStats::default();
        let spt = spt_mode.then(|| DenseDijkstra::to_targets(&g, &[3]));
        let mode = match &spt {
            None => DeviationMode::Plain,
            Some(s) => DeviationMode::Gao(s),
        };
        let mut out = PathSet::new();
        let mut sink = crate::search_core::CollectSink { out: &mut out, k };
        run_deviation(
            &ctx,
            &mut scratch,
            &mut cand,
            &mut store,
            &mut tree,
            mode,
            &mut sink,
            None,
            &mut stats,
        );
        out
    }

    #[test]
    fn da_enumerates_in_order() {
        let paths = run(false, 5);
        assert_eq!(paths.lengths(), vec![3, 7, 8]);
        assert_eq!(paths.path(0).nodes, [0, 1, 3]);
        assert_eq!(paths.path(2).nodes, [0, 1, 2, 3]);
    }

    #[test]
    fn da_spt_matches_da() {
        let a = run(false, 5);
        let b = run(true, 5);
        assert_eq!(a.lengths(), b.lengths());
        assert_eq!(a.len(), b.len());
        for p in &b {
            assert!(p.is_simple());
        }
    }

    #[test]
    fn da_spt_tail_rejection_forces_detour() {
        // Graph where the SPT tail of an early settled node collides with
        // the prefix, forcing the candidate search deeper:
        // 0→1→2→3 plus 1→4→2 detour; target {3}; after the first path
        // 0-1-2-3 is chosen, the subspace at vertex 1 excludes edge (1,2);
        // its candidate must be 0-1-4-2-3 even though the SPT tail of 4
        // goes through 2 (which is fine) — while the tail of 1 (1→2→3)
        // is excluded.
        let mut b = GraphBuilder::new(5);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        b.add_edge(1, 4, 5).unwrap();
        b.add_edge(4, 2, 5).unwrap();
        let g = b.build();
        let mut ts = TimestampedSet::new(5);
        ts.insert(3);
        let ctx = SubspaceCtx {
            g: &g,
            direction: kpj_sp::Direction::Forward,
            fanout: &[],
            goal_set: &ts,
            goal_count: 1,
            order: kpj_sp::SearchOrder::Astar,
            deadline: crate::deadline::Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(5);
        let mut cand = CandidateScratch::new(5);
        let mut store = PathStore::new();
        let mut tree = PseudoTree::new(0);
        let mut stats = QueryStats::default();
        let spt = DenseDijkstra::to_targets(&g, &[3]);
        let mut out = PathSet::new();
        let mut sink = crate::search_core::CollectSink {
            out: &mut out,
            k: 3,
        };
        run_deviation(
            &ctx,
            &mut scratch,
            &mut cand,
            &mut store,
            &mut tree,
            DeviationMode::Gao(&spt),
            &mut sink,
            None,
            &mut stats,
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out.path(0).nodes, [0, 1, 2, 3]);
        assert_eq!(out.path(1).nodes, [0, 1, 4, 2, 3]);
        assert_eq!(out.path(1).length, 12);
    }

    #[test]
    fn pascoal_agrees_with_gao() {
        let (g, ts) = fixture();
        let ctx = SubspaceCtx {
            g: &g,
            direction: kpj_sp::Direction::Forward,
            fanout: &[],
            goal_set: &ts,
            goal_count: 1,
            order: kpj_sp::SearchOrder::Astar,
            deadline: crate::deadline::Deadline::none(),
        };
        let spt = DenseDijkstra::to_targets(&g, &[3]);
        let mut lens = Vec::new();
        for mode in [DeviationMode::Pascoal(&spt), DeviationMode::Gao(&spt)] {
            let mut scratch = SubspaceScratch::new(4);
            let mut cand = CandidateScratch::new(4);
            let mut store = PathStore::new();
            let mut tree = PseudoTree::new(0);
            let mut stats = QueryStats::default();
            let mut out = PathSet::new();
            let mut sink = crate::search_core::CollectSink {
                out: &mut out,
                k: 5,
            };
            run_deviation(
                &ctx,
                &mut scratch,
                &mut cand,
                &mut store,
                &mut tree,
                mode,
                &mut sink,
                None,
                &mut stats,
            );
            lens.push(out.lengths());
        }
        assert_eq!(lens[0], lens[1]);
        assert_eq!(lens[0], vec![3, 7, 8]);
    }

    #[test]
    fn stats_reflect_deviation_eagerness() {
        let (g, ts) = fixture();
        let ctx = SubspaceCtx {
            g: &g,
            direction: kpj_sp::Direction::Forward,
            fanout: &[],
            goal_set: &ts,
            goal_count: 1,
            order: kpj_sp::SearchOrder::Astar,
            deadline: crate::deadline::Deadline::none(),
        };
        let mut scratch = SubspaceScratch::new(4);
        let mut cand = CandidateScratch::new(4);
        let mut store = PathStore::new();
        let mut tree = PseudoTree::new(0);
        let mut stats = QueryStats::default();
        let mut out = PathSet::new();
        let mut sink = crate::search_core::CollectSink {
            out: &mut out,
            k: 2,
        };
        run_deviation(
            &ctx,
            &mut scratch,
            &mut cand,
            &mut store,
            &mut tree,
            DeviationMode::Plain,
            &mut sink,
            None,
            &mut stats,
        );
        // DA computes a candidate for every subspace it creates.
        assert!(stats.shortest_path_computations >= 3);
    }
}
