//! The public query engine: one long-lived object per graph that answers
//! KPJ / KSP / GKPJ queries with any of [`Algorithm::ALL`] — the paper's
//! seven algorithms plus the sidetrack-based `Sidetrack` engine.

use kpj_graph::scratch::TimestampedSet;
use kpj_graph::{Graph, Length, NodeId, PathRef, PathSet, PathStore, Reduction, INFINITE_LENGTH};
use kpj_landmark::LandmarkIndex;
use kpj_obs::{SpanRecord, Stage};
use kpj_sp::{DenseDijkstra, Direction, Estimate, SearchOrder};

use crate::bounds::{SourceLb, TargetsLb};
use crate::deadline::Deadline;
use crate::deviation::{run_deviation, CandidateScratch, DeviationMode};
use crate::par::ParPool;
use crate::paradigms::{run_best_first, run_iter_bound, PlainOracle, SubspaceOracle};
use crate::pseudo_tree::{PseudoTree, VIRTUAL_NODE};
use crate::search_core::{CollectSink, PathSink, SubspaceCtx, SubspaceScratch, VisitSink};
use crate::sidetrack::run_sidetrack;
use crate::spti::SptiStore;
use crate::sptp::SptpStore;
use crate::stats::QueryStats;

/// The algorithms evaluated in the paper (§7), plus the beyond-the-paper
/// sidetrack engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Deviation baseline `DA` [28, 15]: eager candidate paths via plain
    /// constrained Dijkstra.
    Da,
    /// Deviation baseline `DA-SPT` [14, 15]: eager candidates guided by a
    /// full online reverse SPT with Gao et al.'s iterative simplicity
    /// test (the state of the art the paper compares against).
    DaSpt,
    /// Pascoal's precursor [24] of `DA-SPT`: one `O(1)`-ish splice test
    /// per candidate, full constrained search on failure. Not plotted in
    /// the paper's figures but discussed in §3; kept for completeness.
    DaSptPascoal,
    /// `BestFirst` (§4): lazy shortest-path computation ordered by `CompLB`
    /// lower bounds.
    BestFirst,
    /// `IterBound` (§5.1): BestFirst plus iterative τ-tightening `TestLB`.
    IterBound,
    /// `IterBound-SPT_P` (§5.2): IterBound with the partial SPT built as a
    /// by-product of the initial shortest-path computation.
    IterBoundP,
    /// `IterBound-SPT_I` (§5.3): the flagship — search on the reverse graph
    /// pruned to an incrementally grown forward SPT.
    IterBoundI,
    /// Beyond the paper: Kurz–Mutzel-style sidetrack enumeration
    /// (arXiv:1601.02867) adapted to KPJ. One full reverse SPT, then each
    /// subspace is resolved by scanning its allowed first-hop "sidetrack"
    /// edges and splicing the cheapest onto the SPT suffix — zero search
    /// on the fast path, a τ-bounded repair search (with the exact SPT
    /// distances as a perfect heuristic) only when the suffix collides
    /// with the prefix.
    Sidetrack,
}

impl Algorithm {
    /// All algorithms, in the paper's presentation order (the
    /// beyond-the-paper sidetrack engine last). The single source of
    /// truth for every per-algorithm surface: differential oracles,
    /// metrics series, bench matrices and wire parsing all iterate this.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Da,
        Algorithm::DaSpt,
        Algorithm::DaSptPascoal,
        Algorithm::BestFirst,
        Algorithm::IterBound,
        Algorithm::IterBoundP,
        Algorithm::IterBoundI,
        Algorithm::Sidetrack,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Da => "DA",
            Algorithm::DaSpt => "DA-SPT",
            Algorithm::DaSptPascoal => "DA-Pascoal",
            Algorithm::BestFirst => "BestFirst",
            Algorithm::IterBound => "IterBound",
            Algorithm::IterBoundP => "IterBoundP",
            Algorithm::IterBoundI => "IterBoundI",
            Algorithm::Sidetrack => "Sidetrack",
        }
    }
}

/// Result of one query: the paths (non-decreasing length, each simple,
/// source-side first) and the work counters.
///
/// Paths live in a flat [`PathSet`] — iterate [`PathRef`]s borrowed from
/// it, or bridge to owned [`Path`](kpj_graph::Path)s with
/// [`PathSet::to_paths`] where a self-contained value is needed.
#[derive(Debug, Clone)]
pub struct KpjResult {
    /// Up to `k` shortest simple paths; fewer when the graph does not
    /// contain `k` simple paths between the query endpoints.
    pub paths: PathSet,
    /// Instrumentation counters (see [`QueryStats`]).
    pub stats: QueryStats,
}

/// Errors for malformed queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A source node id is ≥ the graph's node count.
    SourceOutOfRange(NodeId),
    /// A target node id is ≥ the graph's node count.
    TargetOutOfRange(NodeId),
    /// The query supplied no source nodes at all.
    NoSources,
    /// The query's [`Deadline`] passed before it completed; partial
    /// results are discarded (the engine's scratch stays reusable).
    DeadlineExceeded,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Case-insensitive; accepts the paper's names with or without the
    /// hyphen ("DA-SPT"/"daspt", "IterBoundP", …).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(['-', '_'], "").as_str() {
            "da" => Ok(Algorithm::Da),
            "daspt" => Ok(Algorithm::DaSpt),
            "dapascoal" | "dasptpascoal" | "pascoal" => Ok(Algorithm::DaSptPascoal),
            "bestfirst" => Ok(Algorithm::BestFirst),
            "iterbound" => Ok(Algorithm::IterBound),
            "iterboundp" | "iterboundsptp" => Ok(Algorithm::IterBoundP),
            "iterboundi" | "iterboundspti" => Ok(Algorithm::IterBoundI),
            "sidetrack" => Ok(Algorithm::Sidetrack),
            other => {
                let valid = Algorithm::ALL.map(|a| a.name().to_ascii_lowercase());
                Err(format!(
                    "unknown algorithm `{other}` (valid: {})",
                    valid.join(", ")
                ))
            }
        }
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::SourceOutOfRange(v) => write!(f, "source node {v} out of range"),
            QueryError::TargetOutOfRange(v) => write!(f, "target node {v} out of range"),
            QueryError::NoSources => write!(f, "query has no source nodes"),
            QueryError::DeadlineExceeded => write!(f, "query deadline exceeded"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A reusable query processor for one graph.
///
/// Holds all per-query scratch (epoch-stamped, reset in `O(1)`), the
/// per-query path arena, the optional landmark index, and the `α`
/// parameter of the iteratively bounding approaches. A warmed-up engine
/// answers queries without heap allocation when driven through
/// [`query_multi_into`](QueryEngine::query_multi_into) (landmark-less
/// engines; landmark bound tables still allocate per query). Dropping the
/// landmark index (never calling
/// [`with_landmarks`](QueryEngine::with_landmarks)) yields the paper's
/// `-NL` (no-landmark) variants of every algorithm.
///
/// ```
/// use kpj_graph::GraphBuilder;
/// use kpj_core::{Algorithm, QueryEngine};
///
/// let mut b = GraphBuilder::new(4);
/// b.add_bidirectional(0, 1, 1).unwrap();
/// b.add_bidirectional(1, 2, 1).unwrap();
/// b.add_bidirectional(1, 3, 5).unwrap();
/// let g = b.build();
/// let mut engine = QueryEngine::new(&g);
/// // Top-2 shortest paths from node 0 to the "category" {2, 3}.
/// let r = engine.query(Algorithm::IterBoundI, 0, &[2, 3], 2).unwrap();
/// assert_eq!(r.paths.len(), 2);
/// assert_eq!(r.paths.path(0).nodes, [0, 1, 2]);
/// assert_eq!(r.paths.path(1).nodes, [0, 1, 3]);
/// ```
pub struct QueryEngine<'g> {
    g: &'g Graph,
    landmarks: Option<&'g LandmarkIndex>,
    /// When `g` is a reduced graph: the mapping whose expansion chains
    /// every emitted path is spliced through, so callers only ever see
    /// original-id node sequences (see `kpj_graph::reduce`).
    reduction: Option<&'g Reduction>,
    alpha: f64,
    scratch: SubspaceScratch,
    cand: CandidateScratch,
    target_set: TimestampedSet,
    source_set: TimestampedSet,
    sptp: SptpStore,
    spti: SptiStore,
    /// The per-query path arena (reset per query, capacity kept).
    store: PathStore,
    /// The per-query pseudo-tree (reset per query, capacity kept).
    tree: PseudoTree,
    /// Pooled sorted/deduped endpoint buffers.
    src_buf: Vec<NodeId>,
    tgt_buf: Vec<NodeId>,
    /// Pooled re-expansion buffer (original-id node sequence of the
    /// path being emitted); kept across queries like every scratch.
    expand_buf: Vec<NodeId>,
    /// Pooled full-SPT scratch for the `DA-SPT` baselines.
    spt_scratch: Option<DenseDijkstra>,
    /// Intra-query parallelism knob: number of pool workers candidate
    /// rounds may fan out to. `0`/`1` = fully sequential.
    par_threads: usize,
    /// Lazily built worker pool (kept across queries; grows, never
    /// shrinks — [`ParPool::set_limit`] caps participation per query).
    par: Option<ParPool>,
}

/// [`PathSink`] adapter interposed by [`QueryEngine::query_core`] when a
/// [`Reduction`] is attached: rewrites each emitted reduced-id node
/// sequence into the original-id sequence (splicing expansion chains)
/// before forwarding. Lengths pass through unchanged — a shortcut's
/// weight is exactly the sum of its chain's original hops.
struct ExpandSink<'a, 'g> {
    inner: &'a mut dyn PathSink,
    g: &'g Graph,
    red: &'g Reduction,
    buf: Vec<NodeId>,
}

impl PathSink for ExpandSink<'_, '_> {
    fn emit(&mut self, nodes: &[NodeId], length: Length) -> bool {
        self.red.expand_path(self.g, nodes, &mut self.buf);
        self.inner.emit(&self.buf, length)
    }
}

impl<'g> QueryEngine<'g> {
    /// An engine without landmarks (all algorithms run in `-NL` mode).
    pub fn new(g: &'g Graph) -> Self {
        let n = g.node_count();
        QueryEngine {
            g,
            landmarks: None,
            reduction: None,
            alpha: 1.1,
            scratch: SubspaceScratch::new(n),
            cand: CandidateScratch::new(n),
            target_set: TimestampedSet::new(n),
            source_set: TimestampedSet::new(n),
            sptp: SptpStore::new(n),
            spti: SptiStore::new(n),
            store: PathStore::new(),
            tree: PseudoTree::new(VIRTUAL_NODE),
            src_buf: Vec::new(),
            tgt_buf: Vec::new(),
            expand_buf: Vec::new(),
            spt_scratch: None,
            par_threads: std::env::var("KPJ_PAR_THREADS")
                .ok()
                .and_then(|s| s.trim().parse().ok())
                .unwrap_or(0),
            par: None,
        }
    }

    /// Attach an offline landmark index (must be built for this graph).
    ///
    /// # Panics
    /// Panics if the index was built for a different node count.
    pub fn with_landmarks(mut self, idx: &'g LandmarkIndex) -> Self {
        assert_eq!(
            idx.node_count(),
            self.g.node_count(),
            "landmark index does not match the graph"
        );
        self.landmarks = Some(idx);
        self
    }

    /// Attach the [`Reduction`] that produced this engine's (reduced)
    /// graph. Queries then take reduced-id endpoints but every emitted
    /// path is transparently re-expanded to the original node sequence
    /// (with the original length — shortcut weights are exact sums), so
    /// results are bit-identical to running on the unreduced graph.
    ///
    /// # Panics
    /// Panics if the reduction's reduced node count does not match the
    /// graph.
    pub fn with_reduction(mut self, red: &'g Reduction) -> Self {
        assert_eq!(
            red.reduced_node_count(),
            self.g.node_count(),
            "reduction does not match the graph"
        );
        self.reduction = Some(red);
        self
    }

    /// Set the τ growth factor `α > 1` (default 1.1, the paper's choice).
    ///
    /// # Panics
    /// Panics unless `α > 1`.
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        assert!(alpha > 1.0, "α must exceed 1");
        self.alpha = alpha;
        self
    }

    /// Builder form of [`set_par_threads`](QueryEngine::set_par_threads).
    pub fn with_par_threads(mut self, n: usize) -> Self {
        self.set_par_threads(n);
        self
    }

    /// Set the intra-query parallelism level: deviation/search rounds with
    /// ≥ 2 pending candidate searches fan them out across `n` persistent
    /// worker threads and merge the results in subspace-index order, so
    /// the answer (paths, arena layout, and [`QueryStats`] except the
    /// `rounds_parallel`/`candidates_stolen` work counters) is
    /// bit-identical to a sequential run. `0` or `1` keeps every search on
    /// the query thread. Defaults to the `KPJ_PAR_THREADS` environment
    /// variable (unset → 0).
    ///
    /// The worker pool spins up lazily on the next query and is kept (and
    /// only ever grown) across queries, preserving the warmed-engine
    /// zero-allocation guarantee of
    /// [`query_multi_into`](QueryEngine::query_multi_into).
    pub fn set_par_threads(&mut self, n: usize) {
        self.par_threads = n;
    }

    /// Current intra-query parallelism level (see
    /// [`set_par_threads`](QueryEngine::set_par_threads)).
    pub fn par_threads(&self) -> usize {
        self.par_threads
    }

    /// The graph this engine answers queries on.
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// True if the engine uses landmark lower bounds.
    pub fn has_landmarks(&self) -> bool {
        self.landmarks.is_some()
    }

    /// Trace one query in every `every` (0 disables tracing, 1 — the
    /// default — traces every query). Span recording is pre-allocated and
    /// allocation-free either way; without the `trace` cargo feature this
    /// is a no-op.
    pub fn set_trace_sampling(&mut self, every: u32) {
        self.scratch.trace.set_sampling(every);
    }

    /// The span trace of the most recent (sampled) query, oldest first,
    /// as two contiguous halves of the span ring. Empty when the query
    /// was not sampled or tracing is compiled out.
    pub fn trace_spans(&self) -> (&[SpanRecord], &[SpanRecord]) {
        self.scratch.trace.spans()
    }

    /// Spans evicted from the trace ring by the most recent query (0
    /// unless the query recorded more than the ring capacity).
    pub fn trace_dropped(&self) -> u64 {
        self.scratch.trace.dropped()
    }

    /// A KPJ query `{s, T, k}` (§2): top-`k` shortest simple paths from
    /// `source` to any node of `targets`.
    pub fn query(
        &mut self,
        alg: Algorithm,
        source: NodeId,
        targets: &[NodeId],
        k: usize,
    ) -> Result<KpjResult, QueryError> {
        self.query_multi(alg, &[source], targets, k)
    }

    /// A KSP query `{s, t, k}` (Def. 3.1): the KPJ special case with a
    /// singleton category.
    pub fn ksp(
        &mut self,
        alg: Algorithm,
        source: NodeId,
        target: NodeId,
        k: usize,
    ) -> Result<KpjResult, QueryError> {
        self.query_multi(alg, &[source], &[target], k)
    }

    /// A GKPJ query `{S, T, k}` (§6): both endpoints are categories. The
    /// virtual source/target nodes of the paper's reduction are handled
    /// implicitly (no graph mutation).
    pub fn query_multi(
        &mut self,
        alg: Algorithm,
        sources: &[NodeId],
        targets: &[NodeId],
        k: usize,
    ) -> Result<KpjResult, QueryError> {
        self.query_multi_deadline(alg, sources, targets, k, Deadline::none())
    }

    /// [`query_multi`](QueryEngine::query_multi) with a wall-clock budget.
    ///
    /// The deadline is polled cooperatively (inside every subspace search
    /// and at the paradigm loop heads); once it passes, the query stops
    /// and returns [`QueryError::DeadlineExceeded`]. The engine's scratch
    /// state is *not* poisoned — the next query on this engine runs
    /// normally. With [`Deadline::none()`] this is exactly `query_multi`.
    pub fn query_multi_deadline(
        &mut self,
        alg: Algorithm,
        sources: &[NodeId],
        targets: &[NodeId],
        k: usize,
        deadline: Deadline,
    ) -> Result<KpjResult, QueryError> {
        let mut paths = PathSet::new();
        let stats = self.query_multi_into(alg, sources, targets, k, deadline, &mut paths)?;
        Ok(KpjResult { paths, stats })
    }

    /// The allocation-free core of
    /// [`query_multi_deadline`](QueryEngine::query_multi_deadline):
    /// collect the answer into a caller-owned [`PathSet`] (cleared first).
    ///
    /// A warmed-up landmark-less engine answering a repeat-shaped query
    /// through this entry point performs zero heap allocations — all
    /// per-query state (path arena, pseudo-tree, heaps, endpoint buffers)
    /// is pooled on the engine, and `out` reuses its flat buffers.
    pub fn query_multi_into(
        &mut self,
        alg: Algorithm,
        sources: &[NodeId],
        targets: &[NodeId],
        k: usize,
        deadline: Deadline,
        out: &mut PathSet,
    ) -> Result<QueryStats, QueryError> {
        out.clear();
        let mut stats = QueryStats::default();
        {
            let mut sink = CollectSink { out, k };
            self.query_core(alg, sources, targets, k, deadline, &mut sink, &mut stats)?;
        }
        // A query that produced its full answer (k paths, or exhausted the
        // graph before the clock ran out — the loops stop *at* expiry) is
        // only failed if the deadline actually cut it short: the loops
        // break on expiry, so an expired clock here means truncation.
        if deadline.expired() && out.len() < k {
            return Err(QueryError::DeadlineExceeded);
        }
        Ok(stats)
    }

    /// Anytime variant of [`query_multi`](QueryEngine::query_multi):
    /// `on_path` receives each result path as soon as it is proven to be
    /// the next-shortest, in non-decreasing length order, and can stop the
    /// query early by returning [`ControlFlow::Break`]. At most `k` paths
    /// are delivered. The [`PathRef`] borrows the engine's emission buffer
    /// — copy ([`PathRef::to_path`]) what outlives the callback. Returns
    /// the work counters.
    ///
    /// ```
    /// # use kpj_graph::GraphBuilder;
    /// # use kpj_core::{Algorithm, QueryEngine};
    /// # use std::ops::ControlFlow;
    /// # let mut b = GraphBuilder::new(3);
    /// # b.add_bidirectional(0, 1, 1).unwrap();
    /// # b.add_bidirectional(1, 2, 1).unwrap();
    /// # let g = b.build();
    /// let mut engine = QueryEngine::new(&g);
    /// let mut first = None;
    /// engine
    ///     .query_visit(Algorithm::IterBoundI, 0, &[2], 10, |p| {
    ///         first = Some(p.to_path()); // keep only the first, then stop
    ///         ControlFlow::Break(())
    ///     })
    ///     .unwrap();
    /// assert_eq!(first.unwrap().length, 2);
    /// ```
    ///
    /// [`ControlFlow::Break`]: std::ops::ControlFlow::Break
    pub fn query_multi_visit(
        &mut self,
        alg: Algorithm,
        sources: &[NodeId],
        targets: &[NodeId],
        k: usize,
        on_path: impl FnMut(PathRef<'_>) -> std::ops::ControlFlow<()>,
    ) -> Result<QueryStats, QueryError> {
        self.query_multi_visit_deadline(alg, sources, targets, k, Deadline::none(), on_path)
    }

    /// [`query_multi_visit`](QueryEngine::query_multi_visit) with a
    /// wall-clock budget and *anytime* semantics: deadline expiry is not
    /// an error — delivery simply stops, and the returned [`QueryStats`]
    /// describe the work done up to the cut (callers count the paths they
    /// received). This is the observability hook for expiry landing
    /// mid-deviation: `stats.subspaces_created` shows how far the
    /// deviation loop got before the clock ran out.
    pub fn query_multi_visit_deadline(
        &mut self,
        alg: Algorithm,
        sources: &[NodeId],
        targets: &[NodeId],
        k: usize,
        deadline: Deadline,
        mut on_path: impl FnMut(PathRef<'_>) -> std::ops::ControlFlow<()>,
    ) -> Result<QueryStats, QueryError> {
        let mut stats = QueryStats::default();
        let mut sink = VisitSink {
            f: |p: PathRef<'_>| on_path(p) == std::ops::ControlFlow::Continue(()),
            remaining: k,
        };
        self.query_core(alg, sources, targets, k, deadline, &mut sink, &mut stats)?;
        Ok(stats)
    }

    /// Single-source convenience for
    /// [`query_multi_visit`](QueryEngine::query_multi_visit).
    pub fn query_visit(
        &mut self,
        alg: Algorithm,
        source: NodeId,
        targets: &[NodeId],
        k: usize,
        on_path: impl FnMut(PathRef<'_>) -> std::ops::ControlFlow<()>,
    ) -> Result<QueryStats, QueryError> {
        self.query_multi_visit(alg, &[source], targets, k, on_path)
    }

    /// Validation, endpoint dedup into pooled buffers, bound setup and
    /// dispatch — shared by the collecting and visiting entry points.
    #[allow(clippy::too_many_arguments)]
    fn query_core(
        &mut self,
        alg: Algorithm,
        sources: &[NodeId],
        targets: &[NodeId],
        k: usize,
        deadline: Deadline,
        sink: &mut dyn PathSink,
        stats: &mut QueryStats,
    ) -> Result<(), QueryError> {
        let n = self.g.node_count() as u64;
        if sources.is_empty() {
            return Err(QueryError::NoSources);
        }
        if let Some(&v) = sources.iter().find(|&&v| v as u64 >= n) {
            return Err(QueryError::SourceOutOfRange(v));
        }
        if let Some(&v) = targets.iter().find(|&&v| v as u64 >= n) {
            return Err(QueryError::TargetOutOfRange(v));
        }
        if targets.is_empty() || k == 0 {
            return Ok(());
        }
        if self.par_threads >= 2 {
            // Grow-only pool: rebuilding allocates, so it happens at most
            // once per high-water mark; repeat queries only flip the
            // allocation-free participation cap.
            if self.par.as_ref().map_or(0, |p| p.workers()) < self.par_threads {
                self.par = Some(ParPool::new(self.par_threads, self.g.node_count()));
            }
            if let Some(pool) = &self.par {
                pool.set_limit(self.par_threads);
            }
        }
        self.scratch.trace.begin();

        let mut src = std::mem::take(&mut self.src_buf);
        src.clear();
        src.extend_from_slice(sources);
        src.sort_unstable();
        src.dedup();
        let mut tgt = std::mem::take(&mut self.tgt_buf);
        tgt.clear();
        tgt.extend_from_slice(targets);
        tgt.sort_unstable();
        tgt.dedup();

        self.target_set.clear();
        for &t in &tgt {
            self.target_set.insert(t as usize);
        }
        self.source_set.clear();
        for &s in &src {
            self.source_set.insert(s as usize);
        }

        let tick = self.scratch.trace.start();
        let to_targets = match self.landmarks {
            Some(idx) => TargetsLb::Alt(idx.for_targets(&tgt)),
            None => TargetsLb::Zero,
        };
        let from_sources = SourceLb::new(self.landmarks, &src);
        self.scratch.trace.record(Stage::LandmarkBounds, tick);

        let mut store = std::mem::take(&mut self.store);
        store.reset();
        let mut tree = std::mem::take(&mut self.tree);
        match self.reduction {
            // Reduced graph: splice contracted chains back into every
            // emitted path before the caller's sink sees it. The buffer
            // is pooled on the engine, so warmed queries stay
            // allocation-free.
            Some(red) => {
                let mut expander = ExpandSink {
                    inner: sink,
                    g: self.g,
                    red,
                    buf: std::mem::take(&mut self.expand_buf),
                };
                self.dispatch(
                    alg,
                    &src,
                    &tgt,
                    &to_targets,
                    &from_sources,
                    &mut store,
                    &mut tree,
                    &mut expander,
                    deadline,
                    stats,
                );
                self.expand_buf = expander.buf;
            }
            None => self.dispatch(
                alg,
                &src,
                &tgt,
                &to_targets,
                &from_sources,
                &mut store,
                &mut tree,
                sink,
                deadline,
                stats,
            ),
        }
        self.store = store;
        self.tree = tree;
        self.src_buf = src;
        self.tgt_buf = tgt;
        Ok(())
    }

    /// Route a validated, deduplicated query to its mode.
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &mut self,
        alg: Algorithm,
        sources: &[NodeId],
        targets: &[NodeId],
        to_targets: &TargetsLb<'_>,
        from_sources: &SourceLb<'_>,
        store: &mut PathStore,
        tree: &mut PseudoTree,
        sink: &mut dyn PathSink,
        deadline: Deadline,
        stats: &mut QueryStats,
    ) {
        match alg {
            Algorithm::Da
            | Algorithm::DaSpt
            | Algorithm::DaSptPascoal
            | Algorithm::BestFirst
            | Algorithm::IterBound
            | Algorithm::IterBoundP => self.run_forward(
                alg,
                sources,
                targets,
                to_targets,
                from_sources,
                store,
                tree,
                sink,
                deadline,
                stats,
            ),
            Algorithm::IterBoundI => self.run_reverse(
                sources,
                targets,
                to_targets,
                from_sources,
                store,
                tree,
                sink,
                deadline,
                stats,
            ),
            // The sidetrack engine needs no landmark bounds: its reverse
            // SPT gives *exact* remaining distances, which dominate any
            // Eq. (2) estimate.
            Algorithm::Sidetrack => {
                self.run_sidetrack(sources, targets, store, tree, sink, deadline, stats)
            }
        }
    }

    /// Forward-mode algorithms: the pseudo-tree is rooted at the source
    /// side and searches expand out-edges towards `V_T`.
    #[allow(clippy::too_many_arguments)]
    fn run_forward(
        &mut self,
        alg: Algorithm,
        sources: &[NodeId],
        targets: &[NodeId],
        to_targets: &TargetsLb<'_>,
        from_sources: &SourceLb<'_>,
        store: &mut PathStore,
        tree: &mut PseudoTree,
        sink: &mut dyn PathSink,
        deadline: Deadline,
        stats: &mut QueryStats,
    ) {
        match sources {
            [s] => tree.reset(*s),
            _ => tree.reset(VIRTUAL_NODE),
        }
        let ctx = SubspaceCtx {
            g: self.g,
            direction: Direction::Forward,
            fanout: sources,
            goal_set: &self.target_set,
            goal_count: targets.len(),
            // SPT_P's estimate mixes exact partial-SPT distances with
            // Eq. (2) fallbacks — admissible but not consistent, so its
            // searches must settle in Dijkstra order (h prunes only).
            // Every other forward heuristic (ALT bounds, zero) is
            // consistent and keeps the stronger A* order.
            order: match alg {
                Algorithm::IterBoundP => SearchOrder::Dijkstra,
                _ => SearchOrder::Astar,
            },
            deadline,
        };
        let par = if self.par_threads >= 2 {
            self.par.as_ref()
        } else {
            None
        };
        match alg {
            Algorithm::Da => run_deviation(
                &ctx,
                &mut self.scratch,
                &mut self.cand,
                store,
                tree,
                DeviationMode::Plain,
                sink,
                par,
                stats,
            ),
            Algorithm::DaSpt | Algorithm::DaSptPascoal => {
                // The full online reverse SPT (its construction cost is the
                // baseline's Achilles heel the paper highlights). Pooled on
                // the engine so repeat queries reuse its arrays.
                let tick = self.scratch.trace.start();
                let spt = match self.spt_scratch.take() {
                    Some(mut d) => {
                        d.rerun(self.g, Direction::Backward, targets.iter().map(|&t| (t, 0)));
                        d
                    }
                    None => DenseDijkstra::to_targets(self.g, targets),
                };
                self.scratch.trace.record(Stage::SptBuild, tick);
                stats.nodes_settled += spt
                    .dist_slice()
                    .iter()
                    .filter(|&&d| d != INFINITE_LENGTH)
                    .count();
                let mode = if alg == Algorithm::DaSpt {
                    DeviationMode::Gao(&spt)
                } else {
                    DeviationMode::Pascoal(&spt)
                };
                run_deviation(
                    &ctx,
                    &mut self.scratch,
                    &mut self.cand,
                    store,
                    tree,
                    mode,
                    sink,
                    par,
                    stats,
                );
                self.spt_scratch = Some(spt);
            }
            Algorithm::BestFirst => {
                let mut oracle = PlainOracle {
                    lb: |v| to_targets.lb(v),
                };
                run_best_first(
                    &ctx,
                    &mut self.scratch,
                    store,
                    tree,
                    &mut oracle,
                    sink,
                    false,
                    par,
                    stats,
                )
            }
            Algorithm::IterBound => {
                let mut oracle = PlainOracle {
                    lb: |v| to_targets.lb(v),
                };
                run_iter_bound(
                    &ctx,
                    &mut self.scratch,
                    store,
                    tree,
                    &mut oracle,
                    sink,
                    self.alpha,
                    None,
                    false,
                    par,
                    stats,
                )
            }
            Algorithm::IterBoundP => {
                let tick = self.scratch.trace.start();
                let init = self.sptp.build(
                    self.g,
                    targets,
                    &self.source_set,
                    from_sources,
                    store,
                    tree,
                    stats,
                );
                self.scratch.trace.record(Stage::SptBuild, tick);
                if init.is_none() {
                    return;
                }
                let sptp = &self.sptp;
                let mut oracle = PlainOracle {
                    lb: |v| sptp.exact_dist(v).unwrap_or_else(|| to_targets.lb(v)),
                };
                run_iter_bound(
                    &ctx,
                    &mut self.scratch,
                    store,
                    tree,
                    &mut oracle,
                    sink,
                    self.alpha,
                    init,
                    false,
                    par,
                    stats,
                )
            }
            Algorithm::IterBoundI | Algorithm::Sidetrack => {
                unreachable!("dispatched to run_reverse/run_sidetrack")
            }
        }
    }

    /// `IterBound-SPT_I`: the pseudo-tree is rooted at the virtual target
    /// and searches expand in-edges towards the source side, pruned to the
    /// incrementally grown forward SPT (§5.3).
    #[allow(clippy::too_many_arguments)]
    fn run_reverse(
        &mut self,
        sources: &[NodeId],
        targets: &[NodeId],
        to_targets: &TargetsLb<'_>,
        from_sources: &SourceLb<'_>,
        store: &mut PathStore,
        tree: &mut PseudoTree,
        sink: &mut dyn PathSink,
        deadline: Deadline,
        stats: &mut QueryStats,
    ) {
        tree.reset(VIRTUAL_NODE);
        let ctx = SubspaceCtx {
            g: self.g,
            direction: Direction::Backward,
            fanout: targets,
            goal_set: &self.source_set,
            goal_count: sources.len(),
            // SPT_I estimates are exact inside the SPT and pruned outside
            // (Deferred/Unreachable) — consistent, so A* order is safe.
            order: SearchOrder::Astar,
            deadline,
        };
        let tick = self.scratch.trace.start();
        let init = self
            .spti
            .init(self.g, sources, &self.target_set, to_targets, store, stats);
        self.scratch.trace.record(Stage::SptBuild, tick);
        if init.is_none() {
            return;
        }
        let mut oracle = SptiOracle {
            g: self.g,
            store: &mut self.spti,
            target_set: &self.target_set,
            to_targets,
            from_sources,
        };
        run_iter_bound(
            &ctx,
            &mut self.scratch,
            store,
            tree,
            &mut oracle,
            sink,
            self.alpha,
            init,
            true,
            if self.par_threads >= 2 {
                self.par.as_ref()
            } else {
                None
            },
            stats,
        )
    }

    /// The sidetrack engine (beyond the paper): one full reverse SPT —
    /// pooled with the `DA-SPT` baselines' scratch — then lazy best-first
    /// subspace resolution by sidetrack splicing (see the `sidetrack`
    /// module). Landmark bounds are ignored: the SPT distances are exact
    /// and therefore dominate them, so `-NL` and landmark engines give
    /// byte-identical answers.
    ///
    /// Always sequential: there is no per-round candidate fan-out to
    /// parallelise — the fast path does no search at all.
    #[allow(clippy::too_many_arguments)]
    fn run_sidetrack(
        &mut self,
        sources: &[NodeId],
        targets: &[NodeId],
        store: &mut PathStore,
        tree: &mut PseudoTree,
        sink: &mut dyn PathSink,
        deadline: Deadline,
        stats: &mut QueryStats,
    ) {
        match sources {
            [s] => tree.reset(*s),
            _ => tree.reset(VIRTUAL_NODE),
        }
        let ctx = SubspaceCtx {
            g: self.g,
            direction: Direction::Forward,
            fanout: sources,
            goal_set: &self.target_set,
            goal_count: targets.len(),
            // Repair searches use the exact reverse-SPT distances as the
            // heuristic — consistent, so A* order is safe.
            order: SearchOrder::Astar,
            deadline,
        };
        let tick = self.scratch.trace.start();
        let spt = match self.spt_scratch.take() {
            Some(mut d) => {
                d.rerun(self.g, Direction::Backward, targets.iter().map(|&t| (t, 0)));
                d
            }
            None => DenseDijkstra::to_targets(self.g, targets),
        };
        self.scratch.trace.record(Stage::SptBuild, tick);
        let reached = spt
            .dist_slice()
            .iter()
            .filter(|&&d| d != INFINITE_LENGTH)
            .count();
        stats.nodes_settled += reached;
        stats.spt_nodes = stats.spt_nodes.max(reached);
        run_sidetrack(
            &ctx,
            &mut self.scratch,
            store,
            tree,
            &spt,
            sink,
            self.alpha,
            stats,
        );
        self.spt_scratch = Some(spt);
    }
}

/// Oracle for `IterBound-SPT_I`: exact `d_s` inside `SPT_I`, landmark
/// Eq. (2)-style source-side bounds outside (for `CompLB-SPTI` only — the
/// searches themselves *prune* everything outside the SPT, Deferred when it
/// may still grow, Unreachable once it is complete).
struct SptiOracle<'a, 'q> {
    g: &'a Graph,
    store: &'a mut SptiStore,
    target_set: &'a TimestampedSet,
    to_targets: &'a TargetsLb<'q>,
    from_sources: &'a SourceLb<'q>,
}

impl SubspaceOracle for SptiOracle<'_, '_> {
    #[inline]
    fn lb_num(&self, v: NodeId) -> Length {
        // Alg. 8 line 5-6: exact distance when v ∈ SPT_I, Eq. (2) otherwise.
        self.store
            .exact_dist(v)
            .unwrap_or_else(|| self.from_sources.lb(v))
    }

    #[inline]
    fn estimate(&self, v: NodeId) -> Estimate {
        match self.store.exact_dist(v) {
            Some(d) => Estimate::Bound(d),
            None if self.store.is_complete() => Estimate::Unreachable,
            None => Estimate::Deferred,
        }
    }

    fn prepare_tau(&mut self, tau: Length, stats: &mut QueryStats) {
        self.store
            .grow(self.g, tau, self.target_set, self.to_targets, stats);
    }

    fn spt_nodes(&self) -> usize {
        self.store.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;
    use kpj_landmark::SelectionStrategy;

    /// The worked example consistent with the paper's Figs. 1/2/5:
    /// ω(v1,v8)=2, ω(v8,v7)=3, ω(v1,v3)=3, ω(v3,v6)=3, ω(v3,v7)=4,
    /// ω(v3,v4)=5, ω(v3,v5)=2, ω(v5,v6)=2; H = {v4, v6, v7}.
    /// Top-3: (v1,v8,v7)=5, (v1,v3,v6)=6, length-7 tie.
    fn paper_graph() -> (Graph, Vec<NodeId>) {
        // 0-indexed: v1=0, v3=2, v4=3, v5=4, v6=5, v7=6, v8=7.
        let mut b = GraphBuilder::new(8);
        b.add_bidirectional(0, 7, 2).unwrap(); // v1-v8
        b.add_bidirectional(7, 6, 3).unwrap(); // v8-v7
        b.add_bidirectional(0, 2, 3).unwrap(); // v1-v3
        b.add_bidirectional(2, 5, 3).unwrap(); // v3-v6
        b.add_bidirectional(2, 6, 4).unwrap(); // v3-v7
        b.add_bidirectional(2, 3, 5).unwrap(); // v3-v4
        b.add_bidirectional(2, 4, 2).unwrap(); // v3-v5
        b.add_bidirectional(4, 5, 2).unwrap(); // v5-v6
        (b.build(), vec![3, 5, 6]) // H = {v4, v6, v7}
    }

    fn lengths(r: &KpjResult) -> Vec<Length> {
        r.paths.lengths()
    }

    #[test]
    fn paper_example_top3_for_every_algorithm() {
        let (g, h) = paper_graph();
        let idx = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 7);
        for with_lm in [false, true] {
            let mut engine = QueryEngine::new(&g);
            if with_lm {
                engine = engine.with_landmarks(&idx);
            }
            for alg in Algorithm::ALL {
                let r = engine.query(alg, 0, &h, 3).unwrap();
                assert_eq!(
                    lengths(&r),
                    vec![5, 6, 7],
                    "{} landmarks={with_lm}",
                    alg.name()
                );
                assert_eq!(r.paths.path(0).nodes, [0, 7, 6]);
                assert_eq!(r.paths.path(1).nodes, [0, 2, 5]);
                for p in &r.paths {
                    p.validate(&g).unwrap();
                    assert!(p.is_simple());
                }
            }
        }
    }

    #[test]
    fn ksp_is_kpj_with_singleton_category() {
        let (g, _) = paper_graph();
        let mut engine = QueryEngine::new(&g);
        for alg in Algorithm::ALL {
            let r = engine.ksp(alg, 0, 5, 4).unwrap();
            // Paths v1→v6: (v1,v3,v6)=6, (v1,v3,v5,v6)=7, then longer.
            assert_eq!(r.paths.path(0).length, 6, "{}", alg.name());
            assert_eq!(r.paths.path(1).length, 7);
            let lens = lengths(&r);
            assert!(lens.windows(2).all(|w| w[0] <= w[1]));
            for p in &r.paths {
                assert_eq!(p.source(), 0);
                assert_eq!(p.destination(), 5);
                assert!(p.is_simple());
            }
        }
    }

    #[test]
    fn gkpj_multi_source_agrees_across_algorithms() {
        let (g, h) = paper_graph();
        let idx = LandmarkIndex::build(&g, 3, SelectionStrategy::Farthest, 1);
        let sources = [0u32, 1]; // v1 and v2
        let mut reference: Option<Vec<Length>> = None;
        for alg in Algorithm::ALL {
            let mut engine = QueryEngine::new(&g).with_landmarks(&idx);
            let r = engine.query_multi(alg, &sources, &h, 5).unwrap();
            for p in &r.paths {
                assert!(sources.contains(&p.source()), "{}", alg.name());
                assert!(h.contains(&p.destination()));
                p.validate(&g).unwrap();
            }
            let lens = lengths(&r);
            match &reference {
                None => reference = Some(lens),
                Some(want) => assert_eq!(&lens, want, "{}", alg.name()),
            }
        }
    }

    #[test]
    fn fewer_than_k_paths_terminates_cleanly() {
        // 0 → 1 → 2: exactly two simple paths to {1, 2} exist… plus none
        // others. Ask for 10.
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        let g = b.build();
        for alg in Algorithm::ALL {
            let mut engine = QueryEngine::new(&g);
            let r = engine.query(alg, 0, &[1, 2], 10).unwrap();
            assert_eq!(lengths(&r), vec![1, 2], "{}", alg.name());
        }
    }

    #[test]
    fn unreachable_and_empty_targets() {
        let mut b = GraphBuilder::new(4);
        b.add_bidirectional(0, 1, 1).unwrap();
        b.add_bidirectional(2, 3, 1).unwrap();
        let g = b.build();
        for alg in Algorithm::ALL {
            let mut engine = QueryEngine::new(&g);
            assert!(
                engine.query(alg, 0, &[2], 3).unwrap().paths.is_empty(),
                "{}",
                alg.name()
            );
            assert!(engine.query(alg, 0, &[], 3).unwrap().paths.is_empty());
        }
    }

    #[test]
    fn source_in_targets_yields_zero_length_path_first() {
        let (g, _) = paper_graph();
        for alg in Algorithm::ALL {
            let mut engine = QueryEngine::new(&g);
            let r = engine.query(alg, 2, &[2, 6], 3).unwrap();
            assert_eq!(r.paths.path(0).nodes, [2], "{}", alg.name());
            assert_eq!(r.paths.path(0).length, 0);
            assert_eq!(r.paths.path(1).length, 4); // (v3, v7)
        }
    }

    #[test]
    fn algorithm_from_str_and_display() {
        for alg in Algorithm::ALL {
            let parsed: Algorithm = alg.name().parse().unwrap();
            assert_eq!(parsed, alg);
            assert_eq!(alg.to_string(), alg.name());
        }
        assert_eq!("da-spt".parse::<Algorithm>().unwrap(), Algorithm::DaSpt);
        assert_eq!(
            "ITERBOUND_I".parse::<Algorithm>().unwrap(),
            Algorithm::IterBoundI
        );
        assert!("dijkstra".parse::<Algorithm>().is_err());
    }

    #[test]
    fn query_errors() {
        let (g, _) = paper_graph();
        let mut engine = QueryEngine::new(&g);
        assert_eq!(
            engine.query(Algorithm::Da, 99, &[1], 1).unwrap_err(),
            QueryError::SourceOutOfRange(99)
        );
        assert_eq!(
            engine.query(Algorithm::Da, 0, &[99], 1).unwrap_err(),
            QueryError::TargetOutOfRange(99)
        );
        assert_eq!(
            engine.query_multi(Algorithm::Da, &[], &[1], 1).unwrap_err(),
            QueryError::NoSources
        );
        assert!(engine
            .query(Algorithm::Da, 0, &[1], 0)
            .unwrap()
            .paths
            .is_empty());
    }

    #[test]
    fn k_equals_one_matches_plain_shortest_path() {
        let (g, h) = paper_graph();
        let d = DenseDijkstra::to_targets(&g, &h);
        for alg in Algorithm::ALL {
            let mut engine = QueryEngine::new(&g);
            let r = engine.query(alg, 0, &h, 1).unwrap();
            assert_eq!(r.paths.len(), 1);
            assert_eq!(r.paths.path(0).length, d.dist(0), "{}", alg.name());
        }
    }

    #[test]
    fn engine_is_reusable_across_queries() {
        let (g, h) = paper_graph();
        let mut engine = QueryEngine::new(&g);
        let a = engine.query(Algorithm::IterBoundI, 0, &h, 3).unwrap();
        let _ = engine.query(Algorithm::IterBoundI, 4, &[6], 2).unwrap();
        let b = engine.query(Algorithm::IterBoundI, 0, &h, 3).unwrap();
        assert_eq!(lengths(&a), lengths(&b));
    }

    #[test]
    fn query_multi_into_reuses_output_and_matches_query() {
        let (g, h) = paper_graph();
        let mut engine = QueryEngine::new(&g);
        let mut out = PathSet::new();
        for alg in Algorithm::ALL {
            let want = engine.query(alg, 0, &h, 3).unwrap();
            // Same answer through the pooled entry point, twice, into the
            // same PathSet (which must be cleared each time).
            for _ in 0..2 {
                let stats = engine
                    .query_multi_into(alg, &[0], &h, 3, Deadline::none(), &mut out)
                    .unwrap();
                assert_eq!(out.lengths(), want.paths.lengths(), "{}", alg.name());
                assert_eq!(out.path(0).nodes, want.paths.path(0).nodes);
                assert!(stats.nodes_settled > 0);
            }
        }
    }

    #[test]
    fn expired_deadline_fails_without_poisoning_engine() {
        let (g, h) = paper_graph();
        let mut engine = QueryEngine::new(&g);
        let past = Deadline::at(std::time::Instant::now() - std::time::Duration::from_millis(1));
        for alg in Algorithm::ALL {
            let err = engine
                .query_multi_deadline(alg, &[0], &h, 3, past)
                .unwrap_err();
            assert_eq!(err, QueryError::DeadlineExceeded, "{}", alg.name());
            // The same engine must answer the next query correctly.
            let r = engine.query(alg, 0, &h, 3).unwrap();
            assert_eq!(lengths(&r), vec![5, 6, 7], "{}", alg.name());
        }
    }

    #[test]
    fn generous_deadline_matches_unbounded_query() {
        let (g, h) = paper_graph();
        let mut engine = QueryEngine::new(&g);
        let soon = Deadline::after(std::time::Duration::from_secs(60));
        for alg in Algorithm::ALL {
            let r = engine.query_multi_deadline(alg, &[0], &h, 3, soon).unwrap();
            assert_eq!(lengths(&r), vec![5, 6, 7], "{}", alg.name());
        }
    }

    #[test]
    fn parallel_rounds_are_bit_identical_to_sequential() {
        let (g, h) = paper_graph();
        let idx = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 7);
        let sources = [0u32, 1];
        let mut fanned_out = 0usize;
        for with_lm in [false, true] {
            for threads in [2usize, 4] {
                for alg in Algorithm::ALL {
                    // Pin the baseline to sequential explicitly — a
                    // KPJ_PAR_THREADS environment (e.g. the CI pass that
                    // runs the whole suite under it) must not turn both
                    // sides of this comparison parallel.
                    let mut seq = QueryEngine::new(&g).with_par_threads(0);
                    let mut par = QueryEngine::new(&g).with_par_threads(threads);
                    if with_lm {
                        seq = seq.with_landmarks(&idx);
                        par = par.with_landmarks(&idx);
                    }
                    let a = seq.query_multi(alg, &sources, &h, 5).unwrap();
                    let b = par.query_multi(alg, &sources, &h, 5).unwrap();
                    // The whole flat arena, not just lengths: same node
                    // sequences in the same rank order.
                    assert_eq!(
                        a.paths,
                        b.paths,
                        "{} threads={threads} landmarks={with_lm}",
                        alg.name()
                    );
                    fanned_out += b.stats.rounds_parallel;
                    let mut bs = b.stats;
                    bs.rounds_parallel = 0;
                    bs.candidates_stolen = 0;
                    assert_eq!(a.stats, bs, "{} threads={threads}", alg.name());
                }
            }
        }
        // The paper graph is small but not degenerate: at least some
        // rounds must actually have fanned out, or this test proves
        // nothing.
        assert!(fanned_out > 0);
    }

    #[test]
    fn par_threads_zero_and_one_stay_sequential() {
        let (g, h) = paper_graph();
        let mut engine = QueryEngine::new(&g);
        engine.set_par_threads(3);
        assert_eq!(engine.par_threads(), 3);
        // 0 and 1 both mean sequential: no round ever fans out.
        for t in [0, 1] {
            engine.set_par_threads(t);
            let r = engine.query(Algorithm::Da, 0, &h, 3).unwrap();
            assert_eq!(r.stats.rounds_parallel, 0);
            assert_eq!(r.stats.candidates_stolen, 0);
        }
    }

    #[test]
    fn stats_expose_paradigm_differences() {
        let (g, h) = paper_graph();
        let idx = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 7);
        let mut engine = QueryEngine::new(&g).with_landmarks(&idx);
        let da = engine.query(Algorithm::Da, 0, &h, 3).unwrap();
        let bf = engine.query(Algorithm::BestFirst, 0, &h, 3).unwrap();
        // Lemma 4.1: BestFirst computes a subset of DA's shortest paths.
        assert!(
            bf.stats.shortest_path_computations <= da.stats.shortest_path_computations,
            "BestFirst {} vs DA {}",
            bf.stats.shortest_path_computations,
            da.stats.shortest_path_computations
        );
        let ib = engine.query(Algorithm::IterBoundI, 0, &h, 3).unwrap();
        assert!(ib.stats.testlb_calls > 0);
        assert!(ib.stats.final_tau >= 7);
        assert!(ib.stats.spt_nodes > 0);
    }

    #[test]
    fn reduced_graph_answers_are_bit_identical_after_expansion() {
        // Stretch every edge of the paper graph into a 3-hop corridor so
        // the reduction has real chains to contract, then check every
        // algorithm × {landmarks, none} agrees with the unreduced run.
        let (base, h) = paper_graph();
        let n0 = base.node_count() as u32;
        // Two interior nodes per undirected base edge.
        let undirected = base.edge_count() / 2;
        let mut b = GraphBuilder::new(n0 as usize + 2 * undirected);
        let mut next = n0;
        let mut seen: Vec<(u32, u32)> = Vec::new();
        for u in base.nodes() {
            for e in base.out_edges(u) {
                if seen.contains(&(e.to, u)) {
                    continue; // bidirectional pair already stretched
                }
                seen.push((u, e.to));
                let (m1, m2) = (next, next + 1);
                next += 2;
                b.add_bidirectional(u, m1, 1).unwrap();
                b.add_bidirectional(m1, m2, e.weight).unwrap();
                b.add_bidirectional(m2, e.to, 1).unwrap();
            }
        }
        let g = b.build();
        let sources = [0u32];
        let keep: Vec<NodeId> = sources.iter().chain(&h).copied().collect();
        let red = kpj_graph::reduce(&g, &sources, &h);
        assert!(
            red.graph.node_count() < g.node_count(),
            "corridors must contract"
        );
        for &kn in &keep {
            red.reduction.to_reduced(kn).expect("keep nodes survive");
        }
        let idx = LandmarkIndex::build(&g, 4, SelectionStrategy::Farthest, 7);
        let idx_red = LandmarkIndex::build(&red.graph, 4, SelectionStrategy::Farthest, 7);
        let red_sources: Vec<NodeId> = sources
            .iter()
            .map(|&s| red.reduction.to_reduced(s).unwrap())
            .collect();
        let red_targets: Vec<NodeId> = h
            .iter()
            .map(|&t| red.reduction.to_reduced(t).unwrap())
            .collect();
        for with_lm in [false, true] {
            let mut plain = QueryEngine::new(&g);
            let mut reduced = QueryEngine::new(&red.graph).with_reduction(&red.reduction);
            if with_lm {
                plain = plain.with_landmarks(&idx);
                reduced = reduced.with_landmarks(&idx_red);
            }
            for alg in Algorithm::ALL {
                let want = plain.query_multi(alg, &sources, &h, 5).unwrap();
                let got = reduced
                    .query_multi(alg, &red_sources, &red_targets, 5)
                    .unwrap();
                assert_eq!(got.paths, want.paths, "{} landmarks={with_lm}", alg.name());
                for p in &got.paths {
                    p.validate(&g).expect("expanded paths are valid originals");
                    assert!(p.is_simple());
                }
            }
        }
    }
}
