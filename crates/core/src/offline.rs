//! Offline index construction on the intra-query worker pool.
//!
//! Landmark builds for multi-million-node graphs are dominated by `|L|`
//! independent whole-graph Dijkstra runs. This module reuses
//! [`ParPool`](crate::par) — the same persistent worker pool that powers
//! parallel deviation rounds — to fan those runs across threads, while
//! [`LandmarkIndex::build_with_solver`] keeps the *selection* sequence
//! (and hence the resulting index) bit-identical to the sequential
//! [`LandmarkIndex::build`] for every `(strategy, seed)`.

use kpj_graph::{Graph, Length, NodeId};
use kpj_landmark::{LandmarkIndex, SelectionStrategy};
use kpj_sp::DenseDijkstra;

use crate::par::ParPool;

/// One landmark table row: a source node and the disjoint output chunk
/// its distances go to. Raw pointer + length because `scatter` shares the
/// items immutably across workers while each task writes only its own
/// chunk.
struct Row {
    source: NodeId,
    out: *mut Length,
    len: usize,
}

// SAFETY: each `Row` addresses a disjoint chunk of one `&mut [Length]`
// borrow held by the (blocked) dispatching thread; exactly one worker
// task writes through each pointer.
unsafe impl Send for Row {}
unsafe impl Sync for Row {}

/// Build a landmark index using up to `threads` worker threads for the
/// shortest-path table rows (`0` = all available cores).
///
/// The result is **bit-identical** to
/// `LandmarkIndex::build(g, count, strategy, seed)` — thread count changes
/// wall-clock, never the index (the same guarantee the query engine gives
/// for parallel deviation rounds; `check_parallel` in the oracle enforces
/// it there, `parallel_build_matches_sequential` below enforces it here).
pub fn build_landmarks_parallel(
    g: &Graph,
    count: usize,
    strategy: SelectionStrategy,
    seed: u64,
    threads: usize,
) -> LandmarkIndex {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    if threads <= 1 || count <= 1 {
        return LandmarkIndex::build(g, count, strategy, seed);
    }
    // Worker scratch is sized for intra-query searches; the offline build
    // only uses the threads, so size it for an empty graph.
    let pool = ParPool::new(threads, 0);
    let solver = move |g2: &Graph, sources: &[NodeId], out: &mut [Length]| {
        let n = g2.node_count();
        debug_assert_eq!(out.len(), sources.len() * n);
        if sources.len() == 1 {
            out.copy_from_slice(DenseDijkstra::from_source(g2, sources[0]).dist_slice());
            return;
        }
        let rows: Vec<Row> = sources
            .iter()
            .zip(out.chunks_mut(n))
            .map(|(&source, chunk)| Row {
                source,
                out: chunk.as_mut_ptr(),
                len: chunk.len(),
            })
            .collect();
        pool.scatter(&rows, |_, row| {
            let d = DenseDijkstra::from_source(g2, row.source);
            // SAFETY: see `Row` — chunks are disjoint, one writer each.
            let chunk = unsafe { std::slice::from_raw_parts_mut(row.out, row.len) };
            chunk.copy_from_slice(d.dist_slice());
        });
    };
    LandmarkIndex::build_with_solver(g, count, strategy, seed, threads, &solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_workload::road::RoadConfig;

    #[test]
    fn parallel_build_matches_sequential() {
        let g = RoadConfig::new(400, 1_000, 17).generate();
        for strategy in [SelectionStrategy::Farthest, SelectionStrategy::Random] {
            for seed in [0u64, 5, 99] {
                let reference = LandmarkIndex::build(&g, 6, strategy, seed);
                for threads in [2usize, 4] {
                    let parallel = build_landmarks_parallel(&g, 6, strategy, seed, threads);
                    assert_eq!(
                        parallel, reference,
                        "{strategy:?} seed={seed} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn degenerate_inputs() {
        let g = RoadConfig::new(10, 24, 1).generate();
        // threads=1 and count<=1 take the sequential path.
        assert_eq!(
            build_landmarks_parallel(&g, 1, SelectionStrategy::Farthest, 3, 8),
            LandmarkIndex::build(&g, 1, SelectionStrategy::Farthest, 3)
        );
        assert_eq!(
            build_landmarks_parallel(&g, 4, SelectionStrategy::Random, 3, 1),
            LandmarkIndex::build(&g, 4, SelectionStrategy::Random, 3)
        );
        // More landmarks than nodes, parallel.
        assert_eq!(
            build_landmarks_parallel(&g, 64, SelectionStrategy::Farthest, 2, 4),
            LandmarkIndex::build(&g, 64, SelectionStrategy::Farthest, 2)
        );
        // Empty graph.
        let empty = kpj_graph::GraphBuilder::new(0).build();
        assert!(build_landmarks_parallel(&empty, 4, SelectionStrategy::Farthest, 1, 4).is_empty());
    }
}
