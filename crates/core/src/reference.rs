//! Brute-force reference implementation for testing.
//!
//! Enumerates *every* simple path from any source to any target by DFS and
//! keeps the `k` shortest. Exponential — strictly for cross-checking the
//! real algorithms on small graphs (the workspace integration tests and
//! property tests run it on hundreds of random graphs with ≤ ~12 nodes).
//!
//! Conventions match the main algorithms: paths are node sequences, a
//! parallel edge contributes its minimum weight, a source that is itself a
//! target yields the zero-length trivial path, and paths may pass *through*
//! targets (every prefix ending on a target is itself recorded).

use kpj_graph::{Graph, Length, NodeId, Path};

/// All simple source→target path lengths, sorted ascending.
///
/// # Panics
/// Panics if more than `limit` paths exist (guard against accidentally
/// running the enumerator on a non-toy graph).
pub fn all_path_lengths(
    g: &Graph,
    sources: &[NodeId],
    targets: &[NodeId],
    limit: usize,
) -> Vec<Length> {
    all_paths(g, sources, targets, limit)
        .into_iter()
        .map(|p| p.length)
        .collect()
}

/// All simple source→target paths, sorted by length.
pub fn all_paths(g: &Graph, sources: &[NodeId], targets: &[NodeId], limit: usize) -> Vec<Path> {
    let n = g.node_count();
    let mut is_target = vec![false; n];
    for &t in targets {
        is_target[t as usize] = true;
    }
    let mut seen_source = vec![false; n];
    let mut out = Vec::new();
    for &s in sources {
        if seen_source[s as usize] {
            continue;
        }
        seen_source[s as usize] = true;
        let mut visited = vec![false; n];
        let mut stack = Vec::new();
        dfs(
            g,
            s,
            0,
            &is_target,
            &mut visited,
            &mut stack,
            &mut out,
            limit,
        );
    }
    out.sort_by(|a, b| a.length.cmp(&b.length).then_with(|| a.nodes.cmp(&b.nodes)));
    out
}

/// The reference answer for a (G)KPJ query: the `k` shortest lengths.
pub fn top_k_lengths(g: &Graph, sources: &[NodeId], targets: &[NodeId], k: usize) -> Vec<Length> {
    let mut lens = all_path_lengths(g, sources, targets, 5_000_000);
    lens.truncate(k);
    lens
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &Graph,
    v: NodeId,
    len: Length,
    is_target: &[bool],
    visited: &mut [bool],
    stack: &mut Vec<NodeId>,
    out: &mut Vec<Path>,
    limit: usize,
) {
    visited[v as usize] = true;
    stack.push(v);
    if is_target[v as usize] {
        assert!(out.len() < limit, "path enumeration exceeded limit {limit}");
        out.push(Path {
            nodes: stack.clone(),
            length: len,
        });
    }
    // Each distinct head is expanded once, at its minimum parallel-edge
    // weight, so each node sequence is recorded exactly once with its
    // canonical length.
    let edges = g.out_edges(v);
    for (i, e) in edges.iter().enumerate() {
        if visited[e.to as usize] || edges[..i].iter().any(|p| p.to == e.to) {
            continue;
        }
        let w = edges[i..]
            .iter()
            .filter(|p| p.to == e.to)
            .map(|p| p.weight)
            .min()
            .expect("at least e itself");
        dfs(
            g,
            e.to,
            len.saturating_add(w as Length),
            is_target,
            visited,
            stack,
            out,
            limit,
        );
    }
    stack.pop();
    visited[v as usize] = false;
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;

    #[test]
    fn enumerates_diamond() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 3, 2).unwrap();
        b.add_edge(0, 2, 3).unwrap();
        b.add_edge(2, 3, 4).unwrap();
        let g = b.build();
        assert_eq!(all_path_lengths(&g, &[0], &[3], 100), vec![3, 7]);
        assert_eq!(top_k_lengths(&g, &[0], &[3], 1), vec![3]);
    }

    #[test]
    fn records_paths_through_targets() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1).unwrap();
        b.add_edge(1, 2, 1).unwrap();
        let g = b.build();
        assert_eq!(all_path_lengths(&g, &[0], &[1, 2], 100), vec![1, 2]);
    }

    #[test]
    fn trivial_path_when_source_is_target() {
        let mut b = GraphBuilder::new(2);
        b.add_bidirectional(0, 1, 1).unwrap();
        let g = b.build();
        assert_eq!(all_path_lengths(&g, &[0], &[0, 1], 100), vec![0, 1]);
    }

    #[test]
    fn duplicate_sources_counted_once_and_parallel_edges_min() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5).unwrap();
        b.add_edge(0, 1, 3).unwrap();
        let g = b.build();
        assert_eq!(all_path_lengths(&g, &[0, 0], &[1], 100), vec![3]);
    }

    #[test]
    fn multi_source_enumerates_all() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 2, 1).unwrap();
        b.add_edge(1, 2, 2).unwrap();
        b.add_edge(2, 3, 1).unwrap();
        let g = b.build();
        assert_eq!(all_path_lengths(&g, &[0, 1], &[3], 100), vec![2, 3]);
    }

    #[test]
    fn paths_are_simple_and_valid() {
        let mut b = GraphBuilder::new(5);
        for (u, v, w) in [
            (0, 1, 1),
            (1, 2, 1),
            (2, 0, 1),
            (1, 3, 1),
            (3, 4, 1),
            (2, 4, 5),
        ] {
            b.add_bidirectional(u, v, w).unwrap();
        }
        let g = b.build();
        for p in all_paths(&g, &[0], &[4], 10_000) {
            assert!(p.is_simple());
            p.validate(&g).unwrap();
        }
    }
}
