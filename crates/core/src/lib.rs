//! Top-k shortest path join (KPJ) — the core algorithms of
//! *"Efficiently Computing Top-K Shortest Path Join"* (EDBT 2015).
//!
//! A **KPJ** query `{s, T, k}` asks for the `k` shortest *simple* paths
//! from a source node `s` to any node of a category `T` in a weighted
//! directed graph. **KSP** (single destination) and **GKPJ** (a set of
//! sources) are the special/general cases. This crate implements every
//! algorithm the paper evaluates, plus a beyond-the-paper sidetrack
//! engine ([`Algorithm::ALL`] is the authoritative list):
//!
//! | [`Algorithm`] | Paper | Paradigm |
//! |---|---|---|
//! | `Da` | §3, Alg. 1 | deviation (Yen) via the virtual-target reduction |
//! | `DaSpt` | §3 | deviation + full online reverse SPT (state of the art for KSP) |
//! | `BestFirst` | §4, Alg. 2–3 | best-first subspace pruning by lower bounds |
//! | `IterBound` | §5.1, Alg. 4–5 | iteratively bounding (`TestLB`, factor α) |
//! | `IterBoundP` | §5.2, Alg. 6 | + partial SPT (`SPT_P`) |
//! | `IterBoundI` | §5.3, Alg. 7–8 | + incremental SPT (`SPT_I`), reverse-graph search |
//! | `Sidetrack` | — (arXiv:1601.02867) | sidetrack-edge splicing over the full reverse SPT |
//!
//! Running any of them on a [`QueryEngine`] without landmarks gives the
//! paper's `-NL` (no landmark, §6) variants.
//!
//! # Quick start
//!
//! ```
//! use kpj_graph::GraphBuilder;
//! use kpj_landmark::{LandmarkIndex, SelectionStrategy};
//! use kpj_core::{Algorithm, QueryEngine};
//!
//! // A small road-ish network.
//! let mut b = GraphBuilder::new(5);
//! b.add_bidirectional(0, 1, 2).unwrap();
//! b.add_bidirectional(1, 2, 2).unwrap();
//! b.add_bidirectional(0, 3, 3).unwrap();
//! b.add_bidirectional(3, 2, 3).unwrap();
//! b.add_bidirectional(3, 4, 1).unwrap();
//! let g = b.build();
//!
//! // Offline: landmark index. Online: one engine, many queries.
//! let landmarks = LandmarkIndex::build(&g, 2, SelectionStrategy::Farthest, 42);
//! let mut engine = QueryEngine::new(&g).with_landmarks(&landmarks);
//! let result = engine.query(Algorithm::IterBoundI, 0, &[2, 4], 3).unwrap();
//! let lengths: Vec<u64> = result.paths.iter().map(|p| p.length).collect();
//! assert_eq!(lengths, vec![4, 4, 6]);
//! ```

#![warn(missing_docs)]

mod bounds;
mod deadline;
mod deviation;
mod engine;
pub mod general;
pub mod offline;
mod par;
mod paradigms;
mod pseudo_tree;
pub mod reference;
mod search_core;
mod sidetrack;
mod spti;
mod sptp;
mod stats;

pub use bounds::{SourceLb, TargetsLb};
pub use deadline::Deadline;
pub use engine::{Algorithm, KpjResult, QueryEngine, QueryError};
pub use stats::QueryStats;
