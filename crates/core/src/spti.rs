//! The incremental shortest-path tree `SPT_I` (§5.3, Alg. 7).
//!
//! `SPT_I` is a *forward* SPT from the source side, grown lazily: the
//! initial phase is the A\* computing the first shortest path (stopping at
//! the first settled destination), and afterwards [`SptiStore::grow`] keeps
//! settling nodes while the frontier key `d_s(v) + lb(v, V_T)` is at most
//! the current threshold τ. Prop. 5.2 then guarantees `SPT_I` contains
//! every node of every source→`V_T` path of length ≤ τ, which lets the
//! reverse-graph subspace searches prune all nodes outside `SPT_I` and use
//! the *exact* `d_s(v)` as the source-side bound.
//!
//! The queue `Q_T` persists across `grow` calls within one query; a reset
//! is `O(touched)`.
//!
//! **Parallel rounds.** With `par_threads >= 2` the store is *frozen
//! during a round*: every `grow`/τ update happens on the main thread
//! between rounds, and the fanned-out candidate searches only read it
//! (`&SptiStore`, hence the `Sync` bounds on the oracle closures in
//! `paradigms.rs`). That split is what makes the deterministic merge
//! sound — no worker can observe a tree that differs from the one the
//! sequential schedule would have seen.

use kpj_graph::scratch::{TimestampedMap, TimestampedSet};
use kpj_graph::{Graph, Length, NodeId, PathId, PathStore, INFINITE_LENGTH};
use kpj_heap::IndexedMinHeap;
use kpj_sp::NO_PARENT;

use crate::bounds::TargetsLb;
use crate::pseudo_tree::ROOT;
use crate::search_core::FoundPath;
use crate::stats::QueryStats;

/// Engine-owned `SPT_I` state (see module docs).
#[derive(Debug)]
pub(crate) struct SptiStore {
    heap: IndexedMinHeap<Length>,
    /// Exact `d_s(v) = δ(sources, v)` for settled nodes; tentative labels
    /// for frontier nodes.
    dist: TimestampedMap<Length>,
    parent: TimestampedMap<NodeId>,
    settled: TimestampedSet,
    /// `D`: destinations currently inside `SPT_I` (Alg. 7 line 4).
    dest_in_spt: Vec<NodeId>,
    /// The frontier is exhausted: `SPT_I` covers everything reachable.
    complete: bool,
    settled_count: usize,
}

impl SptiStore {
    pub(crate) fn new(n: usize) -> Self {
        SptiStore {
            heap: IndexedMinHeap::new(n),
            dist: TimestampedMap::new(n, INFINITE_LENGTH),
            parent: TimestampedMap::new(n, NO_PARENT),
            settled: TimestampedSet::new(n),
            dest_in_spt: Vec::new(),
            complete: false,
            settled_count: 0,
        }
    }

    /// Phase 1 (initial `SPT_I`): A\* from the sources until the first
    /// destination settles; that settles the query's shortest path, which
    /// is returned as a reverse-orientation [`FoundPath`] (anchored at the
    /// virtual-target root). `None` when `V_T` is unreachable — the store
    /// is then `complete` and empty of destinations.
    pub(crate) fn init(
        &mut self,
        g: &Graph,
        sources: &[NodeId],
        target_set: &TimestampedSet,
        to_targets: &TargetsLb<'_>,
        path_store: &mut PathStore,
        stats: &mut QueryStats,
    ) -> Option<FoundPath> {
        self.heap.clear();
        self.dist.reset();
        self.parent.reset();
        self.settled.clear();
        self.dest_in_spt.clear();
        self.complete = false;
        self.settled_count = 0;

        for &s in sources {
            let h = to_targets.lb(s);
            if h == INFINITE_LENGTH {
                continue;
            }
            if self.dist.get(s as usize) > 0 {
                self.dist.set(s as usize, 0);
                self.heap.push_or_decrease(s as usize, h);
            }
        }

        loop {
            match self.settle_one(g, target_set, to_targets) {
                None => {
                    self.complete = true;
                    stats.nodes_settled += self.settled_count;
                    return None;
                }
                Some(v) if target_set.contains(v as usize) => {
                    stats.nodes_settled += self.settled_count;
                    return Some(self.initial_found_path(path_store, v));
                }
                Some(_) => {}
            }
        }
    }

    /// Alg. 7: settle while the frontier key is ≤ `tau`.
    pub(crate) fn grow(
        &mut self,
        g: &Graph,
        tau: Length,
        target_set: &TimestampedSet,
        to_targets: &TargetsLb<'_>,
        stats: &mut QueryStats,
    ) {
        let before = self.settled_count;
        while let Some((_, key)) = self.heap.peek() {
            if key > tau {
                break;
            }
            if self.settle_one(g, target_set, to_targets).is_none() {
                break;
            }
        }
        if self.heap.is_empty() {
            self.complete = true;
        }
        stats.nodes_settled += self.settled_count - before;
    }

    /// Pop and settle one node, relaxing its out-edges; returns it.
    fn settle_one(
        &mut self,
        g: &Graph,
        target_set: &TimestampedSet,
        to_targets: &TargetsLb<'_>,
    ) -> Option<NodeId> {
        let (u, _) = self.heap.pop()?;
        self.settled.insert(u);
        self.settled_count += 1;
        if target_set.contains(u) {
            self.dest_in_spt.push(u as NodeId);
        }
        let du = self.dist.get(u);
        for e in g.out_edges(u as NodeId) {
            let w = e.to as usize;
            if self.settled.contains(w) {
                continue;
            }
            let nd = du.saturating_add(e.weight as Length);
            if nd < self.dist.get(w) {
                let h = to_targets.lb(e.to);
                if h == INFINITE_LENGTH {
                    continue;
                }
                self.dist.set(w, nd);
                self.parent.set(w, u as NodeId);
                self.heap.push_or_decrease(w, nd.saturating_add(h));
            }
        }
        Some(u as NodeId)
    }

    /// The reverse-orientation initial path ending at destination `d`.
    fn initial_found_path(&self, path_store: &mut PathStore, d: NodeId) -> FoundPath {
        let total = self.dist.get(d as usize);
        // Walk parents back to the source: d, …, s — which *is* the tree
        // orientation (virtual target root first), so the chain goes into
        // the arena in walk order with cumulative lengths from the virtual
        // target side. Under the virtual root the whole chain is suffix.
        let mut id: Option<PathId> = None;
        let mut count = 0u32;
        let mut cur = d;
        loop {
            id = Some(path_store.push(id, cur, total - self.dist.get(cur as usize)));
            count += 1;
            let p = self.parent.get(cur as usize);
            if p == NO_PARENT {
                break;
            }
            cur = p;
        }
        FoundPath {
            tail: id.expect("chain has at least one node"),
            length: total,
            vertex: ROOT,
            suffix_len: count,
        }
    }

    /// Exact `d_s(v)` if `v` is in `SPT_I`.
    #[inline]
    pub(crate) fn exact_dist(&self, v: NodeId) -> Option<Length> {
        if self.settled.contains(v as usize) {
            Some(self.dist.get(v as usize))
        } else {
            None
        }
    }

    /// True once the frontier is exhausted (`SPT_I` is maximal).
    #[inline]
    pub(crate) fn is_complete(&self) -> bool {
        self.complete
    }

    /// The destinations currently inside `SPT_I` (the set `D` of Alg. 7).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn destinations(&self) -> &[NodeId] {
        &self.dest_in_spt
    }

    /// Number of nodes in `SPT_I`.
    pub(crate) fn len(&self) -> usize {
        self.settled_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kpj_graph::GraphBuilder;

    /// 0—1—2—3 line (unit weights) plus branch 1—4 (weight 5), 4—5 (5).
    fn fixture() -> (Graph, TimestampedSet) {
        let mut b = GraphBuilder::new(6);
        for i in 0..3u32 {
            b.add_bidirectional(i, i + 1, 1).unwrap();
        }
        b.add_bidirectional(1, 4, 5).unwrap();
        b.add_bidirectional(4, 5, 5).unwrap();
        let g = b.build();
        let mut ts = TimestampedSet::new(6);
        ts.insert(3);
        ts.insert(5);
        (g, ts)
    }

    /// Full chain nodes (tree orientation: destination-first).
    fn chain_nodes(ps: &PathStore, f: &FoundPath) -> Vec<NodeId> {
        ps.materialize(f.tail).nodes
    }

    /// The suffix pairs `(node, cumulative length)` read from the arena.
    fn suffix(ps: &PathStore, f: &FoundPath) -> Vec<(NodeId, Length)> {
        let mut out = Vec::new();
        let mut cur = Some(f.tail);
        for _ in 0..f.suffix_len {
            let id = cur.unwrap();
            out.push((ps.node(id), ps.length(id)));
            cur = ps.parent(id);
        }
        out.reverse();
        out
    }

    #[test]
    fn init_finds_shortest_path_in_reverse_orientation() {
        let (g, ts) = fixture();
        let mut store = SptiStore::new(6);
        let mut ps = PathStore::new();
        let mut stats = QueryStats::default();
        let f = store
            .init(&g, &[0], &ts, &TargetsLb::Zero, &mut ps, &mut stats)
            .expect("path");
        assert_eq!(chain_nodes(&ps, &f), vec![3, 2, 1, 0]);
        assert_eq!(f.length, 3);
        assert_eq!(suffix(&ps, &f), vec![(3, 0), (2, 1), (1, 2), (0, 3)]);
        assert_eq!(store.destinations(), &[3]);
        assert!(!store.is_complete());
        assert_eq!(store.exact_dist(0), Some(0));
        assert_eq!(store.exact_dist(3), Some(3));
        assert_eq!(store.exact_dist(5), None);
    }

    #[test]
    fn grow_extends_to_tau_and_completes() {
        let (g, ts) = fixture();
        let mut store = SptiStore::new(6);
        let mut ps = PathStore::new();
        let mut stats = QueryStats::default();
        store
            .init(&g, &[0], &ts, &TargetsLb::Zero, &mut ps, &mut stats)
            .unwrap();
        // Node 4 is at d_s = 6, node 5 at 11 (keys with zero bounds).
        store.grow(&g, 6, &ts, &TargetsLb::Zero, &mut stats);
        assert_eq!(store.exact_dist(4), Some(6));
        assert_eq!(store.exact_dist(5), None);
        store.grow(&g, 100, &ts, &TargetsLb::Zero, &mut stats);
        assert_eq!(store.exact_dist(5), Some(11));
        assert!(store.is_complete());
        assert_eq!(store.destinations(), &[3, 5]);
        assert_eq!(store.len(), 6);
    }

    #[test]
    fn unreachable_targets_complete_with_none() {
        let mut b = GraphBuilder::new(3);
        b.add_bidirectional(0, 1, 1).unwrap();
        let g = b.build();
        let mut ts = TimestampedSet::new(3);
        ts.insert(2);
        let mut store = SptiStore::new(3);
        let mut ps = PathStore::new();
        let mut stats = QueryStats::default();
        assert!(store
            .init(&g, &[0], &ts, &TargetsLb::Zero, &mut ps, &mut stats)
            .is_none());
        assert!(store.is_complete());
        assert!(store.destinations().is_empty());
    }

    #[test]
    fn multi_source_init_uses_nearest_source() {
        let (g, ts) = fixture();
        let mut store = SptiStore::new(6);
        let mut ps = PathStore::new();
        let mut stats = QueryStats::default();
        let f = store
            .init(&g, &[0, 2], &ts, &TargetsLb::Zero, &mut ps, &mut stats)
            .expect("path");
        assert_eq!(chain_nodes(&ps, &f), vec![3, 2]);
        assert_eq!(f.length, 1);
    }

    #[test]
    fn source_in_targets_gives_trivial_reverse_path() {
        let (g, mut ts) = fixture();
        ts.insert(0);
        let mut store = SptiStore::new(6);
        let mut ps = PathStore::new();
        let mut stats = QueryStats::default();
        let f = store
            .init(&g, &[0], &ts, &TargetsLb::Zero, &mut ps, &mut stats)
            .expect("path");
        assert_eq!(chain_nodes(&ps, &f), vec![0]);
        assert_eq!(f.length, 0);
        assert_eq!(suffix(&ps, &f), vec![(0, 0)]);
    }
}
