//! Per-query instrumentation counters.
//!
//! The paper's performance arguments are about *how much work* each
//! paradigm does (number of shortest-path computations, exploration area
//! `n'`/`m'`, SPT sizes). These counters let the benches and EXPERIMENTS.md
//! report those quantities directly instead of inferring them from wall
//! time.

/// Counters accumulated while answering one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Full (unbounded) shortest-path computations in subspaces
    /// (`CompSP` calls / candidate-path computations in the deviation
    /// baselines). The best-first paradigm's whole point is making this
    /// smaller than the deviation paradigm's `O(k·n)`.
    pub shortest_path_computations: usize,
    /// Cheap lower-bound computations (`CompLB` / `CompLB-SPTI` calls).
    pub lower_bound_computations: usize,
    /// `TestLB` invocations (iteratively bounding approaches only).
    pub testlb_calls: usize,
    /// `TestLB` invocations that came back "bounded" (ω(sp) > τ).
    pub testlb_bounded: usize,
    /// Total nodes settled across every search run for the query (the
    /// aggregate exploration area).
    pub nodes_settled: usize,
    /// Total edges relaxed across every search.
    pub edges_relaxed: usize,
    /// Nodes in the shortest-path tree this algorithm built, if any:
    /// the full reverse SPT (DA-SPT), `SPT_P`, or the final `SPT_I`.
    pub spt_nodes: usize,
    /// Number of subspaces ever created (pseudo-tree vertices).
    pub subspaces_created: usize,
    /// Heap pops across every priority queue the query touched: search
    /// settles, candidate pops in the deviation paradigm, and subspace
    /// pops in the best-first/iter-bound paradigms.
    pub heap_pops: usize,
    /// Frontier entries discarded by a lower bound: τ-prunes and
    /// `Deferred` skips inside searches (the paper's pruning power).
    pub lb_prunes: usize,
    /// Subspaces dropped without a search: `CompLB = ∞` proofs, emitted
    /// single-target deviations, and searches that proved a subspace
    /// empty.
    pub subspaces_skipped: usize,
    /// Times the iterative threshold τ was raised (`next_tau` rounds).
    pub tau_updates: usize,
    /// Final value of the iterative threshold τ (0 when not applicable).
    pub final_tau: u64,
    /// Deviation/search rounds that fanned out to the intra-query worker
    /// pool (0 when `par_threads < 2` or every round had one candidate).
    pub rounds_parallel: usize,
    /// Candidate searches executed by pool workers instead of the query
    /// thread (the tasks dispatched across all parallel rounds; this is a
    /// deterministic count, independent of which worker ran each task).
    pub candidates_stolen: usize,
    /// Sidetrack edges examined while resolving subspaces (the
    /// `Sidetrack` engine's analogue of candidate-path computations: each
    /// scanned first-hop is one implicit deviation considered).
    pub sidetracks_scanned: usize,
    /// Subspaces the `Sidetrack` engine resolved by splicing the best
    /// sidetrack onto the reverse-SPT suffix with **zero** search — the
    /// fast path that replaces a per-deviation Dijkstra.
    pub sidetrack_splices: usize,
    /// Subspaces whose best sidetrack suffix collided with the prefix,
    /// forcing a τ-bounded constrained repair search.
    pub sidetrack_repairs: usize,
}

impl QueryStats {
    /// Stable serialization names, parallel to
    /// [`field_values`](QueryStats::field_values). Shared by the NDJSON
    /// `stats` block, the `metrics` verb, and the Prometheus counter
    /// series so the three surfaces cannot drift.
    pub const FIELD_NAMES: [&'static str; 18] = [
        "sp",
        "lb",
        "testlb",
        "testlb_bounded",
        "settled",
        "relaxed",
        "spt_nodes",
        "subspaces",
        "heap_pops",
        "lb_prunes",
        "subspaces_skipped",
        "tau_updates",
        "tau",
        "rounds_parallel",
        "candidates_stolen",
        "sidetracks_scanned",
        "sidetrack_splices",
        "sidetrack_repairs",
    ];

    /// Every counter, in [`FIELD_NAMES`](QueryStats::FIELD_NAMES) order.
    pub fn field_values(&self) -> [u64; 18] {
        [
            self.shortest_path_computations as u64,
            self.lower_bound_computations as u64,
            self.testlb_calls as u64,
            self.testlb_bounded as u64,
            self.nodes_settled as u64,
            self.edges_relaxed as u64,
            self.spt_nodes as u64,
            self.subspaces_created as u64,
            self.heap_pops as u64,
            self.lb_prunes as u64,
            self.subspaces_skipped as u64,
            self.tau_updates as u64,
            self.final_tau,
            self.rounds_parallel as u64,
            self.candidates_stolen as u64,
            self.sidetracks_scanned as u64,
            self.sidetrack_splices as u64,
            self.sidetrack_repairs as u64,
        ]
    }

    /// Append the canonical JSON object (`{"sp":…,…,"tau":…}`) to `out`.
    /// The single serializer behind every wire surface that emits stats.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push('{');
        for (i, (name, value)) in Self::FIELD_NAMES
            .iter()
            .zip(self.field_values())
            .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{value}");
        }
        out.push('}');
    }

    /// Merge counters from a sub-search (used by composite runs).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.shortest_path_computations += other.shortest_path_computations;
        self.lower_bound_computations += other.lower_bound_computations;
        self.testlb_calls += other.testlb_calls;
        self.testlb_bounded += other.testlb_bounded;
        self.nodes_settled += other.nodes_settled;
        self.edges_relaxed += other.edges_relaxed;
        self.spt_nodes = self.spt_nodes.max(other.spt_nodes);
        self.subspaces_created += other.subspaces_created;
        self.heap_pops += other.heap_pops;
        self.lb_prunes += other.lb_prunes;
        self.subspaces_skipped += other.subspaces_skipped;
        self.tau_updates += other.tau_updates;
        self.final_tau = self.final_tau.max(other.final_tau);
        self.rounds_parallel += other.rounds_parallel;
        self.candidates_stolen += other.candidates_stolen;
        self.sidetracks_scanned += other.sidetracks_scanned;
        self.sidetrack_splices += other.sidetrack_splices;
        self.sidetrack_repairs += other.sidetrack_repairs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_maxes_spt() {
        let mut a = QueryStats {
            shortest_path_computations: 2,
            spt_nodes: 10,
            heap_pops: 4,
            ..Default::default()
        };
        let b = QueryStats {
            shortest_path_computations: 3,
            testlb_calls: 1,
            spt_nodes: 7,
            final_tau: 99,
            heap_pops: 5,
            lb_prunes: 2,
            subspaces_skipped: 1,
            tau_updates: 3,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.shortest_path_computations, 5);
        assert_eq!(a.testlb_calls, 1);
        assert_eq!(a.spt_nodes, 10);
        assert_eq!(a.final_tau, 99);
        assert_eq!(a.heap_pops, 9);
        assert_eq!(a.lb_prunes, 2);
        assert_eq!(a.subspaces_skipped, 1);
        assert_eq!(a.tau_updates, 3);
    }

    #[test]
    fn json_serializer_covers_every_field() {
        let s = QueryStats {
            shortest_path_computations: 1,
            lower_bound_computations: 2,
            testlb_calls: 3,
            testlb_bounded: 4,
            nodes_settled: 5,
            edges_relaxed: 6,
            spt_nodes: 7,
            subspaces_created: 8,
            heap_pops: 9,
            lb_prunes: 10,
            subspaces_skipped: 11,
            tau_updates: 12,
            final_tau: 13,
            rounds_parallel: 14,
            candidates_stolen: 15,
            sidetracks_scanned: 16,
            sidetrack_splices: 17,
            sidetrack_repairs: 18,
        };
        let mut out = String::new();
        s.write_json(&mut out);
        assert_eq!(
            out,
            "{\"sp\":1,\"lb\":2,\"testlb\":3,\"testlb_bounded\":4,\"settled\":5,\
             \"relaxed\":6,\"spt_nodes\":7,\"subspaces\":8,\"heap_pops\":9,\
             \"lb_prunes\":10,\"subspaces_skipped\":11,\"tau_updates\":12,\"tau\":13,\
             \"rounds_parallel\":14,\"candidates_stolen\":15,\"sidetracks_scanned\":16,\
             \"sidetrack_splices\":17,\"sidetrack_repairs\":18}"
        );
        // Names and values stay parallel.
        assert_eq!(QueryStats::FIELD_NAMES.len(), s.field_values().len());
        assert_eq!(s.field_values()[12], 13);
    }
}
