//! Per-query instrumentation counters.
//!
//! The paper's performance arguments are about *how much work* each
//! paradigm does (number of shortest-path computations, exploration area
//! `n'`/`m'`, SPT sizes). These counters let the benches and EXPERIMENTS.md
//! report those quantities directly instead of inferring them from wall
//! time.

/// Counters accumulated while answering one query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Full (unbounded) shortest-path computations in subspaces
    /// (`CompSP` calls / candidate-path computations in the deviation
    /// baselines). The best-first paradigm's whole point is making this
    /// smaller than the deviation paradigm's `O(k·n)`.
    pub shortest_path_computations: usize,
    /// Cheap lower-bound computations (`CompLB` / `CompLB-SPTI` calls).
    pub lower_bound_computations: usize,
    /// `TestLB` invocations (iteratively bounding approaches only).
    pub testlb_calls: usize,
    /// `TestLB` invocations that came back "bounded" (ω(sp) > τ).
    pub testlb_bounded: usize,
    /// Total nodes settled across every search run for the query (the
    /// aggregate exploration area).
    pub nodes_settled: usize,
    /// Total edges relaxed across every search.
    pub edges_relaxed: usize,
    /// Nodes in the shortest-path tree this algorithm built, if any:
    /// the full reverse SPT (DA-SPT), `SPT_P`, or the final `SPT_I`.
    pub spt_nodes: usize,
    /// Number of subspaces ever created (pseudo-tree vertices).
    pub subspaces_created: usize,
    /// Final value of the iterative threshold τ (0 when not applicable).
    pub final_tau: u64,
}

impl QueryStats {
    /// Merge counters from a sub-search (used by composite runs).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.shortest_path_computations += other.shortest_path_computations;
        self.lower_bound_computations += other.lower_bound_computations;
        self.testlb_calls += other.testlb_calls;
        self.testlb_bounded += other.testlb_bounded;
        self.nodes_settled += other.nodes_settled;
        self.edges_relaxed += other.edges_relaxed;
        self.spt_nodes = self.spt_nodes.max(other.spt_nodes);
        self.subspaces_created += other.subspaces_created;
        self.final_tau = self.final_tau.max(other.final_tau);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters_and_maxes_spt() {
        let mut a = QueryStats {
            shortest_path_computations: 2,
            spt_nodes: 10,
            ..Default::default()
        };
        let b = QueryStats {
            shortest_path_computations: 3,
            testlb_calls: 1,
            spt_nodes: 7,
            final_tau: 99,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.shortest_path_computations, 5);
        assert_eq!(a.testlb_calls, 1);
        assert_eq!(a.spt_nodes, 10);
        assert_eq!(a.final_tau, 99);
    }
}
